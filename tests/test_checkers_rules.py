"""Unit tests for the repro.checkers rule packs.

Each rule gets a positive case (violating snippet -> finding), a
negative case (conforming snippet -> clean), and the framework tests
cover ``# repro: noqa[RULE]`` suppression, package scoping, rule
selection, and the CLI contract.
"""

import json
import textwrap

import pytest

from repro.checkers import (
    Finding,
    all_rules,
    check_source,
    module_name_for,
    rules_by_id,
)
from repro.checkers.cli import main


def rule_ids(source, module_name=None, path="<test>"):
    return [
        f.rule_id
        for f in check_source(source, path=path, module_name=module_name)
    ]


def dedent(source):
    return textwrap.dedent(source).lstrip("\n")


# ---------------------------------------------------------------------------
# framework
# ---------------------------------------------------------------------------


class TestFramework:
    def test_all_four_packs_registered(self):
        packs = {cls.rule_id[: cls.rule_id.index("1")] for cls in all_rules()}
        assert packs == {"DET", "UNIT", "SM", "API"}

    def test_rules_by_pack_prefix(self):
        det = rules_by_id(["DET"])
        assert len(det) >= 4
        assert all(cls.rule_id.startswith("DET") for cls in det)

    def test_rules_by_unknown_id_raises(self):
        with pytest.raises(KeyError):
            rules_by_id(["NOPE999"])

    def test_finding_render_and_dict(self):
        f = Finding("a.py", 3, 7, "DET101", "msg", "hint")
        assert f.render() == "a.py:3:7: DET101 msg (hint: hint)"
        assert f.to_dict()["rule"] == "DET101"

    def test_syntax_error_reports_parse_finding(self):
        assert rule_ids("def broken(:\n") == ["PARSE"]

    def test_module_name_for(self):
        assert (
            module_name_for("src/repro/farm/simulation.py")
            == "repro.farm.simulation"
        )
        assert module_name_for("src/repro/vm/__init__.py") == "repro.vm"
        assert module_name_for("/somewhere/else.py") is None

    def test_noqa_specific_rule(self):
        src = "import random\nx = random.random()  # repro: noqa[DET101]\n"
        assert rule_ids(src) == []

    def test_noqa_wrong_rule_does_not_suppress(self):
        src = "import random\nx = random.random()  # repro: noqa[UNIT101]\n"
        assert rule_ids(src) == ["DET101"]

    def test_noqa_bare_suppresses_everything(self):
        src = "import random\nx = random.random()  # repro: noqa\n"
        assert rule_ids(src) == []

    def test_noqa_inside_string_is_not_a_suppression(self):
        src = (
            "import random\n"
            "s = '# repro: noqa[DET101]'\n"
            "x = random.random()\n"
        )
        assert rule_ids(src) == ["DET101"]


# ---------------------------------------------------------------------------
# DET: determinism
# ---------------------------------------------------------------------------


class TestDeterminismRules:
    def test_det101_module_level_random_call(self):
        src = "import random\nx = random.random()\n"
        assert "DET101" in rule_ids(src)

    def test_det101_from_import_of_global_stream(self):
        src = "from random import choice\n"
        assert "DET101" in rule_ids(src)

    def test_det101_seeded_instance_is_clean(self):
        src = "import random\nrng = random.Random(42)\nx = rng.random()\n"
        assert rule_ids(src) == []

    def test_det101_scoped_to_simulation_packages(self):
        src = "import random\nx = random.random()\n"
        assert rule_ids(src, module_name="repro.analysis.series") == []
        assert rule_ids(src, module_name="repro.farm.week") == ["DET101"]

    def test_det101_randomness_module_itself_exempt(self):
        src = "import random\nx = random.random()\n"
        assert rule_ids(src, module_name="repro.simulator.randomness") == []

    def test_det102_unseeded_random(self):
        src = "import random\nrng = random.Random()\n"
        assert rule_ids(src) == ["DET102"]

    def test_det102_system_random(self):
        src = "import random\nrng = random.SystemRandom(1)\n"
        assert rule_ids(src) == ["DET102"]

    def test_det102_seeded_is_clean(self):
        src = "import random\nrng = random.Random(seed)\n"
        assert rule_ids(src) == []

    def test_det103_wall_clock(self):
        src = "import time\nt = time.time()\n"
        assert rule_ids(src) == ["DET103"]

    def test_det103_datetime_now(self):
        src = "import datetime\nt = datetime.datetime.now()\n"
        assert rule_ids(src) == ["DET103"]

    def test_det103_simulator_clock_is_clean(self):
        src = "def f(sim):\n    return sim.time()\n"
        assert rule_ids(src) == []

    def test_det104_set_literal_iteration(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert rule_ids(src) == ["DET104"]

    def test_det104_named_set_and_comprehension(self):
        src = "s = set([2, 1])\nout = [x for x in s]\n"
        assert rule_ids(src) == ["DET104"]

    def test_det104_instance_attribute_set(self):
        src = dedent(
            """
            class C:
                def __init__(self):
                    self.woken = set()

                def drain(self):
                    for x in self.woken:
                        yield x
            """
        )
        assert rule_ids(src) == ["DET104"]

    def test_det104_sorted_iteration_is_clean(self):
        src = "s = set([2, 1])\nout = [x for x in sorted(s)]\n"
        assert rule_ids(src) == []


# ---------------------------------------------------------------------------
# UNIT: suffix families
# ---------------------------------------------------------------------------


class TestUnitRules:
    def test_unit101_mixed_addition(self):
        src = "def f(a_s, b_mib):\n    return a_s + b_mib\n"
        assert rule_ids(src) == ["UNIT101"]

    def test_unit101_mixed_comparison(self):
        src = "def f(delay_s, size_mib):\n    return delay_s < size_mib\n"
        assert rule_ids(src) == ["UNIT101"]

    def test_unit101_same_family_is_clean(self):
        src = "def f(a_mib, b_mib):\n    return a_mib + b_mib\n"
        assert rule_ids(src) == []

    def test_unit101_longest_suffix_wins(self):
        # _mib_per_s must not be misread as _s.
        src = "def f(rate_mib_per_s, size_mib):\n    return rate_mib_per_s + size_mib\n"
        assert rule_ids(src) == ["UNIT101"]

    def test_unit101_dimensional_division_is_clean(self):
        src = dedent(
            """
            def f(size_mib, bandwidth_mib_per_s):
                wait_s = size_mib / bandwidth_mib_per_s
                return wait_s
            """
        )
        assert rule_ids(src) == []

    def test_unit101_power_times_time_is_energy(self):
        src = dedent(
            """
            def f(power_w, elapsed_s, total_j):
                return total_j + power_w * elapsed_s
            """
        )
        assert rule_ids(src) == []

    def test_unit102_assignment_across_families(self):
        src = "def f(delay_s):\n    size_mib = delay_s\n    return size_mib\n"
        assert rule_ids(src) == ["UNIT102"]

    def test_unit102_augmented_assignment(self):
        src = "def f(total_j, power_w):\n    total_j += power_w\n    return total_j\n"
        assert rule_ids(src) == ["UNIT102"]

    def test_unit102_conversion_helper_sanctions_mix(self):
        src = dedent(
            """
            from repro.units import transfer_seconds

            def f(size_mib, link_mib_per_s):
                wait_s = transfer_seconds(size_mib, link_mib_per_s)
                return wait_s
            """
        )
        assert rule_ids(src) == []

    def test_unit103_keyword_argument(self):
        src = dedent(
            """
            def g(size_mib):
                return size_mib

            def f(delay_s):
                return g(size_mib=delay_s)
            """
        )
        assert rule_ids(src) == ["UNIT103"]

    def test_unit103_positional_argument_same_module(self):
        src = dedent(
            """
            def g(size_mib):
                return size_mib

            def f(delay_s):
                return g(delay_s)
            """
        )
        assert rule_ids(src) == ["UNIT103"]

    def test_unit103_conversion_helper_positional(self):
        src = "def f(delay_s, rate_mib_per_s):\n    return transfer_seconds(delay_s, rate_mib_per_s)\n"
        assert rule_ids(src) == ["UNIT103"]

    def test_unit103_matching_families_clean(self):
        src = dedent(
            """
            def g(size_mib):
                return size_mib

            def f(chunk_mib):
                return g(chunk_mib)
            """
        )
        assert rule_ids(src) == []


# ---------------------------------------------------------------------------
# SM: state machines
# ---------------------------------------------------------------------------


class TestStateMachineRules:
    def test_sm101_unguarded_power_assignment(self):
        src = dedent(
            """
            def sleep(host):
                host.power_state = PowerState.SLEEPING
            """
        )
        assert rule_ids(src) == ["SM101"]

    def test_sm101_guarded_assignment_is_clean(self):
        src = dedent(
            """
            def suspend(host):
                check_transition(host.power_state, PowerState.SUSPENDING)
                host.power_state = PowerState.SUSPENDING
            """
        )
        assert rule_ids(src) == []

    def test_sm101_init_sets_initial_state(self):
        src = dedent(
            """
            class Host:
                def __init__(self):
                    self.power_state = PowerState.POWERED
            """
        )
        assert rule_ids(src) == []

    def test_sm102_unknown_member(self):
        src = dedent(
            """
            def hibernate(host):
                check_transition(host.power_state, PowerState.HIBERNATING)
                host.power_state = PowerState.HIBERNATING
            """
        )
        assert "SM102" in rule_ids(src)

    def test_sm102_wrong_enum_for_attribute(self):
        src = dedent(
            """
            class VM:
                def __init__(self):
                    self.residency = VmActivity.ACTIVE
            """
        )
        assert "SM102" in rule_ids(src)

    def test_sm102_declared_members_clean(self):
        src = dedent(
            """
            class VM:
                def __init__(self):
                    self.residency = Residency.FULL
                    self.activity = VmActivity.IDLE
            """
        )
        assert rule_ids(src) == []

    def test_sm103_illegal_literal_transition(self):
        src = dedent(
            """
            def f():
                check_transition(PowerState.POWERED, PowerState.SLEEPING)
            """
        )
        assert rule_ids(src) == ["SM103"]

    def test_sm103_guard_assign_mismatch(self):
        src = dedent(
            """
            def suspend(host):
                check_transition(host.power_state, PowerState.SUSPENDING)
                host.power_state = PowerState.SLEEPING
            """
        )
        assert "SM103" in rule_ids(src)

    def test_sm103_legal_literal_transition_clean(self):
        src = dedent(
            """
            def f():
                check_transition(PowerState.POWERED, PowerState.SUSPENDING)
            """
        )
        assert rule_ids(src) == []

    def test_sm104_foreign_vm_state_mutation(self):
        src = dedent(
            """
            def activate(vm):
                vm.activity = VmActivity.ACTIVE
            """
        )
        assert "SM104" in rule_ids(src)

    def test_sm104_owner_module_exempt(self):
        src = dedent(
            """
            def activate(vm):
                vm.activity = VmActivity.ACTIVE
            """
        )
        assert rule_ids(src, module_name="repro.vm.machine") == []

    def test_sm104_self_mutation_is_the_owners_business(self):
        src = dedent(
            """
            class VM:
                def set_activity(self, activity):
                    self.activity = activity
            """
        )
        assert rule_ids(src) == []


# ---------------------------------------------------------------------------
# API: export surface
# ---------------------------------------------------------------------------


class TestApiRules:
    def test_api101_unresolved_export(self):
        src = "__all__ = ['missing']\n"
        assert rule_ids(src) == ["API101"]

    def test_api101_resolved_exports_clean(self):
        src = "from os import path\n\nx = 1\n\n__all__ = ['path', 'x']\n"
        assert rule_ids(src) == []

    def test_api102_duplicate_export(self):
        src = "x = 1\n__all__ = ['x', 'x']\n"
        assert rule_ids(src) == ["API102"]

    def test_api103_unexported_public_symbol_in_init(self):
        src = "from os import path\n\n__all__ = []\n"
        assert rule_ids(src, path="pkg/__init__.py") == ["API103"]

    def test_api103_only_applies_to_init_modules(self):
        src = "from os import path\n\n__all__ = []\n"
        assert rule_ids(src, path="pkg/module.py") == []

    def test_api103_underscore_names_exempt(self):
        src = "from os import path as _path\n\n__all__ = []\n"
        assert rule_ids(src, path="pkg/__init__.py") == []

    def test_api_dynamic_all_is_skipped(self):
        src = "names = ['a']\n__all__ = names\n"
        assert rule_ids(src) == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def write(self, tmp_path, source):
        target = tmp_path / "snippet.py"
        target.write_text(source)
        return str(target)

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = self.write(tmp_path, "x = 1\n")
        assert main([path]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_violation_exits_nonzero_with_location(self, tmp_path, capsys):
        path = self.write(tmp_path, "import random\nx = random.random()\n")
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert f"{path}:2:" in out
        assert "DET101" in out

    def test_json_format(self, tmp_path, capsys):
        path = self.write(tmp_path, "import time\nt = time.time()\n")
        assert main(["--format", "json", path]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == 1
        assert report["clean"] is False
        assert report["findings"][0]["rule"] == "DET103"

    def test_rule_selection(self, tmp_path):
        path = self.write(tmp_path, "import random\nx = random.random()\n")
        assert main(["--rules", "UNIT", path]) == 0
        assert main(["--rules", "DET101", path]) == 1

    def test_unknown_rule_is_usage_error(self, tmp_path):
        path = self.write(tmp_path, "x = 1\n")
        assert main(["--rules", "BOGUS", path]) == 2

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        # A typo'd path must not report a clean "0 findings" pass.
        assert main([str(tmp_path / "no_such_dir")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("DET101", "UNIT101", "SM101", "API101"):
            assert rid in out
