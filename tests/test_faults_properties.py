"""Property battery: global invariants under randomized fault schedules.

Runs a couple hundred small farm days, each with an independently
randomized fault profile and seed, and asserts the invariants that no
amount of injected failure is allowed to break: legal power-state
transitions only, per-host energy summing to the cluster total, every
VM resident on exactly one host, and the full
:func:`repro.farm.validate.validate_simulation` battery.  A zero-fault
control confirms the null profile reproduces the fault-free baseline
exactly, whatever its semantics knobs say.
"""

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

import pytest

import repro.cluster.host as host_module
from repro.cluster.power import _LEGAL_TRANSITIONS, PowerState
from repro.core import ALL_POLICIES, DEFAULT as DEFAULT_POLICY
from repro.farm import FarmConfig, FarmSimulation, validate_simulation
from repro.faults import FaultProfile
from repro.simulator.randomness import RngStreams
from repro.traces import DayType, generate_ensemble

# The ~200-run battery takes a handful of seconds; it stays in the
# default tier-1 run but CI's quick tier may deselect it via the marker.
pytestmark = pytest.mark.slow

CASES = 200

SMALL_SHAPE = dict(home_hosts=2, consolidation_hosts=1, vms_per_host=3)


def random_profile(rng: random.Random, index: int) -> FaultProfile:
    """An independently randomized fault schedule for one battery case."""
    low = rng.uniform(0.02, 0.45)
    high = rng.uniform(low + 0.05, 0.98)
    return FaultProfile(
        name=f"battery-{index}",
        migration_abort_prob=rng.uniform(0.0, 0.35),
        abort_progress_min=low,
        abort_progress_max=high,
        wake_failure_prob=rng.uniform(0.0, 0.6),
        wake_retry_cap=rng.randrange(0, 4),
        wake_backoff_base_s=rng.uniform(1.0, 30.0),
        memserver_crash_prob=rng.uniform(0.0, 0.6),
        page_timeout_prob=rng.uniform(0.0, 0.5),
        page_timeout_retries_max=rng.randrange(1, 5),
        page_retry_mib=rng.uniform(1.0, 16.0),
    )


def run_day(profile: FaultProfile, seed: int, policy=DEFAULT_POLICY,
            day_type: DayType = DayType.WEEKDAY) -> FarmSimulation:
    config = FarmConfig(**SMALL_SHAPE, faults=profile)
    ensemble = generate_ensemble(
        config.total_vms,
        day_type,
        seed=RngStreams(seed).get("traces").randrange(2**31),
        config=config.traces,
    )
    simulation = FarmSimulation(config, policy, ensemble, seed=seed)
    simulation.run()
    return simulation


@dataclass
class BatteryCase:
    """Everything one randomized run contributes to the battery."""

    index: int
    profile: FaultProfile
    simulation: FarmSimulation
    transitions: List[Tuple[PowerState, PowerState]]


@pytest.fixture(scope="module")
def battery() -> List[BatteryCase]:
    """Run the full randomized battery once, recording every transition."""
    master = random.Random(0xFA117)
    original = host_module.check_transition
    recorded: List[Tuple[PowerState, PowerState]] = []

    def recording(current: PowerState, target: PowerState) -> None:
        recorded.append((current, target))
        original(current, target)

    cases: List[BatteryCase] = []
    host_module.check_transition = recording
    try:
        for index in range(CASES):
            profile = random_profile(master, index)
            policy = ALL_POLICIES[index % len(ALL_POLICIES)]
            day_type = (DayType.WEEKDAY, DayType.WEEKEND)[index % 2]
            start = len(recorded)
            simulation = run_day(profile, seed=index, policy=policy,
                                 day_type=day_type)
            cases.append(BatteryCase(
                index=index,
                profile=profile,
                simulation=simulation,
                transitions=recorded[start:],
            ))
    finally:
        host_module.check_transition = original
    return cases


class TestRandomScheduleInvariants:
    def test_battery_exercises_fault_paths(self, battery):
        """The randomized schedules actually inject a meaningful load."""
        totals = [case.simulation.result.faults for case in battery]
        assert sum(c.migration_aborts for c in totals) > 0
        assert sum(c.wake_retries for c in totals) > 0
        assert sum(c.wake_give_ups for c in totals) > 0
        assert sum(c.memserver_crashes for c in totals) > 0
        assert sum(c.page_fetch_timeouts for c in totals) > 0

    def test_only_legal_power_transitions(self, battery):
        """Every transition ever attempted is an edge of the machine."""
        seen = set()
        for case in battery:
            assert case.transitions, "run never touched the state machine"
            for current, target in case.transitions:
                assert target in _LEGAL_TRANSITIONS[current], (
                    f"case {case.index}: illegal {current} -> {target}"
                )
                seen.add((current, target))
        # Faulty wakes must exercise the failure edge somewhere.
        assert (PowerState.RESUMING, PowerState.SLEEPING) in seen

    def test_per_host_energy_sums_to_cluster_total(self, battery):
        for case in battery:
            accountant = case.simulation.accountant
            by_entity = sum(
                accountant.energy_joules(entity)
                for entity in accountant.entities()
            )
            assert by_entity == pytest.approx(
                case.simulation.result.energy.managed_joules, rel=1e-9
            )

    def test_every_vm_on_exactly_one_host(self, battery):
        for case in battery:
            residency: Dict[int, int] = {}
            for host in case.simulation.cluster:
                for vm_id in host.vm_ids:
                    assert vm_id not in residency, (
                        f"case {case.index}: VM {vm_id} on hosts "
                        f"{residency[vm_id]} and {host.host_id}"
                    )
                    residency[vm_id] = host.host_id
            for vm_id, vm in case.simulation.vms.items():
                assert residency.get(vm_id) == vm.host_id, (
                    f"case {case.index}: VM {vm_id} lost"
                )

    def test_full_validation_battery_passes(self, battery):
        for case in battery:
            validate_simulation(case.simulation)

    def test_fault_counters_consistent(self, battery):
        for case in battery:
            faults = case.simulation.result.faults
            energy = case.simulation.result.energy
            assert energy.fault_events == faults.total_events
            assert energy.fault_retries == faults.total_retries
            assert energy.fault_rollbacks == faults.total_rollbacks
            assert faults.crash_forced_wakeups <= faults.memserver_crashes
            assert faults.aborted_traffic_mib >= 0.0


class TestZeroFaultControl:
    def fingerprint(self, simulation: FarmSimulation):
        result = simulation.result
        return (
            result.savings_fraction,
            result.counters,
            result.delays,
            tuple(result.active_vms),
            tuple(result.powered_hosts),
        )

    def test_null_profile_matches_baseline_exactly(self):
        """Zero rates reproduce the fault-free run whatever the knobs."""
        baseline = self.fingerprint(run_day(FaultProfile.none(), seed=7))
        knobs_only = FaultProfile(
            name="knobs-only",
            wake_retry_cap=9,
            wake_backoff_base_s=60.0,
            page_timeout_retries_max=8,
            page_retry_mib=64.0,
        )
        assert knobs_only.is_null
        assert self.fingerprint(run_day(knobs_only, seed=7)) == baseline
        scaled_out = FaultProfile.heavy().scaled(0.0, name="heavy-x0")
        assert self.fingerprint(run_day(scaled_out, seed=7)) == baseline

    def test_null_profile_leaves_counters_clean(self):
        simulation = run_day(FaultProfile.none(), seed=9)
        assert simulation.result.faults.total_events == 0
        assert str(simulation.result.faults) == "FaultCounters(clean)"
