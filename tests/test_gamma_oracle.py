"""Exact-solver oracle battery for Γ-robust packing.

Three rings of defense, outermost first:

* the branch-and-bound oracle (:func:`minimum_bins`) is verified
  against :func:`brute_force_minimum_bins` — an independent set-
  partition enumerator that shares no search machinery — on every
  seeded instance small enough to brute-force;
* the Γ-aware First-Fit heuristic is scored against the verified
  oracle: on every battery instance its optimality gap is at most one
  host (the PR's acceptance bound);
* the gap *report* consumed by ``micro gamma`` and CI records the
  statistics it claims (per-instance rows, mean/max gap, optimal
  fraction) consistently with its own rows.

Also pins the ``gamma.intervals`` determinism contract of
:class:`DemandIntervalModel`: intervals are a pure function of
``(root seed, vm id)``, independent of query order.
"""

import math

import pytest

from repro.policies import (
    DemandIntervalModel,
    brute_force_minimum_bins,
    gamma_first_fit,
    minimum_bins,
    oracle_gap_report,
    render_gap_report,
    seeded_instance,
)
from repro.vm.machine import VirtualMachine
from repro.vm.workingset import WorkingSetSampler

#: Instances the independent brute force can afford (<= 8 items each).
BRUTE_FORCE_SEEDS = range(40)

#: The default battery scored for heuristic gaps (12-item instances).
GAP_SEEDS = range(30)


@pytest.mark.parametrize("seed", BRUTE_FORCE_SEEDS)
def test_branch_and_bound_matches_brute_force(seed):
    """B&B must agree with exhaustive set-partition enumeration."""
    instance = seeded_instance(seed, max_items=8)
    assert len(instance.items) <= 8
    expected = brute_force_minimum_bins(
        instance.items, instance.gamma, instance.capacity
    )
    assert minimum_bins(
        instance.items, instance.gamma, instance.capacity
    ) == expected


@pytest.mark.parametrize("seed", BRUTE_FORCE_SEEDS)
def test_oracle_respects_bounds(seed):
    """optimal is sandwiched: volume lower bound <= optimal <= FF."""
    instance = seeded_instance(seed, max_items=8)
    optimal = minimum_bins(instance.items, instance.gamma, instance.capacity)
    heuristic = len(gamma_first_fit(
        instance.items, instance.gamma, instance.capacity
    ))
    volume_bound = math.ceil(
        sum(item.nominal for item in instance.items) / instance.capacity
        - 1e-9
    )
    assert max(1, volume_bound) <= optimal <= heuristic


def test_empty_instance_needs_no_bins():
    assert minimum_bins([], 2, 100.0) == 0
    assert brute_force_minimum_bins([], 2, 100.0) == 0


def test_heuristic_gap_at_most_one_host():
    """Acceptance bound: on every seeded battery instance the Γ-robust
    First-Fit uses at most one host more than the exact optimum."""
    report = oracle_gap_report()
    rows = report["instances"]
    assert len(rows) == len(GAP_SEEDS)
    for row in rows:
        assert row["gap"] >= 0, row
        assert row["gap"] <= 1, (
            f"seed {row['seed']}: FF used {row['ff_bins']} bins vs "
            f"optimal {row['optimal_bins']}"
        )


def test_gap_statistics_are_recorded_and_consistent():
    """The report's summary is derived from (and consistent with) its
    per-instance rows, and the rendered table surfaces it."""
    report = oracle_gap_report()
    rows = report["instances"]
    summary = report["summary"]
    gaps = [row["gap"] for row in rows]
    assert report["schema"] == "repro.gamma-oracle/1"
    assert summary["count"] == len(rows)
    assert summary["mean_gap"] == pytest.approx(sum(gaps) / len(gaps))
    assert summary["max_gap"] == max(gaps)
    assert summary["optimal_fraction"] == pytest.approx(
        gaps.count(0) / len(gaps)
    )
    rendered = render_gap_report(report)
    assert f"instances: {summary['count']}" in rendered
    assert f"max gap: {summary['max_gap']}" in rendered
    # One line per instance plus header (2) and summary (1).
    assert len(rendered.splitlines()) == len(rows) + 3


def test_report_is_deterministic():
    assert oracle_gap_report() == oracle_gap_report()


# ----------------------------------------------------------------------
# the gamma.intervals determinism contract
# ----------------------------------------------------------------------


def _model(root_seed: int) -> DemandIntervalModel:
    return DemandIntervalModel(WorkingSetSampler(), root_seed)


def test_intervals_pure_in_seed_and_vm_id():
    """Same (root seed, vm id) -> same interval, regardless of the
    order VMs are queried in — the zone-sharding guarantee."""
    vms = [VirtualMachine(vm_id, origin_home_id=0) for vm_id in range(16)]
    forward = {vm.vm_id: _model(42).interval(vm) for vm in vms}
    backward = {
        vm.vm_id: _model(42).interval(vm) for vm in reversed(vms)
    }
    assert forward == backward
    different_seed = {vm.vm_id: _model(43).interval(vm) for vm in vms}
    assert forward != different_seed


def test_interval_shape():
    """nominal <= memory; deviation covers the configured fraction of
    the remaining headroom and never pushes past full memory."""
    sampler = WorkingSetSampler()
    model = DemandIntervalModel(sampler, 7, spike_min=0.25, spike_max=0.75)
    for vm_id in range(32):
        vm = VirtualMachine(vm_id, origin_home_id=0)
        nominal, deviation = model.interval(vm)
        assert nominal == pytest.approx(
            min(sampler.expected_mib(), vm.memory_mib)
        )
        headroom = vm.memory_mib - nominal
        assert 0.25 * headroom - 1e-9 <= deviation <= 0.75 * headroom + 1e-9
        assert nominal + deviation <= vm.memory_mib + 1e-9
