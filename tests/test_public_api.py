"""Public API surface sanity."""

import importlib

import pytest

import repro


PACKAGES = [
    "repro.analysis",
    "repro.checkers",
    "repro.checkers.rules",
    "repro.cluster",
    "repro.core",
    "repro.energy",
    "repro.equiv",
    "repro.farm",
    "repro.memserver",
    "repro.migration",
    "repro.pagesim",
    "repro.prototype",
    "repro.simulator",
    "repro.traces",
    "repro.vm",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_top_level_quickstart_symbols(self):
        for symbol in ("FarmConfig", "simulate_day", "FULL_TO_PARTIAL",
                       "DayType", "generate_ensemble"):
            assert hasattr(repro, symbol)

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_errors_form_a_hierarchy(self):
        from repro import errors

        for name in ("ConfigError", "CapacityError", "PowerStateError",
                     "MigrationError", "TraceFormatError", "SimulationError",
                     "CompressionError"):
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)
