"""The committed equivalence baseline certifies the current engine.

``tests/golden/equiv_baseline.json`` pins fingerprint ensembles for the
four paper policies plus ``GammaRobust@1`` at derived seeds.  The
current engine, replayed at those seeds, must be *bit-identical* to the
committed fingerprints — not merely statistically accepted — because
the baseline was produced by this same engine.  A future engine variant
only has to pass the paired battery (``oasis-sim equiv compare``); the
reference engine itself has no excuse for any drift at all.
"""

import json
import os

import pytest

from repro.equiv import (
    baseline_seeds,
    compare_to_baseline,
    ensemble_seeds,
    load_baseline,
    read_baseline,
)
from repro.farm import FarmConfig
from tests.golden.update_goldens import (
    EQUIV_BASELINE_PATH,
    EQUIV_ENSEMBLE_SIZE,
    EQUIV_POLICIES,
    EQUIV_ROOT_SEED,
    FARM_SHAPE,
)

pytestmark = [pytest.mark.equiv, pytest.mark.slow]


@pytest.fixture(scope="module")
def payload():
    assert os.path.exists(EQUIV_BASELINE_PATH), (
        "missing tests/golden/equiv_baseline.json; run "
        "PYTHONPATH=src python tests/golden/update_goldens.py"
    )
    return read_baseline(EQUIV_BASELINE_PATH)


class TestCommittedBaseline:
    def test_covers_the_committed_policies(self, payload):
        assert sorted(payload["policies"]) == sorted(EQUIV_POLICIES)

    def test_seeds_match_the_derivation(self, payload):
        assert baseline_seeds(payload) == ensemble_seeds(
            EQUIV_ROOT_SEED, EQUIV_ENSEMBLE_SIZE
        )

    def test_every_ensemble_is_full_size(self, payload):
        for name, fingerprints in load_baseline(payload).items():
            assert len(fingerprints) == EQUIV_ENSEMBLE_SIZE, name
            assert [fp.seed for fp in fingerprints] == baseline_seeds(
                payload
            ), name

    def test_file_is_stably_formatted(self, payload):
        with open(EQUIV_BASELINE_PATH, encoding="utf-8") as handle:
            on_disk = handle.read()
        assert on_disk == json.dumps(
            payload, indent=2, sort_keys=True
        ) + "\n"

    @pytest.mark.parametrize("policy", ["FulltoPartial", "GammaRobust@1"])
    def test_current_engine_is_bit_identical_to_baseline(
        self, payload, policy
    ):
        report = compare_to_baseline(
            payload, FarmConfig(**FARM_SHAPE), policy
        )
        assert report.paired
        assert report.equivalent, report.render()
        assert all(v.p_value > 0.999 for v in report.verdicts), (
            "the reference engine drifted from its own committed baseline"
        )
