"""Prototype layer: image model, micro-benchmarks, apps, power meter."""

import pytest

from repro.errors import ConfigError
from repro.memserver.server import PageServiceModel
from repro.prototype import (
    ConsolidationMicrobench,
    MicrobenchConfig,
    measure_energy_profiles,
    startup_latency_table,
    VmImageModel,
)
from repro.prototype.apps import prefetch_alternative_s, startup_latency
from repro.vm.workload import APPLICATION_CATALOG, WORKLOAD_1, WORKLOAD_2


class TestVmImageModel:
    def test_fresh_image_is_fully_dirty(self):
        image = VmImageModel()
        assert image.dirty_mib == image.used_mib
        assert image.used_mib == 500.0  # OS base only

    def test_loading_workloads_grows_used_memory(self):
        image = VmImageModel()
        image.load_workload(WORKLOAD_1)
        assert image.used_mib == pytest.approx(500.0 + WORKLOAD_1.resident_mib)
        assert image.zero_mib == pytest.approx(4096.0 - image.used_mib)

    def test_mark_uploaded_clears_dirty(self):
        image = VmImageModel()
        image.load_workload(WORKLOAD_1)
        image.mark_uploaded()
        assert image.dirty_mib == 0.0

    def test_partial_dirty_fraction(self):
        image = VmImageModel()
        image.mark_uploaded()
        image.load_workload(WORKLOAD_2, dirty_fraction=0.5)
        assert image.dirty_mib == pytest.approx(0.5 * WORKLOAD_2.resident_mib)

    def test_dirty_capped_at_used(self):
        image = VmImageModel()
        image.dirty(1e9)
        assert image.dirty_mib == image.used_mib

    def test_descriptor_size_matches_measured_16_mib(self):
        # 8 bytes per PTE over 1M pages + ~8 MiB context = 16 MiB (§4.4.3).
        assert VmImageModel().descriptor_mib() == pytest.approx(16.0, abs=0.5)

    def test_compression_shrinks_used_image(self):
        image = VmImageModel()
        image.load_workload(WORKLOAD_1)
        assert image.compressed_used_mib() < 0.7 * image.used_mib

    def test_overflow_rejected(self):
        image = VmImageModel(total_mib=600.0)
        with pytest.raises(ConfigError):
            image.load_workload(WORKLOAD_1)


class TestFigure5Microbench:
    @pytest.fixture(scope="class")
    def report(self):
        return ConsolidationMicrobench().run()

    def test_full_migration_about_41_seconds(self, report):
        assert report.full_migration_s == pytest.approx(41.0, rel=0.1)

    def test_first_partial_migration_about_15_7_seconds(self, report):
        assert report.partial_migration_1_s == pytest.approx(15.7, rel=0.1)

    def test_first_upload_about_10_2_seconds(self, report):
        assert report.memory_upload_1_s == pytest.approx(10.2, rel=0.15)

    def test_second_partial_migration_about_7_2_seconds(self, report):
        # The differential-upload optimization (§4.3).
        assert report.partial_migration_2_s == pytest.approx(7.2, rel=0.1)

    def test_differential_upload_about_2_2_seconds(self, report):
        assert report.memory_upload_2_s == pytest.approx(2.2, rel=0.25)

    def test_reintegration_about_3_7_seconds(self, report):
        assert report.reintegration_s == pytest.approx(3.7, rel=0.1)

    def test_descriptor_push_lower_bound_about_5_2_seconds(self, report):
        assert report.descriptor_push_s == pytest.approx(5.2, rel=0.1)

    def test_partial_beats_full_migration(self, report):
        assert report.partial_migration_1_s < 0.5 * report.full_migration_s
        assert report.partial_migration_2_s < 0.25 * report.full_migration_s

    def test_traffic_matches_section_4_4_3(self, report):
        assert report.descriptor_mib == pytest.approx(16.0, abs=0.5)
        assert report.on_demand_mib == pytest.approx(56.9)
        assert report.reintegration_mib == pytest.approx(175.3)
        # Full migration moves the whole image plus redirtied rounds.
        assert report.full_migration_traffic_mib >= 4096.0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MicrobenchConfig(w2_dirty_fraction=1.5)
        with pytest.raises(ConfigError):
            MicrobenchConfig(on_demand_mib=-1.0)


class TestFigure6Startup:
    def test_libreoffice_matches_paper_extreme(self):
        entry = startup_latency(APPLICATION_CATALOG["libreoffice-doc"])
        assert entry.partial_vm_s == pytest.approx(168.0, rel=0.07)
        assert entry.slowdown == pytest.approx(111.0, rel=0.1)

    def test_every_app_slows_down_dramatically(self):
        for entry in startup_latency_table().values():
            assert entry.slowdown > 20.0

    def test_slowdowns_capped_by_paper_maximum(self):
        worst = max(e.slowdown for e in startup_latency_table().values())
        assert worst <= 120.0  # "up to 111 times longer"

    def test_prefetching_the_vm_beats_demand_start(self):
        # Figure 6's punchline: 41 s for everything vs 168 s for one app.
        lo = startup_latency(APPLICATION_CATALOG["libreoffice-doc"])
        assert prefetch_alternative_s() < lo.partial_vm_s / 3.0

    def test_dram_backed_server_would_fix_startup(self):
        fast = startup_latency(
            APPLICATION_CATALOG["libreoffice-doc"],
            service=PageServiceModel.dram_backed(),
        )
        assert fast.partial_vm_s < 35.0


class TestTable1PowerMeter:
    @pytest.fixture(scope="class")
    def readings(self):
        return {
            (r.device, r.state): r for r in measure_energy_profiles()
        }

    def test_idle_host(self, readings):
        assert readings[("Custom host", "Idle")].power_w == pytest.approx(102.2)

    def test_twenty_vms(self, readings):
        assert readings[("Custom host", "20 VMs")].power_w == pytest.approx(137.9)

    def test_suspend(self, readings):
        row = readings[("Custom host", "Suspend")]
        assert row.power_w == pytest.approx(138.2)
        assert row.time_s == pytest.approx(3.1)

    def test_resume(self, readings):
        row = readings[("Custom host", "Resume")]
        assert row.power_w == pytest.approx(149.2)
        assert row.time_s == pytest.approx(2.3)

    def test_sleep(self, readings):
        assert readings[("Custom host", "Sleep (S3)")].power_w == pytest.approx(12.9)

    def test_memory_server_components(self, readings):
        assert readings[("Memory server", "Idle")].power_w == pytest.approx(27.8)
        assert readings[("SAS drive", "Idle")].power_w == pytest.approx(14.4)
