"""Hot-path machinery: lazy labels, __slots__, index/lazy-ws batteries.

Covers the ISSUE 5 satellite checklist: schedule labels must cost
nothing when no tracer consumes them, the hot per-VM/per-host/per-event
objects must reject stray attributes, and randomized property batteries
must show the incremental indexes and the lazy working-set
materialization agree exactly with from-scratch recomputation.
"""

import random

import pytest

from repro.cluster import Cluster, Host, HostRole, PowerState
from repro.core import FULL_TO_PARTIAL
from repro.core.placement import _ShadowCapacity
from repro.core.plan import MigrationMode, PlannedMigration
from repro.errors import ConfigError
from repro.farm import FarmConfig, FarmSimulation
from repro.migration.traffic import TrafficLedger
from repro.obs.tracer import RecordingTracer
from repro.simulator.engine import Simulator
from repro.simulator.events import ScheduledEvent
from repro.traces import DayType, TraceEnsemble, UserDayTrace
from repro.traces.edges import ActivityEdgeSchedule
from repro.traces.sampler import generate_ensemble
from repro.units import INTERVALS_PER_DAY
from repro.vm import IntervalClock, LazyWorkingSet, VirtualMachine
from repro.vm.state import Residency


def small_ensemble(users, seed=0):
    rng = random.Random(seed)
    traces = []
    for user_id in range(users):
        intervals = tuple(
            rng.random() < 0.3 for _ in range(INTERVALS_PER_DAY)
        )
        traces.append(UserDayTrace(user_id, DayType.WEEKDAY, intervals))
    return TraceEnsemble(DayType.WEEKDAY, tuple(traces))


# ---------------------------------------------------------------------------
# Satellite: lazy schedule labels
# ---------------------------------------------------------------------------


class TestLazyLabels:
    def test_callable_label_never_invoked_without_tracer(self):
        sim = Simulator()
        calls = []

        def label():
            calls.append(1)
            return "expensive"

        sim.schedule(1.0, lambda: None, label=label)
        sim.run()
        assert calls == []

    def test_callable_label_resolved_for_enabled_tracer(self):
        sim = Simulator(tracer=RecordingTracer())
        calls = []

        def label():
            calls.append(1)
            return "expensive"

        sim.schedule(1.0, lambda: None, label=label)
        sim.run()
        assert calls == [1]

    def test_farm_builds_no_activation_labels_untraced(self):
        config = FarmConfig(
            home_hosts=2, consolidation_hosts=1, vms_per_host=2
        )
        simulation = FarmSimulation(
            config, FULL_TO_PARTIAL, small_ensemble(4), seed=0
        )
        seen = []
        inner = simulation.sim.schedule

        def recording_schedule(delay, callback, *args, label=""):
            seen.append(label)
            return inner(delay, callback, *args, label=label)

        simulation.sim.schedule = recording_schedule
        simulation.run()
        assert seen  # activations did fire
        assert all(label == "" for label in seen)

    def test_farm_builds_activation_labels_when_traced(self):
        config = FarmConfig(
            home_hosts=2, consolidation_hosts=1, vms_per_host=2
        )
        simulation = FarmSimulation(
            config, FULL_TO_PARTIAL, small_ensemble(4), seed=0,
            tracer=RecordingTracer(),
        )
        seen = []
        inner = simulation.sim.schedule

        def recording_schedule(delay, callback, *args, label=""):
            seen.append(label)
            return inner(delay, callback, *args, label=label)

        simulation.sim.schedule = recording_schedule
        simulation.run()
        assert any(
            isinstance(label, str) and label.startswith("activate-")
            for label in seen
        )


# ---------------------------------------------------------------------------
# Satellite: __slots__ on hot objects
# ---------------------------------------------------------------------------


class TestSlotsRejectStrayAttributes:
    def instances(self):
        clock = IntervalClock()
        vm = VirtualMachine(0, 0)
        host = Host(0, HostRole.COMPUTE, 4096.0)
        event = ScheduledEvent(0.0, 0, lambda: None)
        ledger = TrafficLedger()
        lazy = LazyWorkingSet(100.0, 1.0, 4096.0)
        migration = PlannedMigration(1, 0, 5, MigrationMode.FULL)
        shadow = _ShadowCapacity(Cluster(1, 1, 4096.0))
        return [clock, vm, host, event, ledger, lazy, migration, shadow]

    def test_all_hot_classes_use_slots(self):
        for obj in self.instances():
            assert not hasattr(obj, "__dict__"), type(obj).__name__

    def test_stray_assignment_raises(self):
        for obj in self.instances():
            with pytest.raises(AttributeError):
                obj.stray_attribute = 1


# ---------------------------------------------------------------------------
# Satellite: randomized property batteries
# ---------------------------------------------------------------------------


class TestIndexBattery:
    """Incremental indexes equal a from-scratch rescan after every
    mutation, across ~100 randomized mutation schedules."""

    @pytest.mark.parametrize("seed", range(100))
    def test_randomized_mutations_match_rescan(self, seed):
        rng = random.Random(seed)
        cluster = Cluster(
            home_hosts=rng.randint(2, 4),
            consolidation_hosts=rng.randint(1, 3),
            host_capacity_mib=4096.0 * rng.randint(2, 4),
        )
        hosts = cluster.hosts
        next_vm = [0]

        def fresh_vm():
            vm = VirtualMachine(next_vm[0], home_id)
            next_vm[0] += 1
            return vm

        for _ in range(40):
            op = rng.randrange(4)
            host = rng.choice(hosts)
            if op == 0 and host.is_powered:
                home_id = rng.choice(
                    [h.host_id for h in hosts if h.host_id != host.host_id]
                )
                vm = fresh_vm()
                if host.role is HostRole.CONSOLIDATION:
                    vm.become_partial(host.host_id, rng.uniform(32.0, 512.0))
                if host.can_fit(
                    vm.memory_mib
                    if vm.residency is Residency.FULL
                    else vm.working_set_mib
                ):
                    host.attach(vm)
            elif op == 1 and host.vm_count > 0:
                victim = rng.choice(host.vms())
                host.detach(victim.vm_id)
            elif op == 2 and host.is_powered and host.vm_count == 0:
                host.begin_suspend()
                if rng.random() < 0.8:
                    host.complete_suspend()
            elif op == 3 and host.power_state is PowerState.SLEEPING:
                host.begin_resume()
                if rng.random() < 0.8:
                    host.complete_resume()
            cluster.verify_indexes()
            cluster.check_invariants()


class TestLazyWorkingSetBattery:
    """Lazy materialization equals eager per-interval accumulation at
    every sample point, for 100 randomized growth configurations."""

    @pytest.mark.parametrize("seed", range(100))
    def test_lazy_equals_eager_everywhere(self, seed):
        rng = random.Random(seed)
        cap = rng.uniform(64.0, 4096.0)
        initial = rng.uniform(0.0, cap)
        delta = rng.choice([0.0, rng.uniform(0.01, cap / 10.0)])
        horizon = rng.randint(1, INTERVALS_PER_DAY)

        lazy = LazyWorkingSet(initial, delta, cap)
        mutating = LazyWorkingSet(initial, delta, cap)
        eager = initial
        for index in range(1, horizon + 1):
            eager = min(eager + delta, cap)  # the replaced recurrence
            assert lazy.size_at(index) == eager
            if rng.random() < 0.2:
                # Re-anchoring mid-stream must not perturb the replay.
                assert mutating.advance_to(index) == eager
        assert mutating.size_at(horizon) == eager

    def test_materializing_backwards_is_rejected(self):
        lazy = LazyWorkingSet(10.0, 1.0, 100.0)
        lazy.advance_to(7)
        with pytest.raises(ConfigError):
            lazy.size_at(6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            LazyWorkingSet(-1.0, 1.0, 100.0)
        with pytest.raises(ConfigError):
            LazyWorkingSet(200.0, 1.0, 100.0)
        with pytest.raises(ConfigError):
            LazyWorkingSet(10.0, -1.0, 100.0)


class TestEdgeScheduleBattery:
    def test_edges_reconstruct_raw_traces(self):
        ensemble = generate_ensemble(40, DayType.WEEKDAY, seed=7)
        schedule = ActivityEdgeSchedule.compile(ensemble.traces)
        for vm_id, trace in enumerate(ensemble.traces):
            for index, active in enumerate(trace.intervals):
                assert schedule.activity_at(vm_id, index) == active

    def test_debug_index_mode_stays_clean(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_INDEXES", "1")
        config = FarmConfig(
            home_hosts=3, consolidation_hosts=1, vms_per_host=3
        )
        simulation = FarmSimulation(
            config, FULL_TO_PARTIAL, small_ensemble(9, seed=3), seed=1
        )
        assert simulation._debug_indexes
        simulation.run()  # verifies indexes at every interval boundary
