"""Page store: uploads, differential uploads, page service."""

import pytest

from repro.errors import MigrationError
from repro.memserver import Lz77Codec, PageStore
from repro.memserver.pages import PAGE_BYTES, PageKind, SyntheticPageFactory


@pytest.fixture
def pages():
    factory = SyntheticPageFactory(seed=5)
    return {
        pfn: factory.make(PageKind.TEXT if pfn % 2 else PageKind.CODE)
        for pfn in range(16)
    }


class TestUpload:
    def test_initial_upload_sends_everything(self, pages):
        store = PageStore()
        receipt = store.upload(7, pages)
        assert receipt.pages_sent == 16
        assert not receipt.differential
        assert receipt.raw_mib == pytest.approx(16 * 4 / 1024)
        assert store.image_page_count(7) == 16

    def test_upload_compresses(self, pages):
        receipt = PageStore().upload(7, pages)
        assert 0.0 < receipt.compression_ratio < 1.0
        assert receipt.compressed_mib < receipt.raw_mib

    def test_upload_time_uses_sas_link(self, pages):
        receipt = PageStore().upload(7, pages)
        # setup (0.5 s) plus compressed transfer at 128 MiB/s.
        expected = 0.5 + receipt.compressed_mib / 128.0
        assert receipt.upload_s == pytest.approx(expected)

    def test_differential_upload_sends_only_dirty(self, pages):
        store = PageStore()
        store.upload(7, pages)
        receipt = store.upload(7, pages, dirty_pfns=[1, 3])
        assert receipt.differential
        assert receipt.pages_sent == 2

    def test_differential_updates_content(self, pages):
        store = PageStore()
        store.upload(7, pages)
        modified = dict(pages)
        modified[3] = bytes(PAGE_BYTES)
        store.upload(7, modified, dirty_pfns=[3])
        assert store.fetch_page(7, 3) == bytes(PAGE_BYTES)
        assert store.fetch_page(7, 1) == pages[1]

    def test_dirty_pfn_must_exist_in_pages(self, pages):
        store = PageStore()
        store.upload(7, pages)
        with pytest.raises(MigrationError):
            store.upload(7, pages, dirty_pfns=[999])

    def test_wrong_page_size_rejected(self):
        with pytest.raises(MigrationError):
            PageStore().upload(7, {0: b"short"})

    def test_empty_upload(self):
        receipt = PageStore().upload(7, {})
        assert receipt.pages_sent == 0
        assert receipt.upload_s == 0.0
        assert receipt.compression_ratio == 1.0


class TestService:
    def test_fetch_roundtrips(self, pages):
        store = PageStore()
        store.upload(7, pages)
        for pfn, raw in pages.items():
            assert store.fetch_page(7, pfn) == raw

    def test_fetch_compressed_is_wire_format(self, pages):
        store = PageStore()
        store.upload(7, pages)
        blob = store.fetch_compressed(7, 0)
        assert Lz77Codec.decompress(blob) == pages[0]

    def test_fetch_unknown_page(self, pages):
        store = PageStore()
        store.upload(7, pages)
        with pytest.raises(MigrationError):
            store.fetch_page(7, 999)

    def test_fetch_unknown_vm(self):
        with pytest.raises(MigrationError):
            PageStore().fetch_page(1, 0)

    def test_release_frees_image(self, pages):
        store = PageStore()
        store.upload(7, pages)
        store.release(7)
        assert not store.has_image(7)
        with pytest.raises(MigrationError):
            store.fetch_page(7, 0)

    def test_release_is_idempotent(self):
        PageStore().release(42)

    def test_multiple_vm_images_isolated(self, pages):
        store = PageStore()
        store.upload(1, pages)
        store.upload(2, {0: bytes(PAGE_BYTES)})
        assert store.vm_ids() == {1, 2}
        assert store.image_page_count(2) == 1
        assert store.fetch_page(1, 0) == pages[0]
