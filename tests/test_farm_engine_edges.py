"""Edge cases in the farm engine's power-state and timing machinery."""

from repro.cluster import PowerState
from repro.core import FULL_TO_PARTIAL, ONLY_PARTIAL
from repro.energy import HostPowerProfile
from repro.farm import FarmConfig, FarmSimulation
from repro.traces import DayType, TraceEnsemble, UserDayTrace
from repro.units import INTERVALS_PER_DAY
from repro.vm import WorkingSetSampler
from repro.vm.state import Residency


def bits(active_intervals):
    out = [0] * INTERVALS_PER_DAY
    for index in active_intervals:
        out[index] = 1
    return out


def ensemble(per_user):
    traces = tuple(
        UserDayTrace.from_bits(user_id, DayType.WEEKDAY, user_bits)
        for user_id, user_bits in enumerate(per_user)
    )
    return TraceEnsemble(DayType.WEEKDAY, traces)


def tiny(**overrides):
    defaults = dict(
        home_hosts=2, consolidation_hosts=1, vms_per_host=2,
        working_sets=WorkingSetSampler(std_mib=0.0),
    )
    defaults.update(overrides)
    return FarmConfig(**defaults)


class TestWakeDuringSuspend:
    def test_activation_just_after_vacate_bounces_the_home(self):
        # User 0 idles exactly one interval, activating again while its
        # home is still suspending (vacate at t=300, suspend ~t=310,
        # activation lands within interval 1).  The consolidation host
        # is sized so the conversion cannot fit, forcing a home wake
        # that has to ride through the suspend transition.
        config = tiny(
            home_hosts=14,
            host_capacity_mib=2 * 4096.0 + 100.0,
            activation_jitter_s=30.0,
        )
        users = [bits(range(1, 4))] + [[0] * INTERVALS_PER_DAY] * 27
        simulation = FarmSimulation(config, FULL_TO_PARTIAL,
                                    ensemble(users), seed=4)
        result = simulation.run()
        simulation.cluster.check_invariants()
        wake_samples = [
            d for d in result.delays
            if d.vm_id == 0 and d.action == "wake_home_return_all"
        ]
        assert wake_samples
        # The delay covers at least resume + reintegration; if it caught
        # the host mid-suspend it also waited the suspend out.
        assert wake_samples[0].delay_s >= 3.7

    def test_no_host_ends_the_day_in_transition_with_vms(self):
        config = tiny()
        users = [bits(range(100, 150)) for _ in range(4)]
        simulation = FarmSimulation(config, FULL_TO_PARTIAL,
                                    ensemble(users), seed=1)
        simulation.run()
        for host in simulation.cluster:
            if host.vm_count > 0:
                assert host.power_state in (
                    PowerState.POWERED, PowerState.RESUMING
                )


class TestOnlyPartialReturnPath:
    def test_activation_always_reintegrates(self):
        config = tiny()
        users = [bits(range(120, 140))] + [[0] * INTERVALS_PER_DAY] * 3
        simulation = FarmSimulation(config, ONLY_PARTIAL,
                                    ensemble(users), seed=2)
        result = simulation.run()
        samples = [d for d in result.delays if d.vm_id == 0 and d.delay_s > 0]
        assert samples
        assert samples[0].action == "wake_home_return_all"
        # Both of home 0's VMs came back with it.
        assert result.counters.reintegrations >= 2
        vm = simulation.vms[0]
        # After the active block the planner re-consolidates.
        assert vm.residency is Residency.PARTIAL


class TestPlanningInterval:
    def test_sparser_planning_still_consolidates(self):
        config = tiny(planning_interval_s=900.0)
        users = [[0] * INTERVALS_PER_DAY] * 4
        simulation = FarmSimulation(config, FULL_TO_PARTIAL,
                                    ensemble(users), seed=0)
        result = simulation.run()
        assert result.mean_home_sleep_fraction() > 0.9

    def test_sparser_planning_means_fewer_plans(self):
        users = [bits(range(i * 20, i * 20 + 10)) for i in range(4)]
        eager = FarmSimulation(
            tiny(), FULL_TO_PARTIAL, ensemble(users), seed=0
        ).run()
        sparse = FarmSimulation(
            tiny(planning_interval_s=1800.0), FULL_TO_PARTIAL,
            ensemble(users), seed=0,
        ).run()
        assert (
            sparse.counters.partial_migrations
            <= eager.counters.partial_migrations
        )


class TestActiveVmPowerPremium:
    def test_extra_watts_for_active_vms_raise_energy(self):
        users = [bits(range(0, 144)) for _ in range(4)]  # busy half-day
        base = FarmSimulation(
            tiny(), FULL_TO_PARTIAL, ensemble(users), seed=0
        ).run()
        premium_profile = HostPowerProfile(per_active_vm_extra_w=5.0)
        premium = FarmSimulation(
            tiny(host_power=premium_profile), FULL_TO_PARTIAL,
            ensemble(users), seed=0,
        ).run()
        assert (
            premium.energy.managed_joules > base.energy.managed_joules
        )


class TestDelayBookkeeping:
    def test_every_idle_to_active_transition_is_sampled(self):
        users = [bits(list(range(50, 60)) + list(range(200, 210)))]
        users += [[0] * INTERVALS_PER_DAY] * 3
        simulation = FarmSimulation(tiny(), FULL_TO_PARTIAL,
                                    ensemble(users), seed=0)
        result = simulation.run()
        samples = [d for d in result.delays if d.vm_id == 0]
        assert len(samples) == 2  # two activation edges

    def test_sample_times_fall_inside_their_interval(self):
        users = [bits(range(100, 110))] + [[0] * INTERVALS_PER_DAY] * 3
        simulation = FarmSimulation(tiny(), FULL_TO_PARTIAL,
                                    ensemble(users), seed=0)
        result = simulation.run()
        sample = [d for d in result.delays if d.vm_id == 0][0]
        assert 100 * 300.0 <= sample.time_s < 101 * 300.0


class TestActivationJitterBounds:
    def test_sub_second_jitter_runs_the_whole_day(self):
        # Regression: the jitter draw used to be uniform(1, jitter_max-1),
        # which inverts its bounds for any valid jitter_max < 2 and can
        # produce a negative delay that Simulator.schedule rejects with a
        # SimulationError mid-day.
        users = [
            bits(list(range(10, 20)) + list(range(40, 50)) + [70, 90, 120])
            for _ in range(4)
        ]
        config = tiny(activation_jitter_s=0.5)
        simulation = FarmSimulation(config, FULL_TO_PARTIAL,
                                    ensemble(users), seed=0)
        result = simulation.run()  # pre-fix: SimulationError
        assert result.delays

    def test_jitter_stays_within_the_configured_window(self):
        users = [bits(range(10, 20)) for _ in range(4)]
        config = tiny(activation_jitter_s=30.0)
        simulation = FarmSimulation(config, FULL_TO_PARTIAL,
                                    ensemble(users), seed=3)
        result = simulation.run()
        # Activation samples land within jitter_max of their interval
        # boundary (interval 10 starts at 3000 s).
        activation_times = [
            d.time_s for d in result.delays if 3000.0 <= d.time_s < 3300.0
        ]
        assert activation_times
        for time_s in activation_times:
            assert 3000.0 <= time_s <= 3000.0 + 30.0


class TestHorizonGarbageCollection:
    def test_stale_horizons_are_dropped_during_the_day(self):
        # Hosts migrate early in the day and then idle; their busy
        # horizons must not accumulate until the end of the day.
        users = [bits(range(2, 5)) for _ in range(4)]
        simulation = FarmSimulation(tiny(), FULL_TO_PARTIAL,
                                    ensemble(users), seed=0)
        simulation.run()
        # All activity ended hours before midnight, so every horizon has
        # passed the last interval's watermark and been collected.
        assert not simulation.scheduler._busy_until
        assert not simulation.scheduler._release_after
        assert not simulation._settles_at

    def test_collection_does_not_change_results(self, monkeypatch):
        users = [
            bits(list(range(5, 30)) + list(range(100, 130)))
            for _ in range(4)
        ]
        with_gc = FarmSimulation(tiny(), FULL_TO_PARTIAL,
                                 ensemble(users), seed=2).run()
        monkeypatch.setattr(
            FarmSimulation, "_collect_stale_horizons",
            lambda self, now: None,
        )
        without_gc = FarmSimulation(tiny(), FULL_TO_PARTIAL,
                                    ensemble(users), seed=2).run()
        assert with_gc.savings_fraction == without_gc.savings_fraction
        assert with_gc.counters == without_gc.counters
        assert with_gc.delays == without_gc.delays
        assert with_gc.powered_hosts == without_gc.powered_hosts
