"""Calibration of the synthetic traces against the paper's statistics.

These are the DESIGN.md §6 trace targets: they pin the ensemble-level
behaviour the cluster evaluation depends on.
"""

import pytest

from repro.traces import DayType, compute_ensemble_stats, generate_ensemble


@pytest.fixture(scope="module")
def weekday_stats():
    return compute_ensemble_stats(
        generate_ensemble(900, DayType.WEEKDAY, seed=20160418)
    )


@pytest.fixture(scope="module")
def weekend_stats():
    return compute_ensemble_stats(
        generate_ensemble(900, DayType.WEEKEND, seed=20160418)
    )


class TestWeekdayCalibration:
    def test_peak_concurrency_below_paper_maximum(self, weekday_stats):
        # "there are never more than 411 (46%) active VMs simultaneously"
        assert weekday_stats.peak_concurrent_fraction <= 0.50

    def test_peak_concurrency_substantial(self, weekday_stats):
        assert weekday_stats.peak_concurrent_fraction >= 0.35

    def test_peak_in_early_afternoon(self, weekday_stats):
        # "activity reaches its peak at around 2pm"
        assert 12.0 <= weekday_stats.peak_hour <= 16.5

    def test_trough_in_early_morning(self, weekday_stats):
        # "keeps falling until it arrives at the bottom at 6.30am"
        assert 4.0 <= weekday_stats.trough_hour <= 8.0

    def test_all_idle_fraction_near_13_percent(self, weekday_stats):
        # "all of the VMs assigned to a home host are simultaneously
        # idle only 13% of the time"
        assert 0.09 <= weekday_stats.all_idle_fraction_per_30 <= 0.18

    def test_mean_activity_moderate(self, weekday_stats):
        assert 0.10 <= weekday_stats.mean_active_fraction <= 0.25


class TestWeekendCalibration:
    def test_lower_activity_than_weekday(self, weekday_stats, weekend_stats):
        assert (
            weekend_stats.mean_active_fraction
            < 0.5 * weekday_stats.mean_active_fraction
        )

    def test_weekend_peak_well_below_weekday(self, weekday_stats, weekend_stats):
        assert (
            weekend_stats.peak_concurrent
            < 0.5 * weekday_stats.peak_concurrent
        )

    def test_weekend_groups_idle_more_often(self, weekday_stats, weekend_stats):
        assert (
            weekend_stats.all_idle_fraction_per_30
            > weekday_stats.all_idle_fraction_per_30
        )


class TestStability:
    def test_calibration_holds_across_seeds(self):
        for seed in (1, 2, 3):
            stats = compute_ensemble_stats(
                generate_ensemble(900, DayType.WEEKDAY, seed=seed)
            )
            assert stats.peak_concurrent_fraction <= 0.52
            assert 0.08 <= stats.all_idle_fraction_per_30 <= 0.20
