"""Tier-1 gate: the shipped tree is violation-free under repro.checkers.

This is the contract the linter exists to enforce: every determinism,
unit-safety, state-machine, and API-surface rule holds across the whole
``repro`` package (explicit ``# repro: noqa[RULE]`` suppressions
included, so a suppression is always a reviewed decision, never an
accident).
"""

import os

import repro
from repro.checkers import check_paths

PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))


class TestTreeIsClean:
    def test_no_findings_across_repro(self):
        findings = check_paths([PACKAGE_ROOT])
        rendered = "\n".join(f.render() for f in findings)
        assert not findings, f"repro.checkers found violations:\n{rendered}"

    def test_package_root_is_the_real_tree(self):
        # Guard against an empty-directory false pass.
        assert os.path.isfile(os.path.join(PACKAGE_ROOT, "units.py"))
        assert os.path.isdir(os.path.join(PACKAGE_ROOT, "checkers"))
