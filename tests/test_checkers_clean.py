"""Tier-1 gate: the shipped tree is violation-free under repro.checkers.

This is the contract the linter exists to enforce: every determinism,
unit-safety, state-machine, and API-surface rule holds across the whole
``repro`` package (explicit ``# repro: noqa[RULE]`` suppressions
included, so a suppression is always a reviewed decision, never an
accident) — and so do the whole-program FLOW/ENC/TRC packs, filtered
through the reviewed ``flow-baseline.json``.
"""

import os

import repro
from repro.checkers import check_paths
from repro.checkers.flow import check_project

PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "flow-baseline.json")


class TestTreeIsClean:
    def test_no_findings_across_repro(self):
        findings = check_paths([PACKAGE_ROOT])
        rendered = "\n".join(f.render() for f in findings)
        assert not findings, f"repro.checkers found violations:\n{rendered}"

    def test_package_root_is_the_real_tree(self):
        # Guard against an empty-directory false pass.
        assert os.path.isfile(os.path.join(PACKAGE_ROOT, "units.py"))
        assert os.path.isdir(os.path.join(PACKAGE_ROOT, "checkers"))


class TestProjectModeIsClean:
    def test_no_project_findings_across_repro(self, tmp_path):
        result = check_project(
            [PACKAGE_ROOT],
            baseline_path=BASELINE if os.path.isfile(BASELINE) else None,
            cache_path=str(tmp_path / "flow-cache.json"),
        )
        rendered = "\n".join(f.render() for f in result.findings)
        assert not result.findings, (
            f"repro.checkers --project found violations:\n{rendered}"
        )

    def test_analysis_covered_the_real_tree(self, tmp_path):
        result = check_project(
            [PACKAGE_ROOT], cache_path=str(tmp_path / "flow-cache.json")
        )
        ctx = result.context
        assert ctx is not None
        # Non-vacuity: the linker saw the simulation's own draw sites and
        # index-holding classes, not an empty or trivially-clean tree.
        assert len(ctx.draws) > 10
        assert any(d.tokens for d in ctx.draws)
        assert any(
            dotted.endswith(".Host") for dotted in ctx.classes
        ), "expected cluster Host class in the linked project"

    def test_warm_cache_round_trip_is_clean_and_hits(self, tmp_path):
        cache = str(tmp_path / "flow-cache.json")
        cold = check_project([PACKAGE_ROOT], cache_path=cache)
        warm = check_project([PACKAGE_ROOT], cache_path=cache)
        assert not warm.findings
        assert warm.cache_misses == 0
        assert warm.cache_hits == cold.cache_misses


class TestZoneScopeCoverage:
    """The zoned-simulation module is inside every checker scope.

    ``repro.farm.zones`` produces figure-feeding energy numbers, so it
    must sit inside the DET pack's :data:`SIMULATION_PACKAGES` and the
    whole-program FLOW scope.  Both cover it today through the
    ``repro.farm`` prefix; these tests pin the contract so a future
    scope refactor cannot silently drop the shard coordinator from the
    determinism gate.
    """

    def test_det_scope_includes_zones(self):
        import ast

        from repro.checkers.base import ModuleContext
        from repro.checkers.rules.determinism import SIMULATION_PACKAGES

        ctx = ModuleContext(
            module_name="repro.farm.zones",
            path="src/repro/farm/zones.py",
            tree=ast.parse(""),
            source="",
        )
        assert ctx.in_packages(SIMULATION_PACKAGES)

    def test_flow_scope_includes_zones(self):
        from repro.checkers.flow.rules_flow import _in_flow_scope

        assert _in_flow_scope("repro.farm.zones")
        assert not _in_flow_scope("repro.checkers.flow.rules_flow")

    def test_flow_linker_sees_the_zone_partition_draws(self):
        # Non-vacuity: the whole-program pass must actually observe the
        # zones module (its shuffle draw and partition classes), not
        # skip it as out-of-tree.
        result = check_project([PACKAGE_ROOT])
        ctx = result.context
        assert ctx is not None
        assert any(
            dotted.startswith("repro.farm.zones.") for dotted in ctx.classes
        ), "expected ZonePartition in the linked project"


class TestStrategyScopeCoverage:
    """The strategy layer and the Γ-robust policy family are inside
    every checker scope.

    ``repro.core.strategies`` routes RNG streams into planners and
    ``repro.policies.gamma`` derives per-VM demand intervals from the
    simulation seed — both produce figure-feeding results, so both must
    sit inside the DET pack's :data:`SIMULATION_PACKAGES` and the
    whole-program FLOW scope.  ``repro.policies`` is a top-level package
    of its own (not under ``repro.core``), so its membership is an
    explicit entry these tests pin against scope refactors.
    """

    def test_det_scope_includes_strategies_and_gamma(self):
        import ast

        from repro.checkers.base import ModuleContext
        from repro.checkers.rules.determinism import SIMULATION_PACKAGES

        for module_name, path in (
            ("repro.core.strategies", "src/repro/core/strategies.py"),
            ("repro.policies.gamma", "src/repro/policies/gamma.py"),
        ):
            ctx = ModuleContext(
                module_name=module_name,
                path=path,
                tree=ast.parse(""),
                source="",
            )
            assert ctx.in_packages(SIMULATION_PACKAGES), module_name

    def test_flow_scope_includes_strategies_and_gamma(self):
        from repro.checkers.flow.rules_flow import _in_flow_scope

        assert _in_flow_scope("repro.core.strategies")
        assert _in_flow_scope("repro.policies.gamma")

    def test_flow_linker_sees_the_gamma_planner(self):
        # Non-vacuity: the whole-program pass must actually link the
        # strategy registry and the robust planner, not skip them.
        result = check_project([PACKAGE_ROOT])
        ctx = result.context
        assert ctx is not None
        assert any(
            dotted.startswith("repro.core.strategies.")
            for dotted in ctx.classes
        ), "expected PlacementStrategy in the linked project"
        assert any(
            dotted.startswith("repro.policies.gamma.")
            for dotted in ctx.classes
        ), "expected GammaRobustPlanner in the linked project"


class TestEquivScopeCoverage:
    """The equivalence harness is inside every checker scope.

    ``repro.equiv`` runs simulations and derives ensemble seeds, so the
    DET pack and the whole-program FLOW scope must cover it — the
    battery that certifies engine variants must itself meet the
    determinism bar it enforces on the engine.  ``repro.equiv`` is a
    top-level package (not under ``repro.farm``), so its membership is
    an explicit :data:`SIMULATION_PACKAGES` entry these tests pin.
    """

    def test_det_scope_includes_equiv(self):
        import ast

        from repro.checkers.base import ModuleContext
        from repro.checkers.rules.determinism import SIMULATION_PACKAGES

        for module_name, path in (
            ("repro.equiv.harness", "src/repro/equiv/harness.py"),
            ("repro.equiv.mutants", "src/repro/equiv/mutants.py"),
            ("repro.equiv.battery", "src/repro/equiv/battery.py"),
        ):
            ctx = ModuleContext(
                module_name=module_name,
                path=path,
                tree=ast.parse(""),
                source="",
            )
            assert ctx.in_packages(SIMULATION_PACKAGES), module_name

    def test_flow_scope_includes_equiv(self):
        from repro.checkers.flow.rules_flow import _in_flow_scope

        assert _in_flow_scope("repro.equiv.harness")
        assert _in_flow_scope("repro.equiv.mutants")

    def test_flow_linker_sees_the_mutant_registry(self):
        # Non-vacuity: the whole-program pass must actually link the
        # harness and mutant classes (including the biased-RNG mutant's
        # reviewed noqa), not skip the package as out-of-tree.
        result = check_project([PACKAGE_ROOT])
        ctx = result.context
        assert ctx is not None
        assert any(
            dotted.startswith("repro.equiv.mutants.")
            for dotted in ctx.classes
        ), "expected the mutant taps in the linked project"
        assert any(
            dotted.startswith("repro.equiv.")
            and dotted.endswith(".RunFingerprint")
            for dotted in ctx.classes
        ), "expected RunFingerprint in the linked project"
