"""Greedy vacate planning and consolidation-host compaction."""

import random

import pytest

from repro.cluster import Cluster, PowerState
from repro.core import (
    FULL_TO_PARTIAL,
    GreedyVacatePlanner,
    MigrationMode,
    ONLY_PARTIAL,
    DestinationStrategy,
)
from repro.vm import VirtualMachine, VmActivity, WorkingSetSampler


def build_cluster(homes=2, consolidation=2, capacity=4 * 4096.0):
    return Cluster(homes, consolidation, capacity)


def add_vm(cluster, vm_id, home_id, active=False, idle_intervals=3):
    vm = VirtualMachine(vm_id, home_id, 4096.0)
    vm.set_activity(VmActivity.ACTIVE if active else VmActivity.IDLE)
    vm.idle_intervals = 0 if active else idle_intervals
    cluster.host(home_id).attach(vm)
    return vm


def make_planner(policy=FULL_TO_PARTIAL, strategy=DestinationStrategy.RANDOM,
                 min_idle_intervals=1):
    return GreedyVacatePlanner(
        policy=policy,
        working_sets=WorkingSetSampler(),
        rng=random.Random(0),
        min_idle_intervals=min_idle_intervals,
        strategy=strategy,
    )


class TestGreedyVacate:
    def test_idle_homes_are_fully_vacated(self):
        cluster = build_cluster()
        for vm_id in range(4):
            add_vm(cluster, vm_id, home_id=vm_id // 2)
        plan = make_planner().plan(cluster)
        assert len(plan.vacations) == 2
        for vacation in plan.vacations:
            assert vacation.partial_count == 2
            assert vacation.full_count == 0

    def test_active_vms_move_as_full_migrations(self):
        cluster = build_cluster(homes=1)
        add_vm(cluster, 1, 0, active=True)
        add_vm(cluster, 2, 0)
        plan = make_planner().plan(cluster)
        assert len(plan.vacations) == 1
        modes = {m.vm_id: m.mode for m in plan.vacations[0].migrations}
        assert modes[1] is MigrationMode.FULL
        assert modes[2] is MigrationMode.PARTIAL

    def test_only_partial_cannot_vacate_hosts_with_active_vms(self):
        cluster = build_cluster(homes=2)
        add_vm(cluster, 1, 0, active=True)
        add_vm(cluster, 2, 0)
        add_vm(cluster, 3, 1)
        plan = make_planner(policy=ONLY_PARTIAL).plan(cluster)
        assert [v.host_id for v in plan.vacations] == [1]

    def test_cheapest_host_vacated_first(self):
        # Host 1 has one idle VM (cheap); host 0 has an active VM (4 GiB
        # of demand).  With capacity for only one VM-ish, the cheap host
        # must win.
        cluster = build_cluster(homes=2, consolidation=1, capacity=4096.0 + 200.0)
        add_vm(cluster, 1, 0, active=True)
        add_vm(cluster, 2, 1)
        plan = make_planner().plan(cluster)
        assert [v.host_id for v in plan.vacations] == [1]

    def test_partial_vms_never_target_their_home(self):
        cluster = build_cluster()
        add_vm(cluster, 1, 0)
        plan = make_planner().plan(cluster)
        destination = plan.vacations[0].migrations[0].destination_id
        assert destination in {h.host_id for h in cluster.consolidation_hosts}

    def test_no_partial_plan_for_fresh_idle_vms(self):
        cluster = build_cluster(homes=1)
        add_vm(cluster, 1, 0, idle_intervals=1)
        plan = make_planner(min_idle_intervals=3).plan(cluster)
        assert plan.is_empty

    def _block_consolidation(self, cluster, host_id, blocker_id=99):
        """Pre-load a consolidation host with one full VM."""
        blocker = VirtualMachine(blocker_id, 0, 4096.0)
        blocker.full_migrate(host_id)
        cluster.host(host_id).attach(blocker)

    def test_all_or_nothing_vacation(self):
        # One VM fits, the second does not: the host must not be
        # half-vacated.
        cluster = build_cluster(homes=1, consolidation=1, capacity=2 * 4096.0)
        self._block_consolidation(cluster, 1)  # leaves room for one VM
        add_vm(cluster, 1, 0, active=True)
        add_vm(cluster, 2, 0, active=True)
        plan = make_planner().plan(cluster)
        assert plan.is_empty

    def test_rollback_releases_shadow_capacity(self):
        # Host 0 cannot be vacated (two actives, room for one); its
        # tentative placement must not block host 1's single VM.
        cluster = build_cluster(
            homes=2, consolidation=1, capacity=2 * 4096.0 + 300.0
        )
        self._block_consolidation(cluster, 2)
        add_vm(cluster, 1, 0, active=True)
        add_vm(cluster, 2, 0, active=True)
        add_vm(cluster, 3, 1)
        plan = make_planner().plan(cluster)
        assert [v.host_id for v in plan.vacations] == [1]

    def test_powered_destinations_preferred_over_waking(self):
        cluster = build_cluster(homes=1, consolidation=2)
        cluster.host(2).power_state = PowerState.SLEEPING
        add_vm(cluster, 1, 0)
        plan = make_planner().plan(cluster)
        assert plan.vacations[0].migrations[0].destination_id == 1
        assert plan.hosts_to_wake == set()

    def test_sleeping_hosts_woken_when_needed(self):
        cluster = build_cluster(homes=1, consolidation=1)
        cluster.host(1).power_state = PowerState.SLEEPING
        add_vm(cluster, 1, 0)
        plan = make_planner().plan(cluster)
        assert plan.hosts_to_wake == {1}

    def test_sleeping_home_hosts_are_not_planned(self):
        cluster = build_cluster(homes=1)
        add_vm(cluster, 1, 0)
        cluster.host(0).detach(1)
        cluster.host(0).begin_suspend()
        plan = make_planner().plan(cluster)
        assert plan.is_empty


class TestDestinationStrategies:
    def _loaded_cluster(self):
        cluster = build_cluster(homes=1, consolidation=3)
        # Pre-load consolidation hosts unevenly.
        filler = VirtualMachine(90, 0, 4096.0)
        filler.become_partial(2, 3000.0)
        cluster.host(2).attach(filler)
        add_vm(cluster, 1, 0)
        return cluster

    def test_first_fit_picks_lowest_id(self):
        plan = make_planner(strategy=DestinationStrategy.FIRST_FIT).plan(
            self._loaded_cluster()
        )
        assert plan.vacations[0].migrations[0].destination_id == 1

    def test_best_fit_picks_fullest(self):
        plan = make_planner(strategy=DestinationStrategy.BEST_FIT).plan(
            self._loaded_cluster()
        )
        assert plan.vacations[0].migrations[0].destination_id == 2

    def test_worst_fit_picks_emptiest(self):
        plan = make_planner(strategy=DestinationStrategy.WORST_FIT).plan(
            self._loaded_cluster()
        )
        assert plan.vacations[0].migrations[0].destination_id in (1, 3)


class TestCompaction:
    def _cluster_with_light_consolidation_host(self):
        cluster = build_cluster(homes=1, consolidation=2, capacity=10_000.0)
        light = VirtualMachine(50, 0, 4096.0)
        light.become_partial(2, 150.0)
        cluster.host(2).attach(light)
        peer = VirtualMachine(51, 0, 4096.0)
        peer.become_partial(1, 150.0)
        cluster.host(1).attach(peer)
        return cluster

    def test_light_host_compacts_into_peer(self):
        cluster = self._cluster_with_light_consolidation_host()
        plan = make_planner().plan(cluster, compact_consolidation=True)
        assert len(plan.compactions) == 1
        compaction = plan.compactions[0]
        migration = compaction.migrations[0]
        assert migration.mode is MigrationMode.PARTIAL
        assert migration.working_set_mib == pytest.approx(150.0)

    def test_compaction_can_be_disabled(self):
        cluster = self._cluster_with_light_consolidation_host()
        plan = make_planner().plan(cluster, compact_consolidation=False)
        assert plan.compactions == []

    def test_well_used_hosts_not_compacted(self):
        cluster = build_cluster(homes=1, consolidation=2, capacity=10_000.0)
        heavy = VirtualMachine(50, 0, 4096.0)
        heavy.become_partial(1, 4000.0)  # 40% used: above low water
        cluster.host(1).attach(heavy)
        plan = make_planner().plan(cluster, compact_consolidation=True)
        assert plan.compactions == []

    def test_compaction_preserves_destination_headroom(self):
        cluster = build_cluster(homes=1, consolidation=2, capacity=1000.0)
        light = VirtualMachine(50, 0, 4096.0)
        light.become_partial(2, 200.0)
        cluster.host(2).attach(light)
        nearly_full = VirtualMachine(51, 0, 4096.0)
        nearly_full.become_partial(1, 700.0)  # only 300 free, 20% = 200 reserve
        cluster.host(1).attach(nearly_full)
        plan = make_planner().plan(cluster, compact_consolidation=True)
        # Moving 200 into 300-free would leave less than the 200 MiB
        # headroom reserve; both hosts stay as they are.
        assert plan.compactions == []
