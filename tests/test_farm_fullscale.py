"""Full-scale (900 VM) runs: the DESIGN.md calibration bands.

These runs take a couple of seconds each and pin the headline results:
the shapes and magnitudes of the paper's evaluation must survive any
refactoring of the engine.
"""

import pytest

from repro.analysis import Cdf
from repro.core import DEFAULT, FULL_TO_PARTIAL, NEW_HOME, ONLY_PARTIAL
from repro.farm import FarmConfig, simulate_day
from repro.traces import DayType


@pytest.fixture(scope="module")
def weekday_ftp():
    return simulate_day(FarmConfig(), FULL_TO_PARTIAL, DayType.WEEKDAY, seed=7)


@pytest.fixture(scope="module")
def weekend_ftp():
    return simulate_day(FarmConfig(), FULL_TO_PARTIAL, DayType.WEEKEND, seed=7)


class TestHeadlineSavings:
    def test_weekday_savings_in_paper_band(self, weekday_ftp):
        # Paper: "up to 28% on weekdays".
        assert 0.20 <= weekday_ftp.savings_fraction <= 0.36

    def test_weekend_savings_in_paper_band(self, weekend_ftp):
        # Paper: "43% on weekends".
        assert 0.33 <= weekend_ftp.savings_fraction <= 0.53

    def test_only_partial_saves_little(self):
        result = simulate_day(FarmConfig(), ONLY_PARTIAL, DayType.WEEKDAY, seed=7)
        assert 0.0 <= result.savings_fraction <= 0.12

    def test_policy_ordering_matches_figure8(self):
        savings = {}
        for policy in (ONLY_PARTIAL, DEFAULT, FULL_TO_PARTIAL):
            savings[policy.name] = simulate_day(
                FarmConfig(), policy, DayType.WEEKDAY, seed=7
            ).savings_fraction
        assert savings["OnlyPartial"] < savings["Default"]
        assert savings["Default"] < savings["FulltoPartial"]

    def test_new_home_adds_little_over_full_to_partial(self, weekday_ftp):
        new_home = simulate_day(FarmConfig(), NEW_HOME, DayType.WEEKDAY, seed=7)
        assert abs(
            new_home.savings_fraction - weekday_ftp.savings_fraction
        ) < 0.06


class TestFigure7Shape:
    def test_activity_peaks_below_46_percent(self, weekday_ftp):
        assert weekday_ftp.peak_active_vms <= 0.52 * 900

    def test_cluster_shrinks_to_a_few_hosts_at_night(self, weekday_ftp):
        # "all 900 VMs get consolidated into just three consolidation
        # hosts" at the trough.
        assert weekday_ftp.min_powered_hosts <= 5

    def test_nearly_everything_powered_at_peak(self, weekday_ftp):
        # All 30 homes plus the consolidation hosts are up at mid-day
        # (a host caught mid-transition at the sampling instant may
        # shave a count or two).
        assert max(weekday_ftp.powered_hosts) >= 28

    def test_powered_hosts_track_activity(self, weekday_ftp):
        # Powered-host count must correlate with the active-VM series.
        n = len(weekday_ftp.active_vms)
        active = weekday_ftp.active_vms
        powered = weekday_ftp.powered_hosts
        mean_a = sum(active) / n
        mean_p = sum(powered) / n
        cov = sum((a - mean_a) * (p - mean_p)
                  for a, p in zip(active, powered)) / n
        var_a = sum((a - mean_a) ** 2 for a in active) / n
        var_p = sum((p - mean_p) ** 2 for p in powered) / n
        correlation = cov / (var_a ** 0.5 * var_p ** 0.5)
        assert correlation > 0.7

    def test_one_sample_per_interval(self, weekday_ftp):
        assert len(weekday_ftp.sample_times_s) == 288
        assert len(weekday_ftp.powered_hosts) == 288


class TestFigure11Delays:
    def test_most_transitions_are_zero_delay_at_default_config(self, weekday_ftp):
        assert 0.45 <= weekday_ftp.zero_delay_fraction() <= 0.80

    def test_nonzero_delays_are_seconds_not_minutes(self, weekday_ftp):
        cdf = Cdf(weekday_ftp.delay_values())
        assert cdf.percentile(99) <= 10.0
        assert cdf.percentile(99.99) <= 25.0  # paper: ~19 s worst case

    def test_zero_delay_declines_with_more_consolidation_hosts(self):
        few = simulate_day(
            FarmConfig(consolidation_hosts=2), FULL_TO_PARTIAL,
            DayType.WEEKDAY, seed=7,
        )
        many = simulate_day(
            FarmConfig(consolidation_hosts=12), FULL_TO_PARTIAL,
            DayType.WEEKDAY, seed=7,
        )
        assert few.zero_delay_fraction() > 0.65
        assert many.zero_delay_fraction() < 0.50


class TestFigure9and10:
    def test_full_to_partial_densest_consolidation(self, weekday_ftp):
        default = simulate_day(FarmConfig(), DEFAULT, DayType.WEEKDAY, seed=7)
        ftp_median = Cdf(weekday_ftp.consolidation_ratio_samples).median()
        default_median = Cdf(default.consolidation_ratio_samples).median()
        assert ftp_median > default_median

    def test_full_to_partial_trades_traffic_for_energy(self, weekday_ftp):
        default = simulate_day(FarmConfig(), DEFAULT, DayType.WEEKDAY, seed=7)
        assert (
            weekday_ftp.traffic.network_total_mib()
            > default.traffic.network_total_mib()
        )

    def test_traffic_ledger_populated(self, weekday_ftp):
        traffic = weekday_ftp.traffic
        assert traffic.full_path_mib() > 0.0
        assert traffic.partial_path_mib() > 0.0


class TestConservation:
    def test_every_vm_still_exists_exactly_once(self):
        from repro.farm import FarmSimulation
        from repro.traces import generate_ensemble

        config = FarmConfig()
        ensemble = generate_ensemble(900, DayType.WEEKDAY, seed=9)
        simulation = FarmSimulation(config, FULL_TO_PARTIAL, ensemble, seed=9)
        simulation.run()
        simulation.cluster.check_invariants()
        placed = sorted(
            vm_id
            for host in simulation.cluster
            for vm_id in host.vm_ids
        )
        assert placed == list(range(900))
        # Partial VMs have exactly one served image, at their home.
        for vm in simulation.vms.values():
            if vm.is_partial:
                home = simulation.cluster.host(vm.home_id)
                assert vm.vm_id in home.served_image_ids

    def test_weekend_sleeps_more_than_weekday(self, weekday_ftp, weekend_ftp):
        assert (
            weekend_ftp.mean_home_sleep_fraction()
            > weekday_ftp.mean_home_sleep_fraction()
        )
