"""Trace data model."""

import pytest

from repro.errors import TraceFormatError
from repro.traces import DayType, UserDayTrace
from repro.units import INTERVALS_PER_DAY


def make_trace(bits):
    padded = list(bits) + [0] * (INTERVALS_PER_DAY - len(bits))
    return UserDayTrace.from_bits(0, DayType.WEEKDAY, padded)


class TestConstruction:
    def test_requires_288_intervals(self):
        with pytest.raises(TraceFormatError):
            UserDayTrace(0, DayType.WEEKDAY, (True,) * 10)

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(TraceFormatError):
            UserDayTrace.from_bits(0, DayType.WEEKDAY, [2] * INTERVALS_PER_DAY)

    def test_all_idle_factory(self):
        trace = UserDayTrace.all_idle(3, DayType.WEEKEND)
        assert trace.active_fraction == 0.0
        assert trace.user_id == 3
        assert trace.day_type is DayType.WEEKEND

    def test_all_active_factory(self):
        trace = UserDayTrace.all_active(1, DayType.WEEKDAY)
        assert trace.active_fraction == 1.0

    def test_traces_are_immutable(self):
        trace = UserDayTrace.all_idle(0, DayType.WEEKDAY)
        with pytest.raises(AttributeError):
            trace.user_id = 5


class TestQueries:
    def test_is_active_by_interval(self):
        trace = make_trace([0, 1, 0])
        assert not trace.is_active(0)
        assert trace.is_active(1)

    def test_is_active_at_time(self):
        trace = make_trace([0, 1])
        assert not trace.is_active_at(0.0)
        assert trace.is_active_at(300.0)
        assert trace.is_active_at(599.9)

    def test_is_active_at_out_of_range(self):
        trace = make_trace([1])
        with pytest.raises(TraceFormatError):
            trace.is_active_at(86400.0)

    def test_active_fraction(self):
        trace = make_trace([1, 1, 1, 0])
        assert trace.active_fraction == pytest.approx(3 / INTERVALS_PER_DAY)

    def test_transitions_counts_boundaries(self):
        trace = make_trace([0, 1, 1, 0, 1])
        # idle->active, active->idle, idle->active, active->idle (tail).
        assert trace.transitions == 4

    def test_transitions_zero_for_constant_trace(self):
        assert UserDayTrace.all_idle(0, DayType.WEEKDAY).transitions == 0

    def test_activation_intervals(self):
        trace = make_trace([1, 0, 1, 1, 0, 1])
        assert trace.activation_intervals() == [0, 2, 5]

    def test_runs_partition_the_day(self):
        trace = make_trace([1, 1, 0, 1])
        runs = list(trace.runs())
        assert sum(length for _state, length in runs) == INTERVALS_PER_DAY
        assert runs[0] == (True, 2)
        assert runs[1] == (False, 1)
        assert runs[2] == (True, 1)

    def test_runs_alternate_states(self):
        trace = make_trace([1, 0, 1, 0, 1])
        states = [state for state, _length in trace.runs()]
        assert all(a != b for a, b in zip(states, states[1:]))
