"""The real page-fault pipeline: compress, upload, fault, fetch, install."""

import pytest

from repro.errors import ConfigError, MigrationError
from repro.memserver import MemoryServer, PageStore
from repro.memserver.pages import PAGE_BYTES, PageKind, SyntheticPageFactory
from repro.prototype import Memtap, PartialVmMemory
from repro.prototype.memtap import PAGES_PER_CHUNK


@pytest.fixture
def small_vm():
    """A 64-page (256 KiB) VM with real contents, uploaded to a store."""
    factory = SyntheticPageFactory(seed=9)
    pages = {}
    kinds = [PageKind.ZERO, PageKind.TEXT, PageKind.CODE, PageKind.RANDOM]
    for pfn in range(64):
        pages[pfn] = factory.make(kinds[pfn % 4])
    store = PageStore()
    store.upload(vm_id=1, pages=pages)
    server = MemoryServer(host_id=0, store=store)
    server.start_serving()
    memory = PartialVmMemory(vm_id=1, total_pages=64)
    return pages, Memtap(memory, server)


class TestFaultService:
    def test_faulted_page_matches_original_bytes(self, small_vm):
        pages, memtap = small_vm
        for pfn in (0, 1, 2, 3, 63):
            assert memtap.access(pfn) == pages[pfn]

    def test_fault_counted_once_per_page(self, small_vm):
        _pages, memtap = small_vm
        memtap.access(5)
        memtap.access(5)  # now resident: no second fault
        assert memtap.faults_served == 1
        assert memtap.memory.resident_pages == 1

    def test_fault_latency_accumulates(self, small_vm):
        _pages, memtap = small_vm
        for pfn in range(10):
            memtap.access(pfn)
        expected = 10 * memtap.service.per_fault_s
        assert memtap.time_spent_s == pytest.approx(expected)

    def test_prefetch_fetches_only_absent_pages(self, small_vm):
        _pages, memtap = small_vm
        memtap.access(0)
        fetched = memtap.prefetch(range(8))
        assert fetched == 7
        assert memtap.memory.resident_pages == 8

    def test_compressed_bytes_on_the_wire(self, small_vm):
        pages, memtap = small_vm
        memtap.access(0)  # a zero page
        # The wire carried the compressed page, far below 4 KiB.
        assert 0 < memtap.bytes_fetched < PAGE_BYTES // 4

    def test_out_of_range_pfn(self, small_vm):
        _pages, memtap = small_vm
        with pytest.raises(MigrationError):
            memtap.access(64)


class TestGuestMemorySemantics:
    def test_write_requires_present_page(self):
        memory = PartialVmMemory(vm_id=1, total_pages=4)
        with pytest.raises(MigrationError):
            memory.write(0, bytes(PAGE_BYTES))

    def test_write_marks_dirty(self, small_vm):
        pages, memtap = small_vm
        memtap.access(3)
        new_content = bytes(PAGE_BYTES)
        memtap.memory.write(3, new_content)
        assert memtap.memory.dirty == {3}
        assert memtap.memory.read(3) == new_content

    def test_install_validates_page_size(self):
        memory = PartialVmMemory(vm_id=1, total_pages=4)
        with pytest.raises(MigrationError):
            memory.install(0, b"tiny")

    def test_chunked_frame_allocation(self):
        memory = PartialVmMemory(vm_id=1, total_pages=4 * PAGES_PER_CHUNK)
        page = bytes(PAGE_BYTES)
        memory.install(0, page)
        memory.install(1, page)
        assert memory.allocated_chunks == 1  # same 2 MiB chunk
        memory.install(PAGES_PER_CHUNK, page)
        assert memory.allocated_chunks == 2


class TestDifferentialRoundTrip:
    def test_dirty_pages_flow_back_through_the_store(self, small_vm):
        """Reintegration path: the consolidation host's dirty pages are
        re-uploaded and a later fetch returns the new contents."""
        pages, memtap = small_vm
        memtap.access(7)
        modified = bytearray(pages[7])
        modified[:4] = b"EDIT"
        memtap.memory.write(7, bytes(modified))

        updated = dict(pages)
        for pfn in memtap.memory.dirty:
            updated[pfn] = memtap.memory.read(pfn)
        receipt = memtap.server.store.upload(
            1, updated, dirty_pfns=memtap.memory.dirty
        )
        assert receipt.differential
        assert receipt.pages_sent == 1
        assert memtap.server.store.fetch_page(1, 7)[:4] == b"EDIT"

    def test_server_refuses_when_not_serving(self, small_vm):
        _pages, memtap = small_vm
        memtap.server.stop_serving()
        with pytest.raises(ConfigError):
            memtap.access(9)
