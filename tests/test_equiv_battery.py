"""Battery mechanics over synthetic fingerprints (no simulation runs).

Verifies the ensemble-vs-ensemble plumbing: verdict bookkeeping, paired
vs unpaired mode detection, Bonferroni thresholds, mixed-ensemble
validation, JSON round-trips, and the union-fill of per-state metrics.
"""

import json

import pytest

from repro.equiv.battery import (
    BatteryConfig,
    EquivalenceReport,
    compare_fingerprints,
    report_from_dict,
)
from repro.equiv.fingerprint import (
    RunFingerprint,
    fingerprint_from_dict,
)
from repro.equiv.harness import ensemble_seeds
from repro.errors import ConfigError


def _fp(seed, energy=1000.0, migrations=50.0, policy="Default",
        day_type="weekday", states=(("powered", 800.0), ("sleeping", 200.0)),
        sleep_hist=(0, 0, 1, 2, 1, 0, 0, 0)):
    return RunFingerprint(
        seed=seed,
        policy=policy,
        day_type=day_type,
        total_energy_j=energy,
        state_energy_j=tuple(states),
        state_time_s=(("powered", 70000.0), ("sleeping", 16400.0)),
        counters=(("partial_migrations", migrations),),
        faults=(("wake_failures", 2.0),),
        traffic_mib=(("memory_upload_sas", 120.0),),
        network_total_mib=150.0,
        mean_delay_s=1.5,
        zero_delay_fraction=0.8,
        sleep_hist=sleep_hist,
        mean_sleep_fraction=0.4,
    )


def _ensemble(seeds, bias=0.0, **kwargs):
    """Synthetic ensemble with per-seed spread (as real ensembles have).

    ``bias`` adds a constant to every member's energy — the shape of a
    systematic engine defect, small against the 10 J/member spread.
    """
    members = []
    for i, seed in enumerate(seeds):
        if "energy" in kwargs:
            members.append(_fp(seed, **kwargs))
        else:
            members.append(
                _fp(seed, energy=1000.0 + 10.0 * i + bias, **kwargs)
            )
    return members


SEEDS = ensemble_seeds(7, 20)
OTHER_SEEDS = ensemble_seeds(8, 20)


class TestEnsembleSeeds:
    def test_deterministic_and_distinct(self):
        assert ensemble_seeds(7, 20) == SEEDS
        assert len(set(SEEDS)) == 20

    def test_disjoint_roots_give_disjoint_seeds(self):
        assert not set(SEEDS) & set(OTHER_SEEDS)

    def test_prefix_stability(self):
        # Growing the ensemble keeps the existing members' seeds.
        assert ensemble_seeds(7, 5) == SEEDS[:5]

    def test_zero_members_rejected(self):
        with pytest.raises(ConfigError):
            ensemble_seeds(7, 0)


class TestCompare:
    def test_identical_ensembles_are_equivalent_and_paired(self):
        report = compare_fingerprints(_ensemble(SEEDS), _ensemble(SEEDS))
        assert report.paired
        assert report.equivalent
        assert report.failures() == []
        # Exact binomial enumeration can sum to 1 - epsilon in floats;
        # everything else is exactly 1.
        assert all(v.p_value > 0.999 for v in report.verdicts)

    def test_disjoint_seed_lists_compare_unpaired(self):
        report = compare_fingerprints(
            _ensemble(SEEDS), _ensemble(OTHER_SEEDS)
        )
        assert not report.paired
        assert report.equivalent
        assert not any(v.test == "sign" for v in report.verdicts)

    def test_pairing_can_be_disabled(self):
        config = BatteryConfig(paired=False)
        report = compare_fingerprints(
            _ensemble(SEEDS), _ensemble(SEEDS), config=config
        )
        assert not report.paired

    def test_small_systematic_bias_trips_the_sign_test(self):
        # +1 J on every seed, a tenth of the member spread: invisible
        # to KS at n=20, nailed by the exact paired sign test.
        report = compare_fingerprints(
            _ensemble(SEEDS), _ensemble(SEEDS, bias=1.0)
        )
        assert not report.equivalent
        failing = {(v.metric, v.test) for v in report.failures()}
        assert ("total_energy_j", "sign") in failing
        assert ("total_energy_j", "ks") not in failing

    def test_the_same_bias_survives_unpaired_comparison(self):
        # Statistical power honesty: without pairing, the same +1 J
        # shift is indistinguishable at n=20 — which is exactly why
        # baselines replay pinned seeds.
        report = compare_fingerprints(
            _ensemble(SEEDS), _ensemble(OTHER_SEEDS, bias=1.0)
        )
        assert not report.paired
        assert report.equivalent

    def test_bonferroni_threshold_divides_family_alpha(self):
        report = compare_fingerprints(_ensemble(SEEDS), _ensemble(SEEDS))
        total = len(report.verdicts)
        for verdict in report.verdicts:
            assert verdict.threshold == pytest.approx(0.05 / total)

    def test_vanished_state_reads_as_zero_and_rejects(self):
        # An engine that stops metering the sleeping state entirely:
        # union-fill turns the missing key into a zero column.
        broken = _ensemble(SEEDS, states=(("powered", 1000.0),))
        report = compare_fingerprints(_ensemble(SEEDS), broken)
        assert not report.equivalent
        metrics = {v.metric for v in report.failures()}
        assert "state_energy_j.sleeping" in metrics

    def test_mixed_ensemble_rejected(self):
        mixed = _ensemble(SEEDS[:10]) + _ensemble(
            SEEDS[10:], policy="NewHome"
        )
        with pytest.raises(ConfigError):
            compare_fingerprints(mixed, _ensemble(SEEDS))

    def test_cross_policy_comparison_rejected(self):
        with pytest.raises(ConfigError):
            compare_fingerprints(
                _ensemble(SEEDS), _ensemble(SEEDS, policy="NewHome")
            )

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ConfigError):
            compare_fingerprints([], _ensemble(SEEDS))

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ConfigError):
            BatteryConfig(family_alpha=0.0)


class TestSerialization:
    def test_fingerprint_round_trips_through_json(self):
        fingerprint = _fp(SEEDS[0])
        payload = json.loads(json.dumps(fingerprint.as_dict()))
        assert fingerprint_from_dict(payload) == fingerprint

    def test_fingerprint_missing_key_rejected(self):
        payload = _fp(SEEDS[0]).as_dict()
        del payload["total_energy_j"]
        with pytest.raises(ConfigError):
            fingerprint_from_dict(payload)

    def test_report_round_trips_through_json(self):
        report = compare_fingerprints(_ensemble(SEEDS), _ensemble(SEEDS))
        rebuilt = report_from_dict(json.loads(report.to_json()))
        assert rebuilt == report
        assert rebuilt.equivalent == report.equivalent

    def test_render_names_the_verdict(self):
        report = compare_fingerprints(_ensemble(SEEDS), _ensemble(SEEDS))
        text = report.render()
        assert "equivalent" in text
        broken = _ensemble(SEEDS, energy=2000.0)
        failing = compare_fingerprints(_ensemble(SEEDS), broken)
        assert "NOT EQUIVALENT" in failing.render()

    def test_render_verbose_lists_every_metric(self):
        report = compare_fingerprints(_ensemble(SEEDS), _ensemble(SEEDS))
        text = report.render(verbose=True)
        assert text.count("ok    ") == len(report.verdicts)
