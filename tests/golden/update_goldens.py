"""Regenerate the golden end-to-end snapshots in ``farm_golden.json``.

Run this ONLY when a change is *supposed* to shift simulation results
(a new model, a recalibration, a bug fix whose effect is understood):

    PYTHONPATH=src python tests/golden/update_goldens.py

Then eyeball the diff of ``tests/golden/farm_golden.json`` — every
changed number must be explainable by the change you are making — and
commit the regenerated file together with the code change.  The golden
test (``tests/test_farm_golden.py``) exists so that unrelated PRs cannot
shift the Figure 8 headline metrics silently; bypassing it without
reading the diff defeats its purpose.

The snapshot pins, per policy, one seeded small-farm day:

* the energy savings fraction (full float precision),
* every migration/fault counter,
* the traffic ledger (MiB per category, full float precision),
* delay-sample count and zero-delay fraction,
* the exact ``oasis-sim simulate`` stdout (byte-for-byte).

It also pins one traced mini-run (``trace_golden.jsonl`` byte-for-byte,
plus its Chrome export ``trace_golden_chrome.json``) so the event
vocabulary and exporter formatting cannot drift silently either; see
``tests/test_trace_golden.py``.
"""

from __future__ import annotations

import json
import os
import sys

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "farm_golden.json")

#: One pinned seed per policy; distinct seeds exercise distinct traces.
POLICY_SEEDS = {
    "OnlyPartial": 11,
    "Default": 12,
    "FulltoPartial": 13,
    "NewHome": 14,
}

#: Small but non-trivial farm: big enough that every policy migrates,
#: small enough that the four runs finish in well under a second.
FARM_SHAPE = dict(home_hosts=4, consolidation_hosts=2, vms_per_host=4)

GAMMA_GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "gamma_golden.json"
)

#: GammaRobust lives in its own golden file so adding robust policies
#: never touches (let alone regenerates) ``farm_golden.json`` — the
#: four-policy snapshots stay byte-identical through the strategy
#: refactor.  One light and one heavy Γ, distinct pinned seeds.
GAMMA_SEEDS = {
    "GammaRobust@1": 21,
    "GammaRobust@3": 23,
}

EQUIV_BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "equiv_baseline.json"
)

#: The equivalence baseline: per-policy fingerprint ensembles at pinned
#: derived seeds (see ``repro.equiv.harness.ensemble_seeds``).  A future
#: engine variant is certified by replaying these seeds and passing the
#: paired battery (``oasis-sim equiv compare``).
EQUIV_ROOT_SEED = 2016
EQUIV_ENSEMBLE_SIZE = 20
EQUIV_POLICIES = (
    "OnlyPartial",
    "Default",
    "FulltoPartial",
    "NewHome",
    "GammaRobust@1",
)

TRACE_GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "trace_golden.jsonl"
)
TRACE_CHROME_PATH = os.path.join(
    os.path.dirname(__file__), "trace_golden_chrome.json"
)

#: The traced mini-run: smaller than FARM_SHAPE (the trace grows with
#: every event), faulty enough that all event categories appear.
TRACE_SHAPE = dict(home_hosts=2, consolidation_hosts=1, vms_per_host=3)
TRACE_SEED = 5
TRACE_POLICY = "Default"
TRACE_FAULT_PROFILE = "heavy"


def snapshot_result(result) -> dict:
    """Everything a Figure 8/10/11 reader consumes, JSON-serializable."""
    import dataclasses

    return {
        "savings_fraction": result.savings_fraction,
        "managed_joules": result.energy.managed_joules,
        "baseline_joules": result.energy.baseline_joules,
        "counters": dataclasses.asdict(result.counters),
        "fault_counters": result.faults.as_dict(),
        "traffic_mib": result.traffic.as_dict(),
        "network_total_mib": result.traffic.network_total_mib(),
        "delay_samples": len(result.delays),
        "zero_delay_fraction": result.zero_delay_fraction(),
        "mean_home_sleep_fraction": result.mean_home_sleep_fraction(),
        "peak_active_vms": result.peak_active_vms,
        "min_powered_hosts": result.min_powered_hosts,
    }


def simulate_stdout(policy_name: str, seed: int) -> str:
    """The exact ``simulate`` subcommand stdout for one policy/seed."""
    import contextlib
    import io

    from repro.cli import main

    base, _, gamma = policy_name.partition("@")
    argv = [
        "simulate",
        "--policy", base,
        "--seed", str(seed),
        "--home-hosts", str(FARM_SHAPE["home_hosts"]),
        "--consolidation-hosts", str(FARM_SHAPE["consolidation_hosts"]),
        "--vms-per-host", str(FARM_SHAPE["vms_per_host"]),
    ]
    if gamma:
        argv += ["--gamma", gamma]
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        status = main(argv)
    assert status == 0
    return buffer.getvalue()


def build_goldens() -> dict:
    from repro.core import policy_by_name
    from repro.farm import FarmConfig, simulate_day
    from repro.traces import DayType

    config = FarmConfig(**FARM_SHAPE)
    goldens = {"farm_shape": FARM_SHAPE, "policies": {}}
    for policy_name, seed in POLICY_SEEDS.items():
        result = simulate_day(
            config, policy_by_name(policy_name), DayType.WEEKDAY, seed=seed
        )
        goldens["policies"][policy_name] = {
            "seed": seed,
            "result": snapshot_result(result),
            "simulate_stdout": simulate_stdout(policy_name, seed),
        }
    return goldens


def build_gamma_goldens() -> dict:
    from repro.core import strategy_by_name
    from repro.farm import FarmConfig, simulate_day
    from repro.traces import DayType

    config = FarmConfig(**FARM_SHAPE)
    goldens = {"farm_shape": FARM_SHAPE, "policies": {}}
    for policy_name, seed in GAMMA_SEEDS.items():
        result = simulate_day(
            config, strategy_by_name(policy_name), DayType.WEEKDAY, seed=seed
        )
        goldens["policies"][policy_name] = {
            "seed": seed,
            "result": snapshot_result(result),
            "simulate_stdout": simulate_stdout(policy_name, seed),
        }
    return goldens


def build_equiv_baseline() -> None:
    from repro.equiv import build_baseline, write_baseline
    from repro.farm import FarmConfig
    from repro.traces import DayType

    payload = build_baseline(
        FarmConfig(**FARM_SHAPE),
        EQUIV_POLICIES,
        DayType.WEEKDAY,
        root_seed=EQUIV_ROOT_SEED,
        ensemble_size=EQUIV_ENSEMBLE_SIZE,
    )
    write_baseline(EQUIV_BASELINE_PATH, payload)
    print(
        f"wrote {EQUIV_BASELINE_PATH} "
        f"({len(EQUIV_POLICIES)} policies x {EQUIV_ENSEMBLE_SIZE} seeds)"
    )


def record_trace():
    """Run the pinned traced mini-day; returns its RecordingTracer."""
    from repro.core import policy_by_name
    from repro.farm import FarmConfig, simulate_day
    from repro.faults import fault_profile_by_name
    from repro.obs import RecordingTracer
    from repro.traces import DayType

    tracer = RecordingTracer()
    config = FarmConfig(
        **TRACE_SHAPE, faults=fault_profile_by_name(TRACE_FAULT_PROFILE)
    )
    simulate_day(
        config,
        policy_by_name(TRACE_POLICY),
        DayType.WEEKDAY,
        seed=TRACE_SEED,
        tracer=tracer,
    )
    return tracer


def build_trace_goldens() -> None:
    from repro.obs import write_chrome_trace, write_jsonl

    tracer = record_trace()
    count = write_jsonl(tracer.events, TRACE_GOLDEN_PATH)
    write_chrome_trace(tracer.events, TRACE_CHROME_PATH)
    print(f"wrote {TRACE_GOLDEN_PATH} ({count} events)")
    print(f"wrote {TRACE_CHROME_PATH}")


def main() -> int:
    goldens = build_goldens()
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(goldens, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")
    gamma = build_gamma_goldens()
    with open(GAMMA_GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(gamma, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GAMMA_GOLDEN_PATH}")
    build_trace_goldens()
    build_equiv_baseline()
    print("Diff it, explain every changed number, commit it with your change.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
