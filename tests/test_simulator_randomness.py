"""Named deterministic random streams."""

from repro.simulator import RngStreams
from repro.simulator.randomness import derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "traces") == derive_seed(42, "traces")

    def test_name_sensitivity(self):
        assert derive_seed(42, "traces") != derive_seed(42, "placement")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "traces") != derive_seed(2, "traces")

    def test_64_bit_range(self):
        seed = derive_seed(123456789, "anything")
        assert 0 <= seed < 2**64


class TestRngStreams:
    def test_same_name_returns_same_stream(self):
        streams = RngStreams(7)
        assert streams.get("a") is streams.get("a")

    def test_different_names_are_independent(self):
        streams = RngStreams(7)
        a = streams.get("a")
        b = streams.get("b")
        assert a is not b
        assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]

    def test_stream_sequences_reproducible_across_instances(self):
        first = RngStreams(9).get("x")
        second = RngStreams(9).get("x")
        assert [first.random() for _ in range(8)] == [
            second.random() for _ in range(8)
        ]

    def test_adding_a_stream_does_not_perturb_existing(self):
        plain = RngStreams(5)
        value_without = plain.get("primary").random()
        mixed = RngStreams(5)
        mixed.get("other").random()  # extra stream created first
        assert mixed.get("primary").random() == value_without

    def test_spawn_creates_independent_family(self):
        root = RngStreams(5)
        child = root.spawn("run-1")
        assert child.seed != root.seed
        assert child.get("a").random() != root.get("a").random()

    def test_spawn_deterministic(self):
        a = RngStreams(5).spawn("run-1")
        b = RngStreams(5).spawn("run-1")
        assert a.seed == b.seed
