"""Power profiles, energy accounting, and the savings metric."""

import pytest

from repro.energy import (
    EnergyAccountant,
    EnergyReport,
    HostPowerProfile,
    MemoryServerProfile,
    StateTimeTracker,
    TABLE1_HOST,
    TABLE1_MEMORY_SERVER,
    baseline_energy_joules,
)
from repro.errors import ConfigError, SimulationError


class TestHostPowerProfile:
    def test_table1_idle(self):
        assert TABLE1_HOST.powered_watts() == pytest.approx(102.2)

    def test_table1_twenty_vms(self):
        assert TABLE1_HOST.powered_watts(full_vms=20) == pytest.approx(137.9)

    def test_partial_vms_are_nearly_free(self):
        # 30 partial VMs at a 4% resident fraction cost ~2 W, versus
        # ~54 W for 30 full VMs: the heart of dense consolidation.
        partial = TABLE1_HOST.powered_watts(partial_resident_fraction=30 * 0.04)
        full = TABLE1_HOST.powered_watts(full_vms=30)
        assert partial - TABLE1_HOST.idle_w < 3.0
        assert full - TABLE1_HOST.idle_w > 50.0

    def test_transition_round_trip(self):
        assert TABLE1_HOST.transition_round_trip_s == pytest.approx(5.4)

    def test_sleeping_home_with_memory_server_draws_55_1_w(self):
        # §4.4.1: "combined power use ... (55.1 W)".
        total = TABLE1_HOST.sleep_w + TABLE1_MEMORY_SERVER.total_w
        assert total == pytest.approx(55.1)

    def test_negative_vm_count_rejected(self):
        with pytest.raises(ConfigError):
            TABLE1_HOST.powered_watts(full_vms=-1)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigError):
            HostPowerProfile(idle_w=0.0)
        with pytest.raises(ConfigError):
            HostPowerProfile(per_vm_w=-1.0)


class TestMemoryServerProfile:
    def test_prototype_total(self):
        assert MemoryServerProfile.prototype().total_w == pytest.approx(42.2)

    def test_alternative_designs(self):
        for watts in (16.0, 8.0, 4.0, 2.0, 1.0):
            assert MemoryServerProfile.alternative(watts).total_w == watts

    def test_alternative_rejects_negative(self):
        with pytest.raises(ConfigError):
            MemoryServerProfile.alternative(-1.0)


class TestEnergyAccountant:
    def test_constant_power_integration(self):
        meter = EnergyAccountant()
        meter.set_power("host", 100.0, now=0.0)
        meter.finish(now=3600.0)
        assert meter.energy_joules("host") == pytest.approx(360_000.0)

    def test_piecewise_power(self):
        meter = EnergyAccountant()
        meter.set_power("host", 100.0, now=0.0)
        meter.set_power("host", 10.0, now=100.0)
        meter.finish(now=200.0)
        assert meter.energy_joules("host") == pytest.approx(11_000.0)

    def test_total_over_entities(self):
        meter = EnergyAccountant()
        meter.set_power("a", 10.0, now=0.0)
        meter.set_power("b", 20.0, now=0.0)
        meter.finish(now=10.0)
        assert meter.total_joules() == pytest.approx(300.0)

    def test_unknown_entity_reads_zero(self):
        assert EnergyAccountant().energy_joules("ghost") == 0.0

    def test_time_travel_rejected(self):
        meter = EnergyAccountant()
        meter.set_power("host", 1.0, now=10.0)
        with pytest.raises(SimulationError):
            meter.set_power("host", 2.0, now=5.0)

    def test_negative_power_rejected(self):
        with pytest.raises(SimulationError):
            EnergyAccountant().set_power("host", -1.0, now=0.0)

    def test_redundant_updates_are_harmless(self):
        meter = EnergyAccountant()
        meter.set_power("host", 50.0, now=0.0)
        for t in range(1, 10):
            meter.set_power("host", 50.0, now=float(t))
        meter.finish(now=10.0)
        assert meter.energy_joules("host") == pytest.approx(500.0)


class TestStateTimeTracker:
    def test_durations_accumulate(self):
        tracker = StateTimeTracker()
        tracker.set_state("h", "powered", now=0.0)
        tracker.set_state("h", "sleeping", now=60.0)
        tracker.set_state("h", "powered", now=100.0)
        tracker.finish(now=160.0)
        assert tracker.duration("h", "powered") == pytest.approx(120.0)
        assert tracker.duration("h", "sleeping") == pytest.approx(40.0)

    def test_fraction(self):
        tracker = StateTimeTracker()
        tracker.set_state("h", "sleeping", now=0.0)
        tracker.finish(now=100.0)
        assert tracker.fraction("h", "sleeping", horizon=200.0) == pytest.approx(0.5)

    def test_total_duration_sums_entities(self):
        tracker = StateTimeTracker()
        tracker.set_state("a", "sleeping", now=0.0)
        tracker.set_state("b", "sleeping", now=0.0)
        tracker.finish(now=10.0)
        assert tracker.total_duration("sleeping") == pytest.approx(20.0)

    def test_out_of_order_rejected(self):
        tracker = StateTimeTracker()
        tracker.set_state("h", "powered", now=10.0)
        with pytest.raises(SimulationError):
            tracker.set_state("h", "sleeping", now=5.0)


class TestBaselineAndReport:
    def test_baseline_formula(self):
        # 30 hosts x 155.75 W x 86400 s.
        joules = baseline_energy_joules(
            TABLE1_HOST, home_hosts=30, vms_per_host=30, duration_s=86400.0
        )
        expected_watts = 102.2 + 30 * 1.785
        assert joules == pytest.approx(30 * expected_watts * 86400.0)

    def test_baseline_validation(self):
        with pytest.raises(ConfigError):
            baseline_energy_joules(TABLE1_HOST, 0, 30, 86400.0)

    def test_report_savings(self):
        report = EnergyReport(managed_joules=70.0, baseline_joules=100.0)
        assert report.savings_fraction == pytest.approx(0.30)

    def test_report_wh_conversion(self):
        report = EnergyReport(managed_joules=3600.0, baseline_joules=7200.0)
        assert report.managed_wh == pytest.approx(1.0)
        assert report.baseline_wh == pytest.approx(2.0)

    def test_report_validation(self):
        with pytest.raises(ConfigError):
            EnergyReport(managed_joules=1.0, baseline_joules=0.0)
        with pytest.raises(ConfigError):
            EnergyReport(managed_joules=-1.0, baseline_joules=10.0)
