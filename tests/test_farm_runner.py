"""The parallel sweep runner: determinism, caching, instrumentation."""

import pickle

import pytest

from repro.core import FULL_TO_PARTIAL, ONLY_PARTIAL
from repro.errors import ConfigError
from repro.farm import (
    FarmConfig,
    RunSpec,
    SweepRunner,
    consolidation_host_sweep,
    execute_run,
    fault_rate_sweep,
    simulate_day,
)
from repro.faults import fault_profile_by_name
from repro.farm.runner import (
    clear_ensemble_cache,
    ensemble_cache_stats,
    _ensemble_for,
)
from repro.traces import DayType


def small_config(**overrides):
    defaults = dict(home_hosts=4, consolidation_hosts=2, vms_per_host=4)
    defaults.update(overrides)
    return FarmConfig(**defaults)


def specs_matrix():
    """A small Figure-8-shaped spec list: 2 policies x 2 counts x 2 seeds."""
    out = []
    for policy in (FULL_TO_PARTIAL, ONLY_PARTIAL):
        for count in (1, 2):
            config = small_config(consolidation_hosts=count)
            for seed in (0, 1):
                out.append(RunSpec(config, policy, DayType.WEEKDAY, seed))
    return out


def result_fingerprint(result):
    """Everything a figure consumes, exact to the last delay sample."""
    return (
        result.savings_fraction,
        result.counters,
        result.faults,
        result.delays,
        result.active_vms,
        result.powered_hosts,
    )


class TestRunSpec:
    def test_spec_and_outcome_cross_process_boundaries(self):
        spec = RunSpec(small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, 3)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        outcome = execute_run(spec)
        round_tripped = pickle.loads(pickle.dumps(outcome))
        assert result_fingerprint(round_tripped.result) == result_fingerprint(
            outcome.result
        )

    def test_trace_seed_matches_simulate_day(self):
        spec = RunSpec(small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, 5)
        outcome = execute_run(spec)
        reference = simulate_day(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, seed=5
        )
        assert result_fingerprint(outcome.result) == result_fingerprint(
            reference
        )

    def test_ensemble_key_ignores_non_trace_config(self):
        base = RunSpec(small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, 1)
        other_policy = RunSpec(
            small_config(), ONLY_PARTIAL, DayType.WEEKDAY, 1
        )
        richer = RunSpec(
            small_config(memory_overcommit=1.5),
            FULL_TO_PARTIAL, DayType.WEEKDAY, 1,
        )
        assert base.ensemble_key() == other_policy.ensemble_key()
        assert base.ensemble_key() == richer.ensemble_key()
        different_seed = RunSpec(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, 2
        )
        assert base.ensemble_key() != different_seed.ensemble_key()


class TestEnsembleCache:
    def test_second_draw_is_a_hit_and_the_same_object(self):
        clear_ensemble_cache()
        spec = RunSpec(small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, 7)
        first, was_cached_first = _ensemble_for(spec)
        again, was_cached_again = _ensemble_for(
            RunSpec(small_config(), ONLY_PARTIAL, DayType.WEEKDAY, 7)
        )
        assert not was_cached_first
        assert was_cached_again
        assert again is first
        assert ensemble_cache_stats() == (1, 1)

    def test_outcomes_record_cache_reuse(self):
        clear_ensemble_cache()
        config = small_config()
        specs = [
            RunSpec(config, policy, DayType.WEEKDAY, 11)
            for policy in (FULL_TO_PARTIAL, ONLY_PARTIAL)
        ]
        outcomes = SweepRunner().run(specs)
        assert [o.ensemble_cached for o in outcomes] == [False, True]
        assert SweepRunner().run(specs)[0].ensemble_cached  # still warm

    def test_cached_run_equals_uncached_run(self):
        config = small_config()
        spec = RunSpec(config, FULL_TO_PARTIAL, DayType.WEEKDAY, 13)
        clear_ensemble_cache()
        cold = execute_run(spec)
        warm = execute_run(spec)
        assert not cold.ensemble_cached
        assert warm.ensemble_cached
        assert result_fingerprint(cold.result) == result_fingerprint(
            warm.result
        )


class TestBackendDeterminism:
    def test_process_backend_matches_serial_at_any_worker_count(self):
        specs = specs_matrix()
        serial = SweepRunner().run(specs)
        for workers in (2, 3):
            parallel = SweepRunner(backend="process", workers=workers).run(
                specs
            )
            assert [o.spec for o in parallel] == specs
            for serial_outcome, parallel_outcome in zip(serial, parallel):
                assert result_fingerprint(
                    serial_outcome.result
                ) == result_fingerprint(parallel_outcome.result)

    def test_results_ordered_by_spec_not_completion(self):
        specs = specs_matrix()
        outcomes = SweepRunner(backend="process", workers=2).run(specs)
        assert [o.spec for o in outcomes] == specs
        assert [o.result.seed for o in outcomes] == [s.seed for s in specs]

    def test_process_backend_matches_serial_under_faults(self):
        """Fault draws live in per-run streams: workers change nothing."""
        specs = []
        for name in ("light", "heavy"):
            config = small_config(faults=fault_profile_by_name(name))
            for seed in (0, 1):
                specs.append(
                    RunSpec(config, FULL_TO_PARTIAL, DayType.WEEKDAY, seed)
                )
        serial = SweepRunner().run(specs)
        assert any(
            o.result.faults.total_events > 0 for o in serial
        ), "fault profiles injected nothing; differential test is vacuous"
        parallel = SweepRunner(backend="process", workers=2).run(specs)
        for serial_outcome, parallel_outcome in zip(serial, parallel):
            assert result_fingerprint(
                serial_outcome.result
            ) == result_fingerprint(parallel_outcome.result)
            assert serial_outcome.result.faults == (
                parallel_outcome.result.faults
            )

    def test_fault_rate_sweep_backend_equivalence(self):
        sweep_args = (small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY)
        kwargs = dict(scale_factors=(0.0, 2.0), runs=2)
        serial = fault_rate_sweep(*sweep_args, **kwargs)
        parallel = fault_rate_sweep(
            *sweep_args, **kwargs,
            runner=SweepRunner(backend="process", workers=2),
        )
        assert [row[:2] for row in serial] == [row[:2] for row in parallel]
        zero_chunk, scaled_chunk = serial[0][2], serial[1][2]
        assert all(r.faults.total_events == 0 for r in zero_chunk)
        assert any(r.faults.total_events > 0 for r in scaled_chunk)

    def test_consolidation_host_sweep_backend_equivalence(self):
        sweep_args = (
            small_config(), [FULL_TO_PARTIAL], DayType.WEEKDAY,
        )
        serial = consolidation_host_sweep(
            *sweep_args, consolidation_counts=(1, 2), runs=2
        )
        parallel = consolidation_host_sweep(
            *sweep_args, consolidation_counts=(1, 2), runs=2,
            runner=SweepRunner(backend="process", workers=2),
        )
        assert serial == parallel


class TestInstrumentation:
    def test_summary_accounts_for_every_run(self):
        specs = specs_matrix()
        runner = SweepRunner()
        runner.run(specs)
        summary = runner.last_summary
        assert summary.runs == len(specs)
        assert summary.backend == "serial"
        assert summary.wall_time_s > 0.0
        assert summary.throughput_runs_per_s > 0.0
        assert 0.0 < summary.run_wall_mean_s <= summary.run_wall_max_s
        assert summary.run_wall_total_s >= summary.run_wall_max_s
        assert sum(count for _worker, count in summary.worker_runs) == len(
            specs
        )
        assert 0.0 < summary.worker_utilization <= 1.0
        assert "runs/s" in str(summary)

    def test_summaries_accumulate_per_batch(self):
        runner = SweepRunner()
        specs = specs_matrix()[:2]
        runner.run(specs)
        runner.run(specs)
        assert len(runner.summaries) == 2
        assert runner.last_summary is runner.summaries[-1]

    def test_progress_callback_sees_every_completion(self):
        seen = []
        specs = specs_matrix()[:3]
        runner = SweepRunner(progress=seen.append)
        runner.run(specs)
        assert [p.completed for p in seen] == [1, 2, 3]
        assert all(p.total == 3 for p in seen)
        assert [p.outcome.spec for p in seen] == specs  # serial: spec order

    def test_progress_callback_fires_under_process_backend(self):
        seen = []
        specs = specs_matrix()[:3]
        SweepRunner(backend="process", workers=2, progress=seen.append).run(
            specs
        )
        assert sorted(p.completed for p in seen) == [1, 2, 3]


class TestProgressCallbackErrors:
    """A throwing observer must not strand the pool or eat the batch."""

    def test_serial_batch_completes_before_error_surfaces(self):
        specs = specs_matrix()[:3]

        def boom(progress):
            raise ValueError(f"bad observer at {progress.completed}")

        runner = SweepRunner(progress=boom)
        with pytest.raises(ValueError, match="bad observer at 1"):
            runner.run(specs)
        assert runner.last_summary.runs == len(specs)

    def test_process_pool_drains_and_error_is_deferred(self):
        specs = specs_matrix()[:4]
        calls = []

        def boom(progress):
            calls.append(progress.completed)
            raise ValueError("bad observer")

        runner = SweepRunner(backend="process", workers=2, progress=boom)
        with pytest.raises(ValueError, match="bad observer"):
            runner.run(specs)
        # Only the first invocation fired; the batch still ran to
        # completion and was summarized before the error surfaced.
        assert calls == [1]
        assert runner.last_summary.runs == len(specs)

    def test_runner_stays_usable_after_a_callback_error(self):
        specs = specs_matrix()[:3]
        state = {"raised": False}

        def flaky(progress):
            if not state["raised"]:
                state["raised"] = True
                raise RuntimeError("one bad call")

        runner = SweepRunner(progress=flaky)
        with pytest.raises(RuntimeError):
            runner.run(specs)
        outcomes = runner.run(specs)
        assert [outcome.spec for outcome in outcomes] == specs


class TestWorkerCacheCounters:
    """Per-process cache statistics must not leak across processes."""

    def test_worker_counters_reset_at_batch_start(self):
        # Prime the parent's counters: on Linux the pool forks, so
        # without the batch-start reset every worker would inherit
        # these three hits and three misses.
        clear_ensemble_cache()
        for seed in (21, 22, 23):
            spec = RunSpec(small_config(), FULL_TO_PARTIAL,
                           DayType.WEEKDAY, seed)
            _ensemble_for(spec)
            _ensemble_for(spec)
        assert ensemble_cache_stats() == (3, 3)
        specs = specs_matrix()
        outcomes = SweepRunner(backend="process", workers=2).run(specs)
        per_worker = {}
        for outcome in outcomes:
            per_worker.setdefault(outcome.worker, []).append(outcome)
        for worker_outcomes in per_worker.values():
            # Each run performs exactly one cache lookup, so a worker's
            # (hits + misses) after its k-th run is exactly k — parent
            # history would inflate every total by six.
            totals = sorted(
                sum(outcome.worker_cache_stats)
                for outcome in worker_outcomes
            )
            assert totals == list(range(1, len(worker_outcomes) + 1))
        # The batch ran in workers; the parent's own counters are
        # untouched (per-process semantics).
        assert ensemble_cache_stats() == (3, 3)

    def test_serial_outcomes_carry_parent_stats(self):
        clear_ensemble_cache()
        spec = RunSpec(small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, 31)
        outcomes = SweepRunner().run([spec, spec])
        assert outcomes[0].worker_cache_stats == (0, 1)
        assert outcomes[1].worker_cache_stats == (1, 1)


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            SweepRunner(backend="threads")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ConfigError):
            SweepRunner(backend="process", workers=0)

    def test_serial_backend_reports_one_worker(self):
        assert SweepRunner(backend="serial", workers=8).workers == 1

    def test_empty_spec_list(self):
        runner = SweepRunner()
        assert runner.run([]) == []
        assert runner.last_summary.runs == 0
