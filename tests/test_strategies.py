"""The pluggable strategy registry (`repro.core.strategies`)."""

import pickle
from dataclasses import dataclass

import pytest

from repro.core import (
    ALL_POLICIES,
    FULL_TO_PARTIAL,
    GreedyStrategy,
    PlacementStrategy,
    register_family,
    register_strategy,
    resolve_strategy,
    strategy_by_name,
    strategy_names,
    unregister_strategy,
)
from repro.errors import ConfigError
from repro.policies import GammaRobustStrategy


@dataclass(frozen=True)
class _RoundTripStrategy(GreedyStrategy):
    @property
    def name(self) -> str:
        return "RoundTrip"


class TestRegistry:
    def test_paper_policies_are_registered_in_order(self):
        names = strategy_names()
        assert names[:4] == [
            "OnlyPartial", "Default", "FulltoPartial", "NewHome",
        ]
        assert "GammaRobust" in names

    def test_lookup_is_case_insensitive(self):
        assert strategy_by_name("fulltopartial") is (
            strategy_by_name("FulltoPartial")
        )

    def test_registered_strategy_wraps_the_paper_spec(self):
        for policy in ALL_POLICIES:
            strategy = strategy_by_name(policy.name)
            assert isinstance(strategy, GreedyStrategy)
            assert strategy.spec is policy
            assert strategy.name == policy.name

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigError, match="unknown strategy"):
            strategy_by_name("NoSuchPolicy")

    def test_duplicate_registration_requires_replace(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_strategy(GreedyStrategy(FULL_TO_PARTIAL))
        with pytest.raises(ConfigError, match="already registered"):
            register_family(
                "FulltoPartial", lambda argument: GreedyStrategy(
                    FULL_TO_PARTIAL
                ),
            )

    def test_unregister_unknown_name_fails(self):
        with pytest.raises(ConfigError, match="not registered"):
            unregister_strategy("NeverRegistered")

    def test_register_unregister_round_trip(self):
        strategy = _RoundTripStrategy(FULL_TO_PARTIAL)
        register_strategy(strategy)
        try:
            assert "RoundTrip" in strategy_names()
            assert resolve_strategy("RoundTrip") is strategy
        finally:
            unregister_strategy("RoundTrip")
        assert "RoundTrip" not in strategy_names()


class TestFamilies:
    def test_family_lookup_parses_the_argument(self):
        strategy = strategy_by_name("GammaRobust@3")
        assert isinstance(strategy, GammaRobustStrategy)
        assert strategy.gamma == 3
        assert strategy.name == "GammaRobust@3"

    def test_bare_family_name_applies_the_default(self):
        strategy = strategy_by_name("GammaRobust")
        assert isinstance(strategy, GammaRobustStrategy)
        assert strategy.gamma == 1

    def test_family_lookup_is_case_insensitive(self):
        assert strategy_by_name("gammarobust@2") == (
            strategy_by_name("GammaRobust@2")
        )

    def test_bad_family_argument_is_rejected(self):
        with pytest.raises(ConfigError, match="integer"):
            strategy_by_name("GammaRobust@two")
        with pytest.raises(ConfigError, match="gamma"):
            strategy_by_name("GammaRobust@-1")

    def test_family_name_cannot_contain_separator(self):
        with pytest.raises(ConfigError, match="must not contain"):
            register_family(
                "Bad@Name", lambda argument: GreedyStrategy(FULL_TO_PARTIAL)
            )


class TestResolution:
    def test_strategy_passes_through_unchanged(self):
        strategy = strategy_by_name("Default")
        assert resolve_strategy(strategy) is strategy

    def test_spec_is_wrapped_in_greedy(self):
        resolved = resolve_strategy(FULL_TO_PARTIAL)
        assert isinstance(resolved, GreedyStrategy)
        assert resolved.spec is FULL_TO_PARTIAL

    def test_unregistered_custom_spec_still_resolves(self):
        custom = FULL_TO_PARTIAL.__class__(
            name="Bespoke",
            full_migrate_active=False,
            convert_in_place=True,
            exchange_idle_full=False,
            rehome_on_exhaustion=False,
        )
        resolved = resolve_strategy(custom)
        assert resolved.name == "Bespoke"

    def test_non_policy_value_is_rejected(self):
        with pytest.raises(ConfigError, match="cannot resolve"):
            resolve_strategy(42)


class TestPicklability:
    """Sweeps ship strategies to worker processes inside RunSpecs."""

    @pytest.mark.parametrize(
        "name", ["Default", "GammaRobust@0", "GammaRobust@4"]
    )
    def test_strategies_survive_pickling(self, name):
        strategy = strategy_by_name(name)
        clone = pickle.loads(pickle.dumps(strategy))
        assert isinstance(clone, PlacementStrategy)
        assert clone.name == strategy.name
        assert clone.spec == strategy.spec
