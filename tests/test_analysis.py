"""Analysis helpers: CDFs, series utilities, table rendering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import Cdf, bin_series, format_percent, format_table, moving_average
from repro.errors import ConfigError


class TestCdf:
    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            Cdf([])

    def test_probability_at_or_below(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.probability_at_or_below(0.5) == 0.0
        assert cdf.probability_at_or_below(2.0) == 0.5
        assert cdf.probability_at_or_below(10.0) == 1.0

    def test_median(self):
        assert Cdf([5.0, 1.0, 3.0]).median() == 3.0

    def test_extremes(self):
        cdf = Cdf([2.0, 9.0, 4.0])
        assert cdf.min == 2.0
        assert cdf.max == 9.0
        assert cdf.percentile(0.0) == 2.0
        assert cdf.percentile(100.0) == 9.0

    def test_percentile_range_checked(self):
        with pytest.raises(ConfigError):
            Cdf([1.0]).percentile(150.0)

    def test_points_downsample(self):
        cdf = Cdf(list(range(1000)))
        points = cdf.points(max_points=10)
        assert len(points) <= 12
        assert points[-1][1] == 1.0

    def test_points_append_skipped_maximum(self):
        # Step 2 over 6 samples stops at index 4; the true maximum must
        # still close the curve at probability 1.0.
        points = Cdf([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).points(max_points=3)
        assert points[-1] == (6.0, 1.0)
        values = [value for value, _prob in points]
        probabilities = [prob for _value, prob in points]
        assert values == sorted(values)
        assert probabilities == sorted(probabilities)

    def test_points_small_sample_is_exact(self):
        points = Cdf([3.0, 1.0]).points(max_points=100)
        assert points == [(1.0, 0.5), (3.0, 1.0)]

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_percentiles_monotone(self, samples):
        cdf = Cdf(samples)
        previous = cdf.percentile(0.0)
        for q in (10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0):
            value = cdf.percentile(q)
            assert value >= previous
            previous = value

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=100),
           st.floats(min_value=-10.0, max_value=110.0))
    @settings(max_examples=80, deadline=None)
    def test_probability_is_exact_empirical_fraction(self, samples, value):
        cdf = Cdf(samples)
        expected = sum(1 for s in samples if s <= value) / len(samples)
        assert cdf.probability_at_or_below(value) == pytest.approx(expected)


class TestSeries:
    def test_moving_average_smooths(self):
        values = [0.0, 10.0, 0.0, 10.0]
        smoothed = moving_average(values, window=3)
        assert smoothed[1] == pytest.approx(10.0 / 3)

    def test_moving_average_window_one_is_identity(self):
        values = [1.0, 2.0, 3.0]
        assert moving_average(values, 1) == values

    def test_moving_average_validation(self):
        with pytest.raises(ConfigError):
            moving_average([1.0], 0)

    def test_bin_series(self):
        times = [0.0, 10.0, 20.0, 30.0]
        values = [1.0, 3.0, 5.0, 7.0]
        binned = bin_series(times, values, bin_width=20.0)
        assert binned == [(0.0, 2.0), (20.0, 6.0)]

    def test_bin_series_validation(self):
        with pytest.raises(ConfigError):
            bin_series([1.0], [1.0, 2.0], 10.0)
        with pytest.raises(ConfigError):
            bin_series([1.0], [1.0], 0.0)


class TestTables:
    def test_format_percent(self):
        assert format_percent(0.281) == "28.1%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        # Columns align: 'value' entries start at the same offset.
        assert lines[2].rstrip().endswith("1")
        assert lines[3].rstrip().endswith("22")

    def test_format_table_handles_wide_cells(self):
        table = format_table(["x"], [["wider-than-header"]])
        assert "wider-than-header" in table
