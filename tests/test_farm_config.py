"""Farm configuration validation and derived quantities."""

import pytest

from repro.errors import ConfigError
from repro.farm import FarmConfig
from repro.energy import MemoryServerProfile


class TestDefaults:
    def test_paper_standard_setup(self):
        config = FarmConfig()
        assert config.home_hosts == 30
        assert config.consolidation_hosts == 4
        assert config.vms_per_host == 30
        assert config.total_vms == 900
        assert config.vm_memory_mib == 4096.0

    def test_capacity_derived_from_vm_complement(self):
        assert FarmConfig().capacity_mib == 30 * 4096.0

    def test_capacity_scales_with_vms_per_host(self):
        config = FarmConfig(home_hosts=10, vms_per_host=90)
        assert config.capacity_mib == 90 * 4096.0
        assert config.total_vms == 900

    def test_explicit_capacity_override(self):
        config = FarmConfig(host_capacity_mib=200_000.0)
        assert config.capacity_mib == 200_000.0

    def test_overcommit_scales_capacity(self):
        config = FarmConfig(memory_overcommit=1.5)
        assert config.capacity_mib == pytest.approx(1.5 * 30 * 4096.0)

    def test_overcommit_bounds(self):
        with pytest.raises(ConfigError):
            FarmConfig(memory_overcommit=0.9)
        with pytest.raises(ConfigError):
            FarmConfig(memory_overcommit=2.5)


class TestValidation:
    def test_positive_counts(self):
        with pytest.raises(ConfigError):
            FarmConfig(home_hosts=0)
        with pytest.raises(ConfigError):
            FarmConfig(consolidation_hosts=0)
        with pytest.raises(ConfigError):
            FarmConfig(vms_per_host=0)

    def test_planning_interval_must_align_with_traces(self):
        with pytest.raises(ConfigError):
            FarmConfig(planning_interval_s=250.0)
        FarmConfig(planning_interval_s=600.0)  # multiples are fine

    def test_jitter_range(self):
        with pytest.raises(ConfigError):
            FarmConfig(activation_jitter_s=0.0)
        with pytest.raises(ConfigError):
            FarmConfig(activation_jitter_s=500.0)

    def test_hysteresis_at_least_one(self):
        with pytest.raises(ConfigError):
            FarmConfig(min_idle_intervals=0)

    def test_growth_non_negative(self):
        with pytest.raises(ConfigError):
            FarmConfig(working_set_growth_mib_per_h=-1.0)


class TestOverrides:
    def test_with_overrides_returns_new_config(self):
        base = FarmConfig()
        varied = base.with_overrides(consolidation_hosts=8)
        assert varied.consolidation_hosts == 8
        assert base.consolidation_hosts == 4

    def test_with_overrides_replaces_memory_server(self):
        varied = FarmConfig().with_overrides(
            memory_server=MemoryServerProfile.alternative(2.0)
        )
        assert varied.memory_server.total_w == 2.0
