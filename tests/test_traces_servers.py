"""Server-workload trace generation (§1 motivation, §5.6)."""

import random

import pytest

from repro.errors import ConfigError
from repro.traces.servers import (
    BATCH_WORKER,
    FRONT_END,
    SERVICE_MEMBER,
    ServerProfile,
    generate_server_ensemble,
    generate_server_trace,
)


class TestProfiles:
    def test_service_members_are_nearly_always_idle(self):
        rng = random.Random(0)
        fractions = [
            generate_server_trace(i, SERVICE_MEMBER, rng).active_fraction
            for i in range(100)
        ]
        assert sum(fractions) / len(fractions) < 0.05

    def test_batch_workers_work_their_window(self):
        rng = random.Random(1)
        trace = generate_server_trace(0, BATCH_WORKER, rng)
        window = trace.intervals[1 * 12 : 4 * 12]
        outside = trace.intervals[6 * 12 : 23 * 12]
        assert sum(window) / len(window) > 0.7
        assert sum(outside) / len(outside) < 0.05

    def test_front_ends_follow_business_hours(self):
        rng = random.Random(2)
        traces = [generate_server_trace(i, FRONT_END, rng) for i in range(50)]
        day = sum(sum(t.intervals[9 * 12 : 18 * 12]) for t in traces)
        night = sum(sum(t.intervals[0 : 7 * 12]) for t in traces)
        assert day > 3 * night

    def test_profile_validation(self):
        with pytest.raises(ConfigError):
            ServerProfile("bad", burst_start_probability=2.0,
                          burst_mean_intervals=1.0)
        with pytest.raises(ConfigError):
            ServerProfile("bad", 0.1, 0.5)
        with pytest.raises(ConfigError):
            ServerProfile("bad", 0.1, 2.0, busy_windows_h=((5.0, 3.0),))


class TestEnsembles:
    def test_mix_counts_and_ordering(self):
        ensemble = generate_server_ensemble(
            {SERVICE_MEMBER: 4, BATCH_WORKER: 2}, seed=0
        )
        assert len(ensemble) == 6
        assert [t.user_id for t in ensemble] == list(range(6))

    def test_deterministic(self):
        a = generate_server_ensemble({FRONT_END: 5}, seed=9)
        b = generate_server_ensemble({FRONT_END: 5}, seed=9)
        assert [t.intervals for t in a] == [t.intervals for t in b]

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigError):
            generate_server_ensemble({}, seed=0)
        with pytest.raises(ConfigError):
            generate_server_ensemble({SERVICE_MEMBER: 0}, seed=0)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            generate_server_ensemble({SERVICE_MEMBER: -1}, seed=0)

    def test_server_farm_idles_more_than_desktops(self):
        from repro.traces import DayType, compute_ensemble_stats, generate_ensemble

        servers = compute_ensemble_stats(
            generate_server_ensemble(
                {SERVICE_MEMBER: 60, BATCH_WORKER: 30, FRONT_END: 30},
                seed=3,
            )
        )
        desktops = compute_ensemble_stats(
            generate_ensemble(120, DayType.WEEKDAY, seed=3)
        )
        # §5.6's premise: server farms are even idler than desktop ones.
        assert servers.mean_active_fraction < desktops.mean_active_fraction
