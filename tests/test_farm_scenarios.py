"""End-to-end farm scenarios on tiny, hand-written trace ensembles.

Each scenario builds a 2-home/1-consolidation cluster with four VMs and
scripts each user's day interval by interval, so every assertion pins a
specific manager behaviour.
"""

import pytest

from repro.cluster import HostRole
from repro.core import DEFAULT, FULL_TO_PARTIAL, NEW_HOME, ONLY_PARTIAL
from repro.farm import FarmConfig, FarmSimulation
from repro.traces import DayType, TraceEnsemble, UserDayTrace
from repro.units import INTERVALS_PER_DAY
from repro.vm.state import Residency


def tiny_config(**overrides):
    defaults = dict(home_hosts=2, consolidation_hosts=1, vms_per_host=2)
    defaults.update(overrides)
    return FarmConfig(**defaults)


def ensemble_from_bits(per_user_bits):
    traces = []
    for user_id, bits in enumerate(per_user_bits):
        padded = list(bits) + [0] * (INTERVALS_PER_DAY - len(bits))
        traces.append(UserDayTrace.from_bits(user_id, DayType.WEEKDAY, padded))
    return TraceEnsemble(DayType.WEEKDAY, tuple(traces))


def active_between(start_interval, end_interval):
    bits = [0] * INTERVALS_PER_DAY
    for index in range(start_interval, end_interval):
        bits[index] = 1
    return bits


def run(config, policy, ensemble, seed=0):
    simulation = FarmSimulation(config, policy, ensemble, seed=seed)
    result = simulation.run()
    simulation.cluster.check_invariants()
    return simulation, result


class TestAllIdleDay:
    def test_homes_sleep_nearly_all_day(self):
        ensemble = ensemble_from_bits([[], [], [], []])
        simulation, result = run(tiny_config(), FULL_TO_PARTIAL, ensemble)
        assert result.mean_home_sleep_fraction() > 0.95
        # Every VM ends the day consolidated as a partial VM.
        for vm in simulation.vms.values():
            assert vm.residency is Residency.PARTIAL
        # Both home hosts serve their VMs' images.
        for host in simulation.cluster.home_hosts:
            assert host.served_image_count == 2

    def test_two_home_cluster_cannot_profit(self):
        # Density is the whole game: with only two home hosts, the one
        # powered consolidation host eats everything the sleeping homes
        # save, so savings hover at zero.
        ensemble = ensemble_from_bits([[], [], [], []])
        _sim, result = run(tiny_config(), FULL_TO_PARTIAL, ensemble)
        assert -0.05 < result.savings_fraction < 0.10

    def test_ten_home_cluster_profits_handsomely(self):
        ensemble = ensemble_from_bits([[]] * 20)
        config = tiny_config(home_hosts=10)
        _sim, result = run(config, FULL_TO_PARTIAL, ensemble)
        profile = config.host_power
        baseline_w = 10 * profile.powered_watts(full_vms=2)
        floor_w = 10 * (profile.sleep_w + 42.2) + profile.powered_watts()
        ceiling = 1.0 - floor_w / baseline_w
        assert ceiling - 0.10 < result.savings_fraction < ceiling + 0.01

    def test_no_transition_delays_when_nobody_activates(self):
        ensemble = ensemble_from_bits([[], [], [], []])
        _sim, result = run(tiny_config(), FULL_TO_PARTIAL, ensemble)
        assert result.delays == []

    def test_min_powered_hosts_is_one(self):
        ensemble = ensemble_from_bits([[], [], [], []])
        _sim, result = run(tiny_config(), FULL_TO_PARTIAL, ensemble)
        assert result.min_powered_hosts == 1


class TestAlwaysActiveVm:
    def test_hybrid_policy_moves_the_active_vm_and_sleeps_its_home(self):
        ensemble = ensemble_from_bits([
            active_between(0, INTERVALS_PER_DAY), [], [], [],
        ])
        simulation, result = run(tiny_config(), FULL_TO_PARTIAL, ensemble)
        vm = simulation.vms[0]
        consolidation_ids = {
            h.host_id for h in simulation.cluster.consolidation_hosts
        }
        assert vm.residency is Residency.FULL
        assert vm.host_id in consolidation_ids
        assert result.mean_home_sleep_fraction() > 0.9

    def test_only_partial_keeps_the_active_home_awake(self):
        ensemble = ensemble_from_bits([
            active_between(0, INTERVALS_PER_DAY), [], [], [],
        ])
        simulation, result = run(tiny_config(), ONLY_PARTIAL, ensemble)
        home = simulation.cluster.host(0)
        assert home.is_powered
        assert home.has_vm(0)
        # The all-idle home still sleeps.
        sleep_by_host = result.home_sleep_s
        assert sleep_by_host[1] > 0.9 * 86400.0
        assert sleep_by_host[0] == 0.0


class TestMidDayActivation:
    def _mid_day_ensemble(self):
        # User 0 idles all morning, works 10:00-12:00, idles after.
        return ensemble_from_bits([
            active_between(120, 144), [], [], [],
        ])

    def test_activation_delay_recorded(self):
        _sim, result = run(tiny_config(), FULL_TO_PARTIAL,
                           self._mid_day_ensemble())
        activations = [d for d in result.delays if d.vm_id == 0]
        assert len(activations) == 1
        sample = activations[0]
        assert 120 * 300.0 <= sample.time_s < 121 * 300.0
        assert sample.delay_s > 0.0  # it was consolidated, so not free

    def test_conversion_in_place_when_space_allows(self):
        _sim, result = run(tiny_config(), FULL_TO_PARTIAL,
                           self._mid_day_ensemble())
        sample = [d for d in result.delays if d.vm_id == 0][0]
        assert sample.action == "convert_in_place"
        assert result.counters.conversions_in_place == 1

    def test_full_to_partial_reconsolidates_after_idling(self):
        simulation, result = run(tiny_config(), FULL_TO_PARTIAL,
                                 self._mid_day_ensemble())
        vm = simulation.vms[0]
        # After the active block, the exchange path returns the VM home
        # and re-partializes it.
        assert vm.residency is Residency.PARTIAL
        assert vm.home_id == vm.origin_home_id == 0
        assert result.counters.exchanges >= 1

    def test_default_policy_leaves_converted_vm_full(self):
        simulation, _result = run(tiny_config(), DEFAULT,
                                  self._mid_day_ensemble())
        vm = simulation.vms[0]
        assert vm.residency is Residency.FULL
        consolidation_ids = {
            h.host_id for h in simulation.cluster.consolidation_hosts
        }
        assert vm.host_id in consolidation_ids


class TestCapacityExhaustion:
    def test_wake_home_and_return_all(self):
        # The consolidation host can take all 28 partial working sets
        # (28 x 165.63 MiB) but cannot absorb a ~3.9 GiB conversion:
        # activating VM 0 must wake home 0 and pull its VMs back.
        from repro.vm import WorkingSetSampler

        config = tiny_config(
            home_hosts=14,
            host_capacity_mib=2 * 4096.0 + 100.0,
            working_sets=WorkingSetSampler(std_mib=0.0),
        )
        ensemble = ensemble_from_bits(
            [active_between(12, 24)] + [[]] * 27
        )
        simulation, result = run(config, FULL_TO_PARTIAL, ensemble)
        sample = [d for d in result.delays if d.vm_id == 0][0]
        assert sample.action == "wake_home_return_all"
        assert result.counters.reintegrations >= 2
        assert result.counters.home_wakeups >= 1
        # The reintegration latency includes the home's resume.
        assert sample.delay_s >= 3.7

    def test_new_home_policy_rehomes_instead(self):
        config = tiny_config(
            home_hosts=3, vms_per_host=2,
            host_capacity_mib=2 * 4096.0 + 100.0,
        )
        # Users 0 and 2 (homes 0 and 1) are active early so one home
        # stays powered; user 4 activates later when the consolidation
        # host is too full for an in-place conversion.
        ensemble = ensemble_from_bits([
            active_between(0, INTERVALS_PER_DAY), [],
            active_between(0, INTERVALS_PER_DAY), [],
            active_between(100, 124), [],
        ])
        simulation, result = run(config, NEW_HOME, ensemble)
        sample = [d for d in result.delays
                  if d.vm_id == 4 and d.delay_s > 0.0]
        if sample:  # rehoming must at least be attempted before waking
            assert sample[0].action in ("migrate_new_home",
                                        "wake_home_return_all")


class TestEnergyCrossChecks:
    def test_accountant_and_tracker_agree(self):
        ensemble = ensemble_from_bits([
            active_between(96, 204), [], [], [],
        ])
        simulation, result = run(tiny_config(), FULL_TO_PARTIAL, ensemble)
        profile = simulation.config.host_power
        ms_w = simulation.config.memory_server.total_w
        for host in simulation.cluster:
            sleep_s = simulation.tracker.duration(host.host_id, "sleeping")
            powered_s = simulation.tracker.duration(host.host_id, "powered")
            suspending_s = simulation.tracker.duration(host.host_id, "suspending")
            resuming_s = simulation.tracker.duration(host.host_id, "resuming")
            total = sleep_s + powered_s + suspending_s + resuming_s
            assert total == pytest.approx(86400.0, abs=1.0)
            sleep_w = profile.sleep_w + (
                ms_w if host.role is HostRole.COMPUTE else 0.0
            )
            low = (
                sleep_s * sleep_w
                + powered_s * profile.idle_w
                + suspending_s * profile.suspend_w
                + resuming_s * profile.resume_w
            )
            high = low + powered_s * profile.per_vm_w * (
                simulation.config.capacity_mib / 4096.0
            )
            measured = simulation.accountant.energy_joules(host.host_id)
            assert low - 1.0 <= measured <= high + 1.0

    def test_managed_energy_below_baseline_for_mostly_idle_day(self):
        ensemble = ensemble_from_bits([[]] * 20)
        _sim, result = run(
            tiny_config(home_hosts=10), FULL_TO_PARTIAL, ensemble
        )
        assert result.energy.managed_joules < result.energy.baseline_joules
