"""Unit tests for the observability layer (``repro.obs``).

Covers the typed event model, the recording tracer's span/clock
semantics, the metrics registry, and all three exporters — including
the failure paths (malformed records, corrupt span stacks, invalid
Chrome documents) that the differential and property batteries never
reach on healthy traces.
"""

import json

import pytest

from repro.errors import ObservabilityError, TraceFormatError
from repro.faults import FaultProfile
from repro.faults.plan import FaultInjector
from repro.memserver import MemoryServer, PageStore
from repro.obs import (
    CAT_FAULT,
    CAT_MEMSERVER,
    CAT_POWER,
    NULL_TRACER,
    PHASE_BEGIN,
    PHASE_END,
    PHASE_INSTANT,
    Counter,
    Gauge,
    MetricsRegistry,
    NullTracer,
    RecordingTracer,
    TimeWeightedHistogram,
    TraceEvent,
    Tracer,
    events_to_chrome,
    events_to_jsonl,
    read_jsonl,
    timeline_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.simulator.randomness import RngStreams


def make_event(seq=0, time_s=1.5, name="power.transition",
               category=CAT_POWER, phase=PHASE_INSTANT, **args):
    return TraceEvent(seq=seq, time_s=time_s, name=name,
                      category=category, phase=phase, args=args)


class TestTraceEvent:
    def test_roundtrip_through_dict(self):
        event = make_event(host=3, mib=12.5, clean=True, state="sleeping")
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_unknown_phase_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown phase"):
            make_event(phase="during")

    def test_non_scalar_arg_rejected(self):
        with pytest.raises(ObservabilityError, match="not a JSON scalar"):
            make_event(payload=[1, 2, 3])

    def test_from_dict_rejects_malformed_record(self):
        with pytest.raises(ObservabilityError, match="malformed"):
            TraceEvent.from_dict({"seq": 0, "name": "x"})
        with pytest.raises(ObservabilityError, match="malformed"):
            TraceEvent.from_dict({"seq": 0, "time_s": "not-a-number-",
                                  "name": "x", "cat": "sim", "ph": "instant"})


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert isinstance(NULL_TRACER, Tracer)
        # Every surface method is a free no-op.
        tracer.set_clock(lambda: 1.0)
        tracer.event("x", "sim", a=1)
        tracer.counter("c", 2.0)
        tracer.gauge("g", 3.0)
        tracer.observe("h", 4.0, weight=2.0)
        with tracer.span("s", "sim"):
            pass


class TestRecordingTracer:
    def test_events_stamped_with_bound_clock(self):
        clock = {"now": 0.0}
        tracer = RecordingTracer()
        assert tracer.now_s() == 0.0  # unbound clock defaults to zero
        tracer.set_clock(lambda: clock["now"])
        tracer.event("a", "sim")
        clock["now"] = 42.0
        tracer.event("b", "sim", n=1)
        assert [e.time_s for e in tracer.events] == [0.0, 42.0]
        assert [e.seq for e in tracer.events] == [0, 1]
        assert tracer.events[1].args == {"n": 1}

    def test_span_emits_balanced_begin_end(self):
        tracer = RecordingTracer(clock=lambda: 5.0)
        with tracer.span("outer", "farm", label="x"):
            assert tracer.open_span_count == 1
            with tracer.span("inner", "sim"):
                tracer.event("tick", "sim")
        assert tracer.open_span_count == 0
        phases = [(e.name, e.phase) for e in tracer.events]
        assert phases == [
            ("outer", PHASE_BEGIN),
            ("inner", PHASE_BEGIN),
            ("tick", PHASE_INSTANT),
            ("inner", PHASE_END),
            ("outer", PHASE_END),
        ]

    def test_span_propagates_body_exception_and_still_closes(self):
        tracer = RecordingTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("s", "sim"):
                raise RuntimeError("boom")
        assert tracer.open_span_count == 0
        assert tracer.events[-1].phase == PHASE_END

    def test_corrupt_span_stack_detected(self):
        tracer = RecordingTracer()
        span = tracer.span("legit", "sim")
        span.__enter__()
        tracer._stack[-1] = ("impostor", "sim")
        with pytest.raises(ObservabilityError, match="span stack corrupted"):
            span.__exit__(None, None, None)

    def test_metric_methods_feed_registry(self):
        tracer = RecordingTracer(clock=lambda: 7.0)
        tracer.counter("migrations", 2.0)
        tracer.counter("migrations")
        tracer.gauge("active", 5.0)
        tracer.observe("latency_s", 1.5, weight=3.0)
        snapshot = tracer.metrics.snapshot()
        assert snapshot["counters"]["migrations"] == 3.0
        assert snapshot["gauges"]["active"] == {"last": 5.0, "samples": 1}
        assert tracer.metrics.gauge("active").samples == [(7.0, 5.0)]
        assert snapshot["histograms"]["latency_s"]["total_weight"] == 3.0

    def test_repr_mentions_counts(self):
        tracer = RecordingTracer()
        tracer.event("a", "sim")
        assert "events=1" in repr(tracer)


class TestMetrics:
    def test_counter_rejects_decrease(self):
        counter = Counter("n")
        counter.inc(0.0)
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_gauge_keeps_sample_history(self):
        gauge = Gauge("g")
        gauge.set(1.0, 10.0)
        gauge.set(2.0, 20.0)
        assert gauge.value == 2.0
        assert gauge.samples == [(10.0, 1.0), (20.0, 2.0)]

    def test_histogram_weighted_mean_and_quantiles(self):
        hist = TimeWeightedHistogram("h")
        hist.observe(1.0, weight=1.0)
        hist.observe(3.0, weight=3.0)
        assert hist.count == 2
        assert hist.total_weight == 4.0
        assert hist.mean() == pytest.approx(2.5)
        assert hist.quantile(0.5) == 3.0  # weight concentrates at 3.0
        assert hist.quantile(0.0) <= hist.quantile(1.0)

    def test_histogram_edge_cases(self):
        hist = TimeWeightedHistogram("h")
        assert hist.mean() == 0.0
        with pytest.raises(ObservabilityError, match="no observations"):
            hist.quantile(0.5)
        with pytest.raises(ObservabilityError, match="outside"):
            TimeWeightedHistogram("x").quantile(1.5)
        with pytest.raises(ObservabilityError, match="negative weight"):
            hist.observe(1.0, weight=-0.1)
        zero_weight = TimeWeightedHistogram("z")
        zero_weight.observe(5.0, weight=0.0)
        assert zero_weight.mean() == 0.0
        assert zero_weight.quantile(0.5) == 5.0

    def test_registry_creates_on_demand_and_renders(self):
        registry = MetricsRegistry()
        assert registry.is_empty
        assert registry.render() == "no metrics recorded"
        registry.counter("c").inc()
        registry.gauge("g").set(9.0, 1.0)
        registry.histogram("h").observe(2.0)
        registry.histogram("empty")
        assert not registry.is_empty
        assert registry.counter("c") is registry.counter("c")
        text = registry.render()
        assert "c = 1" in text
        assert "g = 9" in text
        assert "h: n=1" in text
        assert "empty: n=0" in text


class TestJsonlExport:
    def test_byte_stable_and_roundtrips(self, tmp_path):
        events = [make_event(seq=i, time_s=float(i), host=i)
                  for i in range(3)]
        text = events_to_jsonl(events)
        assert text == events_to_jsonl(events)  # deterministic
        assert text.endswith("\n") and text.count("\n") == 3
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(events, str(path)) == 3
        assert path.read_text() == text
        assert read_jsonl(str(path)) == events

    def test_empty_trace_serializes_to_empty_string(self):
        assert events_to_jsonl([]) == ""

    def test_read_rejects_bad_json_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(events_to_jsonl([make_event()]) + "not json\n")
        with pytest.raises(TraceFormatError, match=r"bad\.jsonl:2"):
            read_jsonl(str(path))

    def test_read_rejects_malformed_record_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "name": "x"}\n')
        with pytest.raises(TraceFormatError, match=r"bad\.jsonl:1"):
            read_jsonl(str(path))

    def test_read_skips_blank_lines(self, tmp_path):
        event = make_event()
        path = tmp_path / "gaps.jsonl"
        path.write_text("\n" + events_to_jsonl([event]) + "\n\n")
        assert read_jsonl(str(path)) == [event]


class TestChromeExport:
    def test_lanes_metadata_and_instant_scope(self):
        events = [
            make_event(seq=0, time_s=1.0, category=CAT_POWER),
            make_event(seq=1, time_s=2.0, name="fault.x",
                       category=CAT_FAULT),
            make_event(seq=2, time_s=3.0, category=CAT_POWER),
        ]
        document = events_to_chrome(events)
        assert document["displayTimeUnit"] == "ms"
        records = document["traceEvents"]
        metadata = [r for r in records if r["ph"] == "M"]
        assert [m["args"]["name"] for m in metadata] == ["power", "fault"]
        power = [r for r in records
                 if r["ph"] == "i" and r["cat"] == CAT_POWER]
        assert all(r["tid"] == 0 and r["s"] == "t" for r in power)
        assert power[0]["ts"] == pytest.approx(1.0e6)

    def test_spans_map_to_b_e_pairs(self, tmp_path):
        tracer = RecordingTracer(clock=lambda: 1.0)
        with tracer.span("s", "sim"):
            tracer.event("tick", "sim")
        path = tmp_path / "trace.json"
        assert write_chrome_trace(tracer.events, str(path)) == 3
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == 4  # 3 events + metadata
        phases = [r["ph"] for r in document["traceEvents"]]
        assert phases == ["M", "B", "i", "E"]

    @pytest.mark.parametrize("document, message", [
        ("not a dict", "must be a JSON object"),
        ({}, "lacks a traceEvents"),
        ({"traceEvents": ["nope"]}, "not an object"),
        ({"traceEvents": [{"ph": "i"}]}, "missing"),
        ({"traceEvents": [{"name": "x", "ph": "Z", "pid": 0, "tid": 0}]},
         "unknown ph"),
        ({"traceEvents": [{"name": 7, "ph": "i", "pid": 0, "tid": 0}]},
         "not a string"),
        ({"traceEvents": [{"name": "x", "ph": "i", "pid": 0, "tid": 0,
                           "ts": True, "args": {}}]}, "not a number"),
        ({"traceEvents": [{"name": "x", "ph": "i", "pid": 0, "tid": 0,
                           "ts": -1.0, "args": {}}]}, "negative ts"),
        ({"traceEvents": [{"name": "x", "ph": "i", "pid": 0, "tid": 0,
                           "ts": 0.0, "args": None}]}, "not an object"),
        ({"traceEvents": [{"name": "x", "ph": "E", "pid": 0, "tid": 0,
                           "ts": 0.0, "args": {}}]}, "E without matching B"),
        ({"traceEvents": [{"name": "x", "ph": "B", "pid": 0, "tid": 0,
                           "ts": 0.0, "args": {}}]}, "unbalanced spans"),
    ])
    def test_validation_rejects_malformed_documents(self, document, message):
        with pytest.raises(TraceFormatError, match=message):
            validate_chrome_trace(document)


class TestTimelineSummary:
    def test_empty_trace(self):
        assert timeline_summary([]) == "empty trace (0 events)"

    def test_summary_sections(self):
        tracer = RecordingTracer(clock=lambda: 10.0)
        tracer.event("power.transition", CAT_POWER,
                     **{"from": "sleeping", "to": "resuming"})
        tracer.event("migration.rehome", "migration", mib=100.0)
        tracer.event("fault.migration_abort", CAT_FAULT, fraction=0.5)
        tracer.counter("migration_mib", 100.0)
        text = timeline_summary(tracer.events, tracer.metrics)
        assert "3 events over [10.0 s, 10.0 s]" in text
        assert "sleeping -> resuming" in text
        assert "migration traffic: 100.0 MiB" in text
        assert "fault.migration_abort" in text
        assert "migration_mib = 100" in text
        # Deterministic: same trace, same text.
        assert text == timeline_summary(tracer.events, tracer.metrics)

    def test_span_counted_once(self):
        tracer = RecordingTracer()
        with tracer.span("farm.planning", "farm"):
            pass
        text = timeline_summary(tracer.events)
        assert "farm.planning                1" in text


class TestComponentEmission:
    def test_memory_server_emits_lifecycle_and_serve_events(self):
        tracer = RecordingTracer(clock=lambda: 3.0)
        store = PageStore()
        store.upload(1, {0: b"\0" * 4096})
        server = MemoryServer(host_id=2, store=store, tracer=tracer)
        server.start_serving()
        server.serve_page(1, 0)
        server.fail()
        server.repair()
        server.stop_serving()
        names = [e.name for e in tracer.events]
        assert names == [
            "memserver.start_serving", "memserver.serve_page",
            "memserver.fail", "memserver.repair", "memserver.stop_serving",
        ]
        assert all(e.category == CAT_MEMSERVER for e in tracer.events)
        assert tracer.events[1].args["vm"] == 1

    def test_memory_server_emits_injected_timeouts(self):
        tracer = RecordingTracer()
        store = PageStore()
        store.upload(1, {0: b"\0" * 4096})
        server = MemoryServer(host_id=2, store=store, tracer=tracer)
        server.start_serving()
        profile = FaultProfile(name="t", page_timeout_prob=1.0,
                               page_timeout_retries_max=3)
        injector = FaultInjector(profile, RngStreams(0), tracer)
        server.serve_page_with_retries(1, 0, injector=injector)
        names = [e.name for e in tracer.events
                 if e.name.startswith(("fault.", "memserver."))]
        assert "fault.page_timeouts" in names
        assert "memserver.fetch_timeouts" in names

    def test_injector_emission_does_not_perturb_draws(self):
        """The tracer observes injector draws without consuming RNG."""
        profile = FaultProfile(name="t", migration_abort_prob=0.5,
                               wake_failure_prob=0.5, page_timeout_prob=0.5)
        silent = FaultInjector(profile, RngStreams(3))
        traced = FaultInjector(profile, RngStreams(3), RecordingTracer())
        for _ in range(50):
            assert silent.migration_abort() == traced.migration_abort()
            assert silent.wake_outcome() == traced.wake_outcome()
            assert silent.page_timeouts() == traced.page_timeouts()
