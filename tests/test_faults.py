"""Unit tests for :mod:`repro.faults` and its threading through layers."""

import dataclasses

import pytest

from repro.cluster.host import Host, HostRole
from repro.cluster.power import PowerState
from repro.core import DEFAULT as DEFAULT_POLICY
from repro.energy.report import EnergyReport
from repro.errors import (
    ConfigError,
    FaultInjectionError,
    PageFetchTimeout,
    PowerStateError,
)
from repro.farm import FarmConfig, simulate_day
from repro.faults import (
    CLEAN_WAKE,
    FAULT_PROFILE_NAMES,
    FAULT_PROFILES,
    FaultCounters,
    FaultInjector,
    FaultPlan,
    FaultProfile,
    WakeOutcome,
    backoff_delays_s,
    fault_profile_by_name,
)
from repro.memserver.server import MemoryServer
from repro.memserver.store import PageStore
from repro.simulator.randomness import RngStreams
from repro.traces import DayType


class TestFaultProfile:
    def test_default_is_null(self):
        assert FaultProfile().is_null
        assert FaultProfile.none().is_null

    def test_named_profiles_registered(self):
        assert set(FAULT_PROFILE_NAMES) == set(FAULT_PROFILES)
        for name in FAULT_PROFILE_NAMES:
            assert fault_profile_by_name(name).name == name

    def test_light_and_heavy_are_not_null(self):
        assert not FaultProfile.light().is_null
        assert not FaultProfile.heavy().is_null

    def test_unknown_profile_name_rejected(self):
        with pytest.raises(ConfigError):
            fault_profile_by_name("catastrophic")

    @pytest.mark.parametrize("field_name", [
        "migration_abort_prob", "wake_failure_prob",
        "memserver_crash_prob", "page_timeout_prob",
    ])
    def test_probabilities_validated(self, field_name):
        with pytest.raises(ConfigError):
            FaultProfile(**{field_name: 1.5})
        with pytest.raises(ConfigError):
            FaultProfile(**{field_name: -0.1})

    def test_progress_window_validated(self):
        with pytest.raises(ConfigError):
            FaultProfile(abort_progress_min=0.0)
        with pytest.raises(ConfigError):
            FaultProfile(abort_progress_min=0.9, abort_progress_max=0.5)
        with pytest.raises(ConfigError):
            FaultProfile(abort_progress_max=1.0)

    def test_semantics_knobs_validated(self):
        with pytest.raises(ConfigError):
            FaultProfile(wake_retry_cap=-1)
        with pytest.raises(ConfigError):
            FaultProfile(wake_backoff_base_s=0.0)
        with pytest.raises(ConfigError):
            FaultProfile(page_timeout_retries_max=0)
        with pytest.raises(ConfigError):
            FaultProfile(page_retry_mib=-1.0)

    def test_scaled_multiplies_rates_and_caps_at_one(self):
        heavy = FaultProfile.heavy()
        doubled = heavy.scaled(10.0)
        assert doubled.migration_abort_prob == 1.0
        assert doubled.wake_retry_cap == heavy.wake_retry_cap
        assert doubled.wake_backoff_base_s == heavy.wake_backoff_base_s

    def test_scaled_to_zero_is_null(self):
        assert FaultProfile.heavy().scaled(0.0).is_null

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ConfigError):
            FaultProfile.light().scaled(-1.0)


class TestBackoff:
    def test_exponential_schedule(self):
        assert backoff_delays_s(4.0, 3) == [4.0, 8.0, 16.0]

    def test_zero_attempts(self):
        assert backoff_delays_s(1.0, 0) == []

    def test_validation(self):
        with pytest.raises(ConfigError):
            backoff_delays_s(0.0, 1)
        with pytest.raises(ConfigError):
            backoff_delays_s(1.0, -1)


class TestWakeOutcome:
    def test_clean_constant(self):
        assert CLEAN_WAKE.is_clean
        assert not CLEAN_WAKE.gave_up

    def test_failed_outcome_is_not_clean(self):
        assert not WakeOutcome(failed_attempts=1, gave_up=False).is_clean

    def test_negative_attempts_rejected(self):
        with pytest.raises(ConfigError):
            WakeOutcome(failed_attempts=-1, gave_up=False)


class TestFaultCounters:
    def test_totals(self):
        counters = FaultCounters(
            migration_aborts=2, migration_retries=1, wake_retries=3,
            wake_give_ups=1, memserver_crashes=1, page_fetch_timeouts=4,
        )
        assert counters.total_events == 2 + 3 + 1 + 1 + 4
        assert counters.total_retries == 1 + 3 + 4
        assert counters.total_rollbacks == 2

    def test_str_shows_only_nonzero(self):
        assert str(FaultCounters()) == "FaultCounters(clean)"
        text = str(FaultCounters(wake_retries=2))
        assert "wake_retries=2" in text
        assert "migration_aborts" not in text

    def test_as_dict_covers_every_field(self):
        counters = FaultCounters()
        assert set(counters.as_dict()) == {
            f.name for f in dataclasses.fields(FaultCounters)
        }


class TestFaultPlan:
    def test_null_profile_builds_empty_plan_without_draws(self):
        rng = RngStreams(1).get("faults.plan")
        state_before = rng.getstate()
        plan = FaultPlan.build(FaultProfile.none(), [0, 1, 2], 86400.0, rng)
        assert plan.is_empty
        assert rng.getstate() == state_before

    def test_certain_crash_hits_every_host(self):
        profile = FaultProfile(memserver_crash_prob=1.0)
        rng = RngStreams(2).get("faults.plan")
        plan = FaultPlan.build(profile, [0, 1, 2], 86400.0, rng)
        assert sorted(plan.crash_schedule()) == [0, 1, 2]
        assert all(0.0 <= t <= 86400.0 for t in plan.crash_schedule().values())

    def test_build_is_deterministic(self):
        profile = FaultProfile(memserver_crash_prob=0.5)
        plans = [
            FaultPlan.build(profile, list(range(10)), 86400.0,
                            RngStreams(7).get("faults.plan"))
            for _ in range(2)
        ]
        assert plans[0] == plans[1]

    def test_duplicate_host_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(memserver_crashes=((1, 5.0), (1, 9.0)))

    def test_negative_crash_time_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(memserver_crashes=((1, -5.0),))

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.build(FaultProfile.light(), [0], 0.0,
                            RngStreams(0).get("faults.plan"))


class TestFaultInjector:
    def test_null_profile_never_draws(self):
        streams = RngStreams(3)
        injector = FaultInjector(FaultProfile.none(), streams)
        states = [streams.get(name).getstate() for name in
                  ("faults.migration", "faults.wake", "faults.pages")]
        assert injector.migration_abort() is None
        assert injector.wake_outcome() is CLEAN_WAKE
        assert injector.page_timeouts() == 0
        assert states == [streams.get(name).getstate() for name in
                          ("faults.migration", "faults.wake", "faults.pages")]

    def test_certain_abort_yields_progress_in_window(self):
        profile = FaultProfile(
            migration_abort_prob=1.0,
            abort_progress_min=0.2, abort_progress_max=0.4,
        )
        injector = FaultInjector(profile, RngStreams(4))
        for _ in range(50):
            fraction = injector.migration_abort()
            assert fraction is not None
            assert 0.2 <= fraction <= 0.4

    def test_certain_wake_failure_always_gives_up_at_cap(self):
        profile = FaultProfile(wake_failure_prob=1.0, wake_retry_cap=2)
        injector = FaultInjector(profile, RngStreams(5))
        outcome = injector.wake_outcome()
        assert outcome.gave_up
        assert outcome.failed_attempts == 3  # initial + 2 retries

    def test_wake_failures_bounded_without_giving_up(self):
        profile = FaultProfile(wake_failure_prob=0.5, wake_retry_cap=3)
        injector = FaultInjector(profile, RngStreams(6))
        for _ in range(200):
            outcome = injector.wake_outcome()
            if outcome.gave_up:
                assert outcome.failed_attempts == 4
            else:
                assert 0 <= outcome.failed_attempts <= 3

    def test_page_timeouts_capped(self):
        profile = FaultProfile(page_timeout_prob=1.0,
                               page_timeout_retries_max=3)
        injector = FaultInjector(profile, RngStreams(7))
        assert injector.page_timeouts() == 3

    def test_streams_are_independent_per_fault_class(self):
        """Draws on one class never perturb another class's sequence."""
        profile = FaultProfile.heavy()
        solo = FaultInjector(profile, RngStreams(8))
        solo_wakes = [solo.wake_outcome() for _ in range(20)]
        mixed = FaultInjector(profile, RngStreams(8))
        mixed_wakes = []
        for _ in range(20):
            mixed.migration_abort()
            mixed.page_timeouts()
            mixed_wakes.append(mixed.wake_outcome())
        assert solo_wakes == mixed_wakes


class TestHostFaultSupport:
    def make_host(self):
        return Host(0, HostRole.COMPUTE, 1024.0)

    def test_fail_resume_round_trip(self):
        host = self.make_host()
        host.begin_suspend()
        host.complete_suspend()
        host.begin_resume()
        host.fail_resume()
        assert host.power_state is PowerState.SLEEPING
        host.begin_resume()
        host.complete_resume()
        assert host.is_powered

    def test_fail_resume_illegal_when_powered(self):
        with pytest.raises(PowerStateError):
            self.make_host().fail_resume()

    def test_memory_server_failure_flags(self):
        host = self.make_host()
        assert not host.memory_server_failed
        host.fail_memory_server()
        assert host.memory_server_failed
        host.repair_memory_server()
        host.repair_memory_server()  # idempotent
        assert not host.memory_server_failed

    def test_cannot_fail_absent_memory_server(self):
        host = Host(1, HostRole.CONSOLIDATION, 1024.0,
                    memory_server_enabled=False)
        with pytest.raises(PowerStateError):
            host.fail_memory_server()


class TestMemoryServerTimeouts:
    def make_server(self):
        server = MemoryServer(host_id=0, store=PageStore())
        server.store.upload(1, {0: bytes(range(256)) * 16})
        server.start_serving()
        return server

    def test_failed_server_times_out(self):
        server = self.make_server()
        server.fail()
        with pytest.raises(PageFetchTimeout):
            server.serve_page(1, 0)
        server.repair()
        server.serve_page(1, 0)
        assert server.requests_served == 1

    def test_retry_serving_counts_injected_timeouts(self):
        server = self.make_server()
        profile = FaultProfile(page_timeout_prob=1.0,
                               page_timeout_retries_max=2)
        injector = FaultInjector(profile, RngStreams(9))
        server.serve_page_with_retries(1, 0, injector)
        assert server.requests_timed_out == 2
        assert server.requests_served == 1

    def test_retry_serving_without_injector_is_clean(self):
        server = self.make_server()
        server.serve_page_with_retries(1, 0)
        assert server.requests_timed_out == 0

    def test_timeout_latency_adds_windows(self):
        server = self.make_server()
        base = server.service.fetch_time_s(10)
        assert server.fetch_time_with_timeouts_s(10, 2, 1.5) == pytest.approx(
            base + 3.0
        )
        with pytest.raises(ConfigError):
            server.fetch_time_with_timeouts_s(10, -1)


class TestEnergyReportFaultFields:
    def test_defaults_are_zero_and_str_is_unchanged(self):
        report = EnergyReport(managed_joules=100.0, baseline_joules=200.0)
        assert report.fault_events == 0
        assert "faults" not in str(report)

    def test_str_appends_fault_summary_when_nonzero(self):
        report = EnergyReport(
            managed_joules=100.0, baseline_joules=200.0,
            fault_events=5, fault_retries=3, fault_rollbacks=2,
        )
        assert "faults=5 retries=3 rollbacks=2" in str(report)

    def test_negative_counters_rejected(self):
        with pytest.raises(ConfigError):
            EnergyReport(managed_joules=1.0, baseline_joules=2.0,
                         fault_events=-1)


class TestConfigIntegration:
    def test_default_config_has_null_profile(self):
        assert FarmConfig().faults.is_null

    def test_faulty_run_reports_nonzero_counters(self):
        config = FarmConfig(
            home_hosts=4, consolidation_hosts=2, vms_per_host=4,
            faults=FaultProfile.heavy(),
        )
        result = simulate_day(config, DEFAULT_POLICY, DayType.WEEKDAY, seed=3)
        assert result.faults.total_events > 0
        assert result.energy.fault_events == result.faults.total_events
        assert result.energy.fault_retries == result.faults.total_retries
        assert result.energy.fault_rollbacks == result.faults.total_rollbacks

    def test_faulty_run_is_deterministic(self):
        config = FarmConfig(
            home_hosts=4, consolidation_hosts=2, vms_per_host=4,
            faults=FaultProfile.heavy(),
        )
        first = simulate_day(config, DEFAULT_POLICY, DayType.WEEKDAY, seed=4)
        second = simulate_day(config, DEFAULT_POLICY, DayType.WEEKDAY, seed=4)
        assert first.faults == second.faults
        assert first.savings_fraction == second.savings_fraction
        assert first.delays == second.delays
