"""Control-plane error paths: bad requests, stray messages, bad wiring.

The happy-path protocol flows live in ``test_deploy_end_to_end.py``;
these tests pin down what the manager does when the bus hands it
garbage — every branch must either Nack back to the sender or ignore
the message, never corrupt the inventory or crash the daemon.
"""

import pytest

from repro.deploy import Deployment, VmConfigFile
from repro.deploy.bus import MessageBus
from repro.deploy.manager import MANAGER_NAME, ClusterManagerDaemon
from repro.deploy.messages import Ack, Nack
from repro.errors import ConfigError
from repro.simulator.engine import Simulator


def make_deployment(**kwargs):
    defaults = dict(home_hosts=2, consolidation_hosts=1, vms_per_host_hint=2)
    defaults.update(kwargs)
    return Deployment(**defaults)


class TestInventory:
    def test_unknown_vm_rejected(self):
        deployment = make_deployment()
        with pytest.raises(ConfigError, match="no record of VM 4242"):
            deployment.manager.inventory.vm(4242)

    def test_known_vm_resolves_after_creation(self):
        deployment = make_deployment()
        deployment.create_vm(
            VmConfigFile(vmid=1001, disk_image="/nfs/disks/1001.img")
        )
        deployment.run_for(1.0)
        assert deployment.manager.inventory.vm(1001).vm_id == 1001


class TestManagerMessageHandling:
    def test_unknown_message_type_nacked(self):
        deployment = make_deployment()
        deployment.client.endpoint.send(MANAGER_NAME, "not a protocol frame")
        deployment.run_for(1.0)
        assert [nack.request for nack in deployment.client.nacks] == [
            "unknown"
        ]

    def test_nack_to_manager_is_absorbed(self):
        deployment = make_deployment()
        deployment.client.endpoint.send(
            MANAGER_NAME, Nack("create", "simulated agent failure")
        )
        deployment.run_for(1.0)
        # No reply, no crash: failures are visible on the bus log only.
        assert deployment.client.nacks == []
        assert deployment.client.acks == []

    def test_stray_migration_ack_ignored(self):
        deployment = make_deployment()
        deployment.client.endpoint.send(
            MANAGER_NAME, Ack("migrated", payload=(999, 0))
        )
        deployment.run_for(1.0)
        assert deployment.manager._pending_suspend == {}
        deployment.check_consistency()


class TestDaemonWiring:
    def test_non_dense_host_ids_rejected(self):
        sim = Simulator()
        bus = MessageBus(sim)
        with pytest.raises(ConfigError, match="host ids must be dense"):
            ClusterManagerDaemon(
                sim=sim,
                bus=bus,
                home_host_ids=[0, 2],
                consolidation_host_ids=[1],
                host_capacity_mib=4096.0,
                network_storage={},
            )

    def test_roles_out_of_order_rejected(self):
        sim = Simulator()
        bus = MessageBus(sim)
        with pytest.raises(ConfigError, match="homes first"):
            ClusterManagerDaemon(
                sim=sim,
                bus=bus,
                home_host_ids=[1, 2],
                consolidation_host_ids=[0],
                host_capacity_mib=4096.0,
                network_storage={},
            )
