"""Trace ensembles and user partitioning."""

import random

import pytest

from repro.errors import TraceFormatError
from repro.traces import DayType, TraceEnsemble, UserDayTrace, generate_ensemble
from repro.traces.sampler import partition_users


class TestEnsemble:
    def test_generate_ensemble_size_and_type(self):
        ensemble = generate_ensemble(50, DayType.WEEKEND, seed=0)
        assert len(ensemble) == 50
        assert all(t.day_type is DayType.WEEKEND for t in ensemble)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceEnsemble(DayType.WEEKDAY, ())

    def test_mixed_day_types_rejected(self):
        mixed = (
            UserDayTrace.all_idle(0, DayType.WEEKDAY),
            UserDayTrace.all_idle(1, DayType.WEEKEND),
        )
        with pytest.raises(TraceFormatError):
            TraceEnsemble(DayType.WEEKDAY, mixed)

    def test_concurrent_active_counts(self):
        traces = (
            UserDayTrace.all_active(0, DayType.WEEKDAY),
            UserDayTrace.all_idle(1, DayType.WEEKDAY),
            UserDayTrace.all_active(2, DayType.WEEKDAY),
        )
        ensemble = TraceEnsemble(DayType.WEEKDAY, traces)
        counts = ensemble.concurrent_active()
        assert all(count == 2 for count in counts)
        peak, _index = ensemble.peak_concurrency()
        assert peak == 2

    def test_resampled_renumbers_users(self):
        ensemble = generate_ensemble(5, DayType.WEEKDAY, seed=1)
        bigger = ensemble.resampled(20, random.Random(0))
        assert len(bigger) == 20
        assert [t.user_id for t in bigger] == list(range(20))

    def test_indexing(self):
        ensemble = generate_ensemble(5, DayType.WEEKDAY, seed=1)
        assert ensemble[2].user_id == 2


class TestPartition:
    def test_partition_sizes(self):
        ensemble = generate_ensemble(90, DayType.WEEKDAY, seed=2)
        groups = partition_users(ensemble, 30)
        assert [len(g) for g in groups] == [30, 30, 30]

    def test_partition_with_remainder(self):
        ensemble = generate_ensemble(70, DayType.WEEKDAY, seed=2)
        groups = partition_users(ensemble, 30)
        assert [len(g) for g in groups] == [30, 30, 10]

    def test_partition_rejects_bad_group_size(self):
        ensemble = generate_ensemble(10, DayType.WEEKDAY, seed=2)
        with pytest.raises(TraceFormatError):
            partition_users(ensemble, 0)

    def test_partition_preserves_order(self):
        ensemble = generate_ensemble(60, DayType.WEEKDAY, seed=2)
        groups = partition_users(ensemble, 30)
        assert groups[0][0].user_id == 0
        assert groups[1][0].user_id == 30
