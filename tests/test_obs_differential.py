"""Differential battery: tracing must never change what it observes.

Runs identical seeded farm days with no tracer, an explicit
:class:`NullTracer`, and a :class:`RecordingTracer`, and requires the
:class:`FarmResult` snapshots to be byte-identical in all three modes —
for every policy, fault-free and under a heavy fault profile.  The CLI
check requires ``simulate --trace`` to reproduce the pinned golden
stdout exactly, plus only the trailing trace line.

The observability layer earns its "zero overhead, zero interference"
claim here: a tracer has no RNG access and no clock of its own, so the
only way this battery can fail is a wiring change that made emission
reorder or consume a draw.
"""

import json

import pytest

from repro.core import policy_by_name
from repro.farm import FarmConfig, simulate_day
from repro.faults import fault_profile_by_name
from repro.obs import NullTracer, RecordingTracer, read_jsonl
from repro.traces import DayType
from tests.golden.update_goldens import (
    FARM_SHAPE,
    GOLDEN_PATH,
    POLICY_SEEDS,
    snapshot_result,
)

FAULT_PROFILES = ("none", "heavy")


def run_snapshot(policy_name, seed, profile_name, tracer):
    """JSON-normalized result snapshot of one seeded traced/untraced day."""
    config = FarmConfig(
        **FARM_SHAPE, faults=fault_profile_by_name(profile_name)
    )
    result = simulate_day(
        config,
        policy_by_name(policy_name),
        DayType.WEEKDAY,
        seed=seed,
        tracer=tracer,
    )
    return json.loads(json.dumps(snapshot_result(result), sort_keys=True))


@pytest.mark.parametrize("profile_name", FAULT_PROFILES)
@pytest.mark.parametrize("policy_name", sorted(POLICY_SEEDS))
def test_tracing_modes_are_result_identical(policy_name, profile_name):
    seed = POLICY_SEEDS[policy_name]
    untraced = run_snapshot(policy_name, seed, profile_name, tracer=None)
    null_traced = run_snapshot(
        policy_name, seed, profile_name, tracer=NullTracer()
    )
    recorder = RecordingTracer()
    recorded = run_snapshot(policy_name, seed, profile_name, tracer=recorder)
    assert null_traced == untraced
    assert recorded == untraced
    # The recording run actually observed the day it did not perturb.
    assert recorder.events
    assert recorder.open_span_count == 0


def test_recording_run_emits_fault_events_under_heavy_profile():
    recorder = RecordingTracer()
    run_snapshot("Default", POLICY_SEEDS["Default"], "heavy", recorder)
    categories = {event.category for event in recorder.events}
    assert "fault" in categories
    assert "power" in categories
    assert "migration" in categories


@pytest.mark.parametrize("policy_name", sorted(POLICY_SEEDS))
def test_cli_trace_flag_preserves_golden_stdout(tmp_path, policy_name):
    """``--trace`` appends exactly one line to the pinned golden stdout."""
    import contextlib
    import io

    from repro.cli import main

    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        pinned = json.load(handle)["policies"][policy_name]
    trace_path = tmp_path / f"{policy_name}.jsonl"
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        status = main([
            "simulate",
            "--policy", policy_name,
            "--seed", str(pinned["seed"]),
            "--home-hosts", str(FARM_SHAPE["home_hosts"]),
            "--consolidation-hosts", str(FARM_SHAPE["consolidation_hosts"]),
            "--vms-per-host", str(FARM_SHAPE["vms_per_host"]),
            "--trace", str(trace_path),
        ])
    assert status == 0
    stdout = buffer.getvalue()
    assert stdout.startswith(pinned["simulate_stdout"])
    extra = stdout[len(pinned["simulate_stdout"]):]
    assert extra.startswith("trace:") and extra.count("\n") == 1
    # The file it reports is a readable, non-trivial JSONL trace.
    events = read_jsonl(str(trace_path))
    assert len(events) > 100
    assert f"{len(events)} events" in extra
