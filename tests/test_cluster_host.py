"""Host memory accounting, served images, and the power-state machine."""

import pytest

from repro.cluster import Host, HostRole, PowerState
from repro.cluster.power import check_transition
from repro.errors import CapacityError, MigrationError, PowerStateError
from repro.vm import VirtualMachine


def make_host(capacity_mib=12_288.0, role=HostRole.COMPUTE):
    return Host(0, role, capacity_mib)


def make_vm(vm_id=1, home=0, memory=4096.0):
    return VirtualMachine(vm_id, home, memory)


class TestPowerStateMachine:
    def test_legal_cycle(self):
        for current, target in [
            (PowerState.POWERED, PowerState.SUSPENDING),
            (PowerState.SUSPENDING, PowerState.SLEEPING),
            (PowerState.SLEEPING, PowerState.RESUMING),
            (PowerState.RESUMING, PowerState.POWERED),
        ]:
            check_transition(current, target)  # must not raise

    def test_illegal_transitions(self):
        with pytest.raises(PowerStateError):
            check_transition(PowerState.POWERED, PowerState.SLEEPING)
        with pytest.raises(PowerStateError):
            check_transition(PowerState.SLEEPING, PowerState.POWERED)
        with pytest.raises(PowerStateError):
            check_transition(PowerState.SUSPENDING, PowerState.RESUMING)

    def test_transitional_flags(self):
        assert PowerState.SUSPENDING.is_transitional
        assert PowerState.RESUMING.is_transitional
        assert not PowerState.POWERED.is_transitional
        assert PowerState.POWERED.can_run_vms
        assert not PowerState.SLEEPING.can_run_vms


class TestHostPowerCycle:
    def test_full_cycle(self):
        host = make_host()
        host.begin_suspend()
        assert host.power_state is PowerState.SUSPENDING
        host.complete_suspend()
        assert host.is_sleeping
        host.begin_resume()
        host.complete_resume()
        assert host.is_powered

    def test_suspend_blocked_by_running_vms(self):
        host = make_host()
        host.attach(make_vm())
        with pytest.raises(PowerStateError):
            host.begin_suspend()

    def test_served_images_do_not_block_suspend(self):
        # The whole point of the memory server (§3.3).
        host = make_host()
        host.add_served_image(7)
        host.begin_suspend()
        host.complete_suspend()
        assert host.is_sleeping
        assert host.served_image_count == 1


class TestMemoryAccounting:
    def test_attach_reserves_resident_size(self):
        host = make_host()
        host.attach(make_vm(memory=4096.0))
        assert host.used_mib == 4096.0
        assert host.free_mib == 8192.0

    def test_attach_rejects_overflow(self):
        host = make_host(capacity_mib=4096.0)
        host.attach(make_vm(1))
        with pytest.raises(CapacityError):
            host.attach(make_vm(2))

    def test_attach_rejects_duplicates(self):
        host = make_host()
        vm = make_vm()
        host.attach(vm)
        with pytest.raises(MigrationError):
            host.attach(vm)

    def test_detach_releases_memory(self):
        host = make_host()
        vm = make_vm()
        host.attach(vm)
        host.detach(vm.vm_id)
        assert host.used_mib == 0.0
        assert host.vm_count == 0

    def test_detach_unknown_vm(self):
        with pytest.raises(MigrationError):
            make_host().detach(99)

    def test_partial_vm_occupies_only_working_set(self):
        host = make_host()
        vm = make_vm(home=5)  # homed elsewhere so it can be partial here
        vm.become_partial(destination_id=0, working_set_mib=160.0)
        host.attach(vm)
        assert host.used_mib == pytest.approx(160.0)
        assert host.partial_vm_count == 1
        assert host.full_vm_count == 0
        assert host.partial_resident_fraction == pytest.approx(160.0 / 4096.0)

    def test_can_fit_tolerates_float_noise(self):
        host = make_host(capacity_mib=100.0)
        for _ in range(10):
            vm = make_vm(vm_id=_ + 1, home=5, memory=4096.0)
            vm.become_partial(0, 10.0)
            host.attach(vm)
        assert host.can_fit(0.0)

    def test_recompute_matches_incremental(self):
        host = make_host()
        full = make_vm(1)
        partial = make_vm(2, home=5)
        partial.become_partial(0, 200.0)
        host.attach(full)
        host.attach(partial)
        assert host.recompute_used_mib() == pytest.approx(host.used_mib)


class TestInPlaceTransitions:
    def _host_with_partial(self, capacity=12_288.0, ws=160.0):
        host = make_host(capacity)
        vm = make_vm(1, home=5)
        vm.become_partial(0, ws)
        host.attach(vm)
        return host, vm

    def test_convert_in_place_reserves_full_allocation(self):
        host, vm = self._host_with_partial()
        host.convert_vm_full_in_place(vm.vm_id)
        assert host.used_mib == pytest.approx(4096.0)
        assert host.full_vm_count == 1
        assert host.partial_resident_fraction == 0.0
        assert vm.home_id == 0  # the consolidation host is the new home

    def test_convert_in_place_requires_capacity(self):
        host, vm = self._host_with_partial(capacity=1024.0)
        with pytest.raises(CapacityError):
            host.convert_vm_full_in_place(vm.vm_id)
        # State must be untouched on failure.
        assert vm.is_partial
        assert host.used_mib == pytest.approx(160.0)

    def test_convert_rejects_full_vms(self):
        host = make_host()
        vm = make_vm(1)
        host.attach(vm)
        with pytest.raises(MigrationError):
            host.convert_vm_full_in_place(vm.vm_id)

    def test_grow_partial_vm(self):
        host, vm = self._host_with_partial()
        host.grow_partial_vm(vm.vm_id, 40.0)
        assert vm.working_set_mib == pytest.approx(200.0)
        assert host.used_mib == pytest.approx(200.0)
        assert host.partial_resident_fraction == pytest.approx(200.0 / 4096.0)

    def test_grow_respects_capacity(self):
        host, vm = self._host_with_partial(capacity=200.0)
        with pytest.raises(CapacityError):
            host.grow_partial_vm(vm.vm_id, 100.0)

    def test_grow_caps_at_allocation(self):
        host, vm = self._host_with_partial(capacity=8192.0, ws=4000.0)
        host.grow_partial_vm(vm.vm_id, 500.0)
        assert vm.working_set_mib == pytest.approx(4096.0)
        assert host.used_mib == pytest.approx(4096.0)


class TestServedImages:
    def test_add_remove(self):
        host = make_host()
        host.add_served_image(1)
        host.add_served_image(2)
        assert host.served_image_ids == {1, 2}
        host.remove_served_image(1)
        assert host.served_image_ids == {2}

    def test_remove_is_idempotent(self):
        host = make_host()
        host.remove_served_image(42)  # no error
        assert host.served_image_count == 0
