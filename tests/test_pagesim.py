"""Idle page-access models and sleep-opportunity analysis (Fig. 1-2)."""

import random

import pytest

from repro.errors import ConfigError
from repro.pagesim import (
    DATABASE_PROFILE,
    DESKTOP_PROFILE,
    IdleAccessModel,
    SleepPolicy,
    VmProfile,
    WEB_PROFILE,
    analyze_sleep,
    mean_interarrival_s,
    merge_request_streams,
)


class TestFigure1Footprints:
    def test_one_hour_unique_footprints_match_paper(self):
        assert DESKTOP_PROFILE.unique_mib(3600.0) == pytest.approx(188.2, rel=0.05)
        assert WEB_PROFILE.unique_mib(3600.0) == pytest.approx(37.6, rel=0.05)
        assert DATABASE_PROFILE.unique_mib(3600.0) == pytest.approx(30.6, rel=0.05)

    def test_footprints_are_tiny_versus_4gib(self):
        # "less than 5% of their nominal memory allocation" (§2).
        for profile in (DESKTOP_PROFILE, WEB_PROFILE, DATABASE_PROFILE):
            assert profile.unique_mib(3600.0) < 0.05 * 4096.0

    def test_curve_is_monotone(self):
        previous = -1.0
        for minute in range(0, 61, 5):
            value = DESKTOP_PROFILE.unique_mib(minute * 60.0)
            assert value > previous
            previous = value

    def test_desktop_dwarfs_servers(self):
        # The §5.6 generality argument rests on this ordering.
        assert (
            DESKTOP_PROFILE.unique_mib(3600.0)
            > 3 * WEB_PROFILE.unique_mib(3600.0)
        )

    def test_unique_curve_sampling(self):
        model = IdleAccessModel(WEB_PROFILE, random.Random(0))
        curve = model.unique_curve(3600.0, step_s=600.0)
        assert len(curve) == 7
        assert curve[0] == (0.0, 0.0)

    def test_profile_validation(self):
        with pytest.raises(ConfigError):
            VmProfile("bad", -1.0, 60.0, 0.0, 10.0, 1.0)
        with pytest.raises(ConfigError):
            VmProfile("bad", 1.0, 0.0, 0.0, 10.0, 1.0)
        with pytest.raises(ConfigError):
            DESKTOP_PROFILE.unique_mib(-1.0)


class TestFigure2RequestStreams:
    def test_single_database_vm_gap_is_about_3_9_minutes(self):
        model = IdleAccessModel(DATABASE_PROFILE, random.Random(13))
        times = model.request_times(12 * 3600.0)
        assert mean_interarrival_s(times) == pytest.approx(234.0, rel=0.15)

    def test_ten_vm_aggregate_gap_is_about_5_8_seconds(self):
        rng = random.Random(13)
        streams = [
            IdleAccessModel(DATABASE_PROFILE, rng).request_times(6 * 3600.0)
            for _ in range(5)
        ] + [
            IdleAccessModel(WEB_PROFILE, rng).request_times(6 * 3600.0)
            for _ in range(5)
        ]
        merged = merge_request_streams(streams)
        assert mean_interarrival_s(merged) == pytest.approx(5.8, rel=0.15)

    def test_merge_sorts(self):
        merged = merge_request_streams([[3.0, 1.0], [2.0]])
        assert merged == [1.0, 2.0, 3.0]

    def test_request_times_within_horizon(self):
        model = IdleAccessModel(WEB_PROFILE, random.Random(1))
        times = model.request_times(1000.0)
        assert all(0.0 <= t < 1000.0 for t in times)

    def test_mean_interarrival_needs_two_points(self):
        with pytest.raises(ConfigError):
            mean_interarrival_s([1.0])


class TestSleepAnalysis:
    def test_no_requests_sleeps_almost_everything(self):
        analysis = analyze_sleep([], horizon_s=3600.0)
        assert analysis.sleep_fraction > 0.99
        assert analysis.transitions == 2

    def test_single_vm_sleeps_most_of_the_time(self):
        model = IdleAccessModel(DATABASE_PROFILE, random.Random(2))
        times = model.request_times(6 * 3600.0)
        analysis = analyze_sleep(times, 6 * 3600.0)
        assert analysis.sleep_fraction > 0.9
        assert analysis.energy_saving_fraction > 0.7

    def test_ten_vms_collapse_the_savings(self):
        rng = random.Random(3)
        streams = [
            IdleAccessModel(DATABASE_PROFILE, rng).request_times(6 * 3600.0)
            for _ in range(5)
        ] + [
            IdleAccessModel(WEB_PROFILE, rng).request_times(6 * 3600.0)
            for _ in range(5)
        ]
        analysis = analyze_sleep(merge_request_streams(streams), 6 * 3600.0)
        # The §2 motivation: frequent wake-ups erase nearly all benefit.
        assert analysis.energy_saving_fraction < 0.25

    def test_gaps_below_round_trip_give_no_sleep(self):
        times = [float(t) for t in range(0, 3600, 5)]  # 5 s gaps < 6.4 s
        analysis = analyze_sleep(times, 3600.0)
        assert analysis.sleep_s == 0.0
        assert analysis.energy_saving_fraction == pytest.approx(0.0)

    def test_minimum_useful_gap(self):
        policy = SleepPolicy(linger_s=1.0)
        assert policy.minimum_useful_gap_s == pytest.approx(1.0 + 3.1 + 2.3)

    def test_sleep_time_excludes_transition_overheads(self):
        analysis = analyze_sleep([1800.0], 3600.0)
        overhead = SleepPolicy().minimum_useful_gap_s
        assert analysis.sleep_s == pytest.approx(3600.0 - 2 * overhead)

    def test_horizon_validation(self):
        with pytest.raises(ConfigError):
            analyze_sleep([], horizon_s=0.0)
