"""Control plane: VM configuration files and the message bus."""

import pytest

from repro.deploy import MessageBus, VmConfigFile
from repro.errors import ConfigError, SimulationError
from repro.simulator import Simulator


class TestVmConfigFile:
    def test_valid_config(self):
        config = VmConfigFile(vmid=42, disk_image="/nfs/disks/42.img")
        assert config.vmid_str == "0042"
        assert config.memory_mib == 4096.0
        assert config.vcpus == 1
        assert "network" in config.devices

    def test_vmid_is_four_digits(self):
        with pytest.raises(ConfigError):
            VmConfigFile(vmid=10000, disk_image="x.img")
        with pytest.raises(ConfigError):
            VmConfigFile(vmid=-1, disk_image="x.img")

    def test_requires_disk_image(self):
        with pytest.raises(ConfigError):
            VmConfigFile(vmid=1, disk_image="")

    def test_positive_resources(self):
        with pytest.raises(ConfigError):
            VmConfigFile(vmid=1, disk_image="x.img", memory_mib=0.0)
        with pytest.raises(ConfigError):
            VmConfigFile(vmid=1, disk_image="x.img", vcpus=0)

    def test_file_roundtrip(self, tmp_path):
        config = VmConfigFile(
            vmid=7, disk_image="/nfs/disks/7.img", memory_mib=2048.0,
            vcpus=2, devices={"network": "br1", "vfb": "vnc"},
        )
        path = tmp_path / "0007.cfg"
        config.save(path)
        loaded = VmConfigFile.load(path)
        assert loaded == config

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.cfg"
        path.write_text("{broken")
        with pytest.raises(ConfigError):
            VmConfigFile.load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            VmConfigFile.load(tmp_path / "nope.cfg")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            VmConfigFile.from_dict(
                {"vmid": 1, "disk_image": "x", "color": "red"}
            )

    def test_from_dict_requires_vmid(self):
        with pytest.raises(ConfigError):
            VmConfigFile.from_dict({"disk_image": "x"})


class TestMessageBus:
    def test_delivery_with_latency(self):
        sim = Simulator()
        bus = MessageBus(sim, latency_s=0.5)
        received = []
        bus.register("b", lambda source, msg: received.append((source, msg)))
        a = bus.register("a", lambda source, msg: None)
        a.send("b", "hello")
        assert received == []  # not yet delivered
        sim.advance(1.0)
        assert received == [("a", "hello")]
        assert sim.now == 1.0

    def test_unknown_destination(self):
        sim = Simulator()
        bus = MessageBus(sim)
        a = bus.register("a", lambda s, m: None)
        with pytest.raises(SimulationError):
            a.send("ghost", "boo")

    def test_duplicate_registration(self):
        bus = MessageBus(Simulator())
        bus.register("a", lambda s, m: None)
        with pytest.raises(ConfigError):
            bus.register("a", lambda s, m: None)

    def test_log_queries(self):
        sim = Simulator()
        bus = MessageBus(sim)
        bus.register("b", lambda s, m: None)
        a = bus.register("a", lambda s, m: None)
        a.send("b", 1)
        a.send("b", "two")
        sim.run()
        assert bus.messages_to("b") == [1, "two"]
        assert bus.messages_of_type(str) == ["two"]

    def test_ordering_preserved_for_same_destination(self):
        sim = Simulator()
        bus = MessageBus(sim)
        received = []
        bus.register("b", lambda s, m: received.append(m))
        a = bus.register("a", lambda s, m: None)
        for value in range(5):
            a.send("b", value)
        sim.run()
        assert received == [0, 1, 2, 3, 4]

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            MessageBus(Simulator(), latency_s=-1.0)
