"""The from-scratch LZ77 codec: round-trips, ratios, malformed streams."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CompressionError
from repro.memserver import Lz77Codec, compress, decompress
from repro.memserver.pages import (
    MEASURED_COMPRESSION_RATIO,
    PAGE_BYTES,
    PageKind,
    SyntheticPageFactory,
)


class TestRoundTrip:
    def test_empty(self):
        assert decompress(compress(b"")) == b""

    def test_single_byte(self):
        assert decompress(compress(b"x")) == b"x"

    def test_text(self):
        data = b"the quick brown fox jumps over the lazy dog " * 50
        assert decompress(compress(data)) == data

    def test_zero_page(self):
        page = bytes(PAGE_BYTES)
        blob = compress(page)
        assert decompress(blob) == page
        assert len(blob) < PAGE_BYTES * 0.05

    def test_random_data_roundtrips_despite_expansion(self):
        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(PAGE_BYTES))
        blob = compress(data)
        assert decompress(blob) == data
        # Incompressible data pays bounded token overhead.
        assert len(blob) <= len(data) * 1.05

    def test_overlapping_match_rle(self):
        data = b"a" * 1000
        blob = compress(data)
        assert decompress(blob) == data
        assert len(blob) < 40

    def test_all_synthetic_page_kinds(self):
        factory = SyntheticPageFactory(seed=1)
        for kind in PageKind:
            page = factory.make(kind)
            assert decompress(compress(page)) == page

    @given(data=st.binary(max_size=2048))
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_property(self, data):
        assert decompress(compress(data)) == data

    @given(
        word=st.binary(min_size=1, max_size=16),
        repeats=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_repetitive_input_compresses(self, word, repeats):
        data = word * repeats
        blob = compress(data)
        assert decompress(blob) == data
        if len(data) > 256:
            assert len(blob) < len(data)


class TestChainLimit:
    def test_higher_chain_limit_never_much_worse(self):
        factory = SyntheticPageFactory(seed=2)
        page = factory.make(PageKind.TEXT)
        fast = Lz77Codec(chain_limit=2).compress(page)
        thorough = Lz77Codec(chain_limit=64).compress(page)
        assert len(thorough) <= len(fast) * 1.02
        assert Lz77Codec.decompress(thorough) == page

    def test_chain_limit_validation(self):
        with pytest.raises(CompressionError):
            Lz77Codec(chain_limit=0)


class TestMeasuredRatios:
    """The statistical image models rely on these per-class constants;
    this pins the real codec to them."""

    @pytest.mark.parametrize("kind,tolerance", [
        (PageKind.ZERO, 0.005),
        (PageKind.TEXT, 0.05),
        (PageKind.CODE, 0.08),
        (PageKind.RANDOM, 0.01),
    ])
    def test_ratio_matches_constant(self, kind, tolerance):
        factory = SyntheticPageFactory(seed=3)
        raw = 0
        packed = 0
        for page in factory.make_many(kind, 12):
            raw += len(page)
            packed += len(compress(page))
        measured = packed / raw
        assert measured == pytest.approx(
            MEASURED_COMPRESSION_RATIO[kind], abs=tolerance
        )


class TestMalformedStreams:
    def test_truncated_literal_run(self):
        with pytest.raises(CompressionError):
            decompress(bytes([0x05, 0x61]))  # claims 6 literals, has 1

    def test_truncated_match_token(self):
        with pytest.raises(CompressionError):
            decompress(bytes([0x80, 0x01]))  # missing distance byte

    def test_zero_distance_rejected(self):
        with pytest.raises(CompressionError):
            decompress(bytes([0x00, 0x61, 0x80, 0x00, 0x00]))

    def test_distance_beyond_output_rejected(self):
        with pytest.raises(CompressionError):
            decompress(bytes([0x00, 0x61, 0x80, 0x10, 0x00]))
