"""FarmResult derived metrics and the control-plane message types."""

import pytest

from repro.deploy.messages import (
    CreateVmCall,
    MigrationOrder,
    MigrationType,
    StatsReport,
)
from repro.energy import EnergyReport
from repro.errors import ConfigError
from repro.farm.metrics import DelaySample, FarmResult


def make_result(**kwargs):
    defaults = dict(
        policy_name="FulltoPartial", day_type="weekday", seed=0,
        horizon_s=86400.0,
    )
    defaults.update(kwargs)
    return FarmResult(**defaults)


class TestFarmResultDerived:
    def test_savings_requires_energy(self):
        with pytest.raises(ConfigError):
            _ = make_result().savings_fraction

    def test_savings_delegates_to_report(self):
        result = make_result()
        result.energy = EnergyReport(managed_joules=60.0, baseline_joules=100.0)
        assert result.savings_fraction == pytest.approx(0.4)

    def test_peak_and_min_on_empty_series(self):
        result = make_result()
        assert result.peak_active_vms == 0
        assert result.min_powered_hosts == 0

    def test_peak_and_min_with_data(self):
        result = make_result()
        result.active_vms = [3, 9, 1]
        result.powered_hosts = [5, 2, 7]
        assert result.peak_active_vms == 9
        assert result.min_powered_hosts == 2

    def test_zero_delay_fraction_empty_is_one(self):
        assert make_result().zero_delay_fraction() == 1.0

    def test_zero_delay_fraction_counts_exact_zeros(self):
        result = make_result()
        result.delays = [
            DelaySample(0.0, 1, 0.0, "already_full"),
            DelaySample(1.0, 2, 3.7, "convert_in_place"),
        ]
        assert result.zero_delay_fraction() == pytest.approx(0.5)
        assert result.delay_values() == [0.0, 3.7]

    def test_mean_home_sleep_fraction(self):
        result = make_result()
        result.home_sleep_s = {0: 43200.0, 1: 0.0}
        assert result.mean_home_sleep_fraction() == pytest.approx(0.25)

    def test_mean_home_sleep_empty(self):
        assert make_result().mean_home_sleep_fraction() == 0.0


class TestMessageValidation:
    def test_create_call_needs_path(self):
        with pytest.raises(ConfigError):
            CreateVmCall("")

    def test_partial_order_needs_working_set(self):
        with pytest.raises(ConfigError):
            MigrationOrder(1, MigrationType.PARTIAL, destination=2)
        MigrationOrder(1, MigrationType.PARTIAL, 2, working_set_mib=100.0)

    def test_full_order_without_working_set(self):
        order = MigrationOrder(1, MigrationType.FULL, destination=2)
        assert order.working_set_mib is None

    def test_stats_report_utilization(self):
        report = StatsReport(
            host_id=0, time_s=0.0, memory_used_mib=50.0,
            memory_capacity_mib=200.0, cpu_utilization=0.1,
            io_utilization=0.0,
        )
        assert report.memory_utilization == pytest.approx(0.25)

    def test_stats_report_validation(self):
        with pytest.raises(ConfigError):
            StatsReport(0, 0.0, 1.0, 0.0, 0.1, 0.0)
        with pytest.raises(ConfigError):
            StatsReport(0, 0.0, 1.0, 10.0, 1.5, 0.0)
