"""Synthetic trace generator: structure and configuration."""

import random

import pytest

from repro.errors import ConfigError
from repro.traces import DayType, SyntheticTraceGenerator, TraceGeneratorConfig
from repro.traces.generator import BurstModel


class TestBurstModel:
    def test_duty_cycle(self):
        model = BurstModel(active_mean_intervals=2.0, idle_mean_intervals=2.0)
        assert model.duty_cycle == pytest.approx(0.5)

    def test_run_lengths_at_least_one(self):
        model = BurstModel(1.5, 1.5)
        rng = random.Random(0)
        assert all(model.sample_run(True, rng) >= 1 for _ in range(200))

    def test_run_length_mean_close_to_target(self):
        model = BurstModel(3.0, 2.0)
        rng = random.Random(1)
        samples = [model.sample_run(True, rng) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(3.0, rel=0.1)

    def test_sub_interval_means_rejected(self):
        with pytest.raises(ConfigError):
            BurstModel(0.5, 2.0)


class TestConfigValidation:
    def test_probability_ranges(self):
        with pytest.raises(ConfigError):
            TraceGeneratorConfig(weekday_absence_probability=1.5)

    def test_arrival_before_departure(self):
        with pytest.raises(ConfigError):
            TraceGeneratorConfig(arrival_mean_h=19.0, departure_mean_h=9.0)

    def test_weekend_sessions_positive(self):
        with pytest.raises(ConfigError):
            TraceGeneratorConfig(weekend_max_sessions=0)

    def test_negative_background_factor_rejected(self):
        with pytest.raises(ConfigError):
            TraceGeneratorConfig(background_night_factor=-0.1)

    def test_background_weight_profile(self):
        config = TraceGeneratorConfig()
        assert config.background_weight(20.0) == config.background_evening_factor
        assert config.background_weight(2.0) == config.background_night_factor
        assert config.background_weight(6.0) == config.background_predawn_factor
        assert config.background_weight(12.0) == 1.0


class TestGeneratedStructure:
    def setup_method(self):
        self.generator = SyntheticTraceGenerator(rng=random.Random(11))

    def test_day_type_is_stamped(self):
        trace = self.generator.generate(0, DayType.WEEKEND)
        assert trace.day_type is DayType.WEEKEND

    def test_user_ids_consecutive(self):
        traces = self.generator.generate_many(5, DayType.WEEKDAY, first_user_id=10)
        assert [t.user_id for t in traces] == [10, 11, 12, 13, 14]

    def test_weekday_busier_than_weekend_on_average(self):
        weekdays = self.generator.generate_many(200, DayType.WEEKDAY)
        weekends = self.generator.generate_many(200, DayType.WEEKEND)
        weekday_mean = sum(t.active_fraction for t in weekdays) / 200
        weekend_mean = sum(t.active_fraction for t in weekends) / 200
        assert weekday_mean > 2 * weekend_mean

    def test_weekday_activity_concentrated_in_work_hours(self):
        traces = self.generator.generate_many(300, DayType.WEEKDAY)
        work = sum(
            sum(t.intervals[9 * 12 : 18 * 12]) for t in traces
        )
        night = sum(
            sum(t.intervals[0 : 6 * 12]) for t in traces
        )
        assert work > 5 * night

    def test_deterministic_given_seed(self):
        a = SyntheticTraceGenerator(rng=random.Random(3)).generate_many(
            10, DayType.WEEKDAY
        )
        b = SyntheticTraceGenerator(rng=random.Random(3)).generate_many(
            10, DayType.WEEKDAY
        )
        assert [t.intervals for t in a] == [t.intervals for t in b]

    def test_absent_users_exist_on_weekdays(self):
        # With 12% absence, a good chunk of 300 users should show days
        # with essentially no core-hours presence (background bursts may
        # still dot the day).
        traces = self.generator.generate_many(300, DayType.WEEKDAY)
        quiet = sum(
            1 for t in traces if sum(t.intervals[10 * 12 : 16 * 12]) <= 4
        )
        assert quiet >= 15

    def test_background_activity_can_touch_the_night(self):
        traces = self.generator.generate_many(500, DayType.WEEKDAY)
        night_hits = sum(
            1 for t in traces if any(t.intervals[0 : 5 * 12])
        )
        assert night_hits > 50
