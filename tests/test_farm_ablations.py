"""Ablation machinery: wake-to-serve mode, working-set growth, compaction."""

import pytest

from repro.core import FULL_TO_PARTIAL
from repro.energy import EnergyAccountant
from repro.errors import ConfigError, SimulationError
from repro.farm import FarmConfig, FarmSimulation, simulate_day
from repro.traces import DayType, TraceEnsemble, UserDayTrace
from repro.units import INTERVALS_PER_DAY
from repro.vm import WorkingSetSampler


def idle_ensemble(users):
    traces = tuple(
        UserDayTrace.all_idle(user_id, DayType.WEEKDAY)
        for user_id in range(users)
    )
    return TraceEnsemble(DayType.WEEKDAY, traces)


class TestAccountantLumpEnergy:
    def test_add_energy_accumulates(self):
        meter = EnergyAccountant()
        meter.add_energy("tax", 100.0)
        meter.add_energy("tax", 50.0)
        meter.finish(now=0.0)
        assert meter.energy_joules("tax") == pytest.approx(150.0)

    def test_add_energy_composes_with_power_segments(self):
        meter = EnergyAccountant()
        meter.set_power("host", 10.0, now=0.0)
        meter.add_energy("host", 500.0)
        meter.finish(now=100.0)
        assert meter.energy_joules("host") == pytest.approx(1500.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(SimulationError):
            EnergyAccountant().add_energy("tax", -1.0)


class TestMemoryServerAblation:
    def _run(self, present, gap=120.0, vms_per_host=25, home_hosts=4):
        config = FarmConfig(
            home_hosts=home_hosts, consolidation_hosts=1,
            vms_per_host=vms_per_host,
            memory_server_present=present,
            idle_page_request_gap_s=gap,
        )
        return simulate_day(
            config, FULL_TO_PARTIAL, DayType.WEEKDAY, seed=5
        )

    def test_removing_the_memory_server_costs_energy_at_density(self):
        # At the paper's per-host densities, wake frequency is high and
        # the memory server is decisively worth its 42.2 W.
        with_ms = self._run(present=True)
        without = self._run(present=False, gap=60.0)
        assert without.savings_fraction < with_ms.savings_fraction
        assert without.counters.page_request_wake_cycles > 0
        assert with_ms.counters.page_request_wake_cycles == 0

    def test_crossover_at_low_density(self):
        # The §2 argument cuts both ways: with very few VMs per home and
        # sparse requests, occasional wake-ups cost less than powering
        # the 42.2 W prototype memory server around the clock — exactly
        # why Jettison's wake-the-desktop design was fine for single-VM
        # desktops and fails for consolidated servers.
        with_ms = self._run(present=True, vms_per_host=2, home_hosts=12)
        without = self._run(
            present=False, gap=600.0, vms_per_host=2, home_hosts=12
        )
        assert without.savings_fraction > with_ms.savings_fraction

    def test_chattier_vms_cost_more(self):
        sparse = self._run(present=False, gap=600.0)
        chatty = self._run(present=False, gap=30.0)
        assert chatty.savings_fraction < sparse.savings_fraction

    def test_absent_memory_server_draws_no_standby_power(self):
        # With no VMs consolidated... all idle: homes sleep.  Sleeping
        # home power must be bare S3 (plus the wake tax), so the no-MS
        # run with infinite-gap requests must beat the with-MS run.
        config_base = dict(
            home_hosts=6, consolidation_hosts=1, vms_per_host=4,
            idle_page_request_gap_s=1e9,
        )
        ensemble = idle_ensemble(24)
        with_ms = FarmSimulation(
            FarmConfig(memory_server_present=True, **config_base),
            FULL_TO_PARTIAL, ensemble, seed=1,
        ).run()
        without = FarmSimulation(
            FarmConfig(memory_server_present=False, **config_base),
            FULL_TO_PARTIAL, ensemble, seed=1,
        ).run()
        assert without.savings_fraction > with_ms.savings_fraction

    def test_gap_validation(self):
        with pytest.raises(ConfigError):
            FarmConfig(idle_page_request_gap_s=0.0)


class TestWorkingSetGrowth:
    def test_growth_expands_consolidated_footprints(self):
        config = FarmConfig(
            home_hosts=2, consolidation_hosts=1, vms_per_host=2,
            host_capacity_mib=4 * 4096.0,  # room to grow all day
            working_set_growth_mib_per_h=100.0,
            working_sets=WorkingSetSampler(std_mib=0.0),
        )
        simulation = FarmSimulation(
            config, FULL_TO_PARTIAL, idle_ensemble(4), seed=0
        )
        simulation.run()
        simulation.cluster.check_invariants()
        for vm in simulation.vms.values():
            assert vm.is_partial
            # Consolidated early and grew ~100 MiB/h for ~24 h.
            assert vm.working_set_mib == pytest.approx(
                165.63 + 100.0 * 24.0, rel=0.05
            )

    def test_growth_exhaustion_triggers_return_home(self):
        # A consolidation host that fits the initial working sets but
        # not a day of growth forces the §3.2 growth-exhaustion path.
        config = FarmConfig(
            home_hosts=2, consolidation_hosts=1, vms_per_host=2,
            host_capacity_mib=2 * 4096.0,
            working_set_growth_mib_per_h=400.0,
            working_sets=WorkingSetSampler(std_mib=0.0),
        )
        simulation = FarmSimulation(
            config, FULL_TO_PARTIAL, idle_ensemble(4), seed=0
        )
        result = simulation.run()
        assert result.counters.reintegrations > 0
        assert result.counters.home_wakeups > 0

    def test_no_growth_by_default(self):
        config = FarmConfig(
            home_hosts=2, consolidation_hosts=1, vms_per_host=2,
            working_sets=WorkingSetSampler(std_mib=0.0),
        )
        simulation = FarmSimulation(
            config, FULL_TO_PARTIAL, idle_ensemble(4), seed=0
        )
        simulation.run()
        for vm in simulation.vms.values():
            assert vm.working_set_mib == pytest.approx(165.63)


class TestCompactionExecution:
    def test_light_consolidation_hosts_drain_and_sleep(self):
        # Users are busy in the morning (spreading VMs over both
        # consolidation hosts), then everyone idles: compaction should
        # eventually drain one consolidation host into the other.
        bits = [0] * INTERVALS_PER_DAY
        for index in range(96, 144):
            bits[index] = 1
        traces = tuple(
            UserDayTrace.from_bits(user_id, DayType.WEEKDAY, bits)
            for user_id in range(12)
        )
        config = FarmConfig(
            home_hosts=6, consolidation_hosts=2, vms_per_host=2,
            compact_consolidation_hosts=True,
        )
        simulation = FarmSimulation(
            config, FULL_TO_PARTIAL,
            TraceEnsemble(DayType.WEEKDAY, traces), seed=2,
        )
        result = simulation.run()
        simulation.cluster.check_invariants()
        # At day's end a single consolidation host suffices.
        powered_consolidation = sum(
            1 for h in simulation.cluster.consolidation_hosts if h.is_powered
        )
        assert powered_consolidation <= 1
        assert result.counters.partial_relocations >= 0  # counter exists

    def test_compaction_disabled_is_respected(self):
        config = FarmConfig(
            home_hosts=2, consolidation_hosts=2, vms_per_host=2,
            compact_consolidation_hosts=False,
        )
        simulation = FarmSimulation(
            config, FULL_TO_PARTIAL, idle_ensemble(4), seed=0
        )
        result = simulation.run()
        assert result.counters.partial_relocations == 0
