"""Golden end-to-end regression: pinned seeds must reproduce exactly.

``tests/golden/farm_golden.json`` snapshots one seeded small-farm day
per policy — savings fraction, every migration and fault counter, the
traffic ledger, and the byte-exact ``simulate`` stdout.  Any drift means
a change altered simulation results; if that is intended, regenerate
with ``tests/golden/update_goldens.py`` and explain the diff in review.
"""

import json
import os

import pytest

from tests.golden.update_goldens import (
    FARM_SHAPE,
    GAMMA_GOLDEN_PATH,
    GAMMA_SEEDS,
    GOLDEN_PATH,
    POLICY_SEEDS,
    simulate_stdout,
    snapshot_result,
)
from repro.core import policy_by_name, strategy_by_name
from repro.farm import FarmConfig, simulate_day
from repro.traces import DayType


@pytest.fixture(scope="module")
def goldens() -> dict:
    assert os.path.exists(GOLDEN_PATH), (
        "missing tests/golden/farm_golden.json; run "
        "PYTHONPATH=src python tests/golden/update_goldens.py"
    )
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def test_golden_covers_every_policy(goldens):
    assert set(goldens["policies"]) == set(POLICY_SEEDS)
    assert goldens["farm_shape"] == FARM_SHAPE


@pytest.mark.parametrize("policy_name", sorted(POLICY_SEEDS))
def test_result_matches_golden(goldens, policy_name):
    pinned = goldens["policies"][policy_name]
    config = FarmConfig(**FARM_SHAPE)
    result = simulate_day(
        config,
        policy_by_name(policy_name),
        DayType.WEEKDAY,
        seed=pinned["seed"],
    )
    snapshot = snapshot_result(result)
    # Round-trip through JSON so float representation matches the file.
    assert json.loads(json.dumps(snapshot)) == pinned["result"]


@pytest.mark.parametrize("policy_name", sorted(POLICY_SEEDS))
def test_cli_stdout_matches_golden(goldens, policy_name):
    pinned = goldens["policies"][policy_name]
    assert simulate_stdout(policy_name, pinned["seed"]) == (
        pinned["simulate_stdout"]
    )


@pytest.mark.parametrize("policy_name", sorted(POLICY_SEEDS))
def test_explicit_single_zone_stdout_matches_golden(goldens, policy_name):
    """``--zones 1`` must be byte-identical to the pre-shard golden.

    The single-zone partition is the identity transform: same seed, same
    host ids, same RNG streams — so sharding one zone may not perturb a
    single byte of the pinned stdout (goldens unregenerated).
    """
    import contextlib
    import io

    from repro.cli import main

    pinned = goldens["policies"][policy_name]
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        status = main([
            "simulate",
            "--policy", policy_name,
            "--seed", str(pinned["seed"]),
            "--home-hosts", str(FARM_SHAPE["home_hosts"]),
            "--consolidation-hosts", str(FARM_SHAPE["consolidation_hosts"]),
            "--vms-per-host", str(FARM_SHAPE["vms_per_host"]),
            "--zones", "1",
        ])
    assert status == 0
    assert buffer.getvalue() == pinned["simulate_stdout"]


@pytest.mark.parametrize("policy_name", sorted(POLICY_SEEDS))
def test_strategy_layer_preserves_golden_stdout(goldens, policy_name):
    """The pluggable strategy layer is behavior-preserving: resolving
    each paper policy by *name* through the registry must reproduce the
    pre-refactor golden stdout byte-for-byte (goldens unregenerated)."""
    pinned = goldens["policies"][policy_name]
    config = FarmConfig(**FARM_SHAPE)
    via_registry = simulate_day(
        config,
        strategy_by_name(policy_name),
        DayType.WEEKDAY,
        seed=pinned["seed"],
    )
    assert json.loads(json.dumps(snapshot_result(via_registry))) == (
        pinned["result"]
    )
    assert simulate_stdout(policy_name, pinned["seed"]) == (
        pinned["simulate_stdout"]
    )


# ----------------------------------------------------------------------
# GammaRobust goldens (separate file: adding robust policies must never
# force a farm_golden.json regeneration)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def gamma_goldens() -> dict:
    assert os.path.exists(GAMMA_GOLDEN_PATH), (
        "missing tests/golden/gamma_golden.json; run "
        "PYTHONPATH=src python tests/golden/update_goldens.py"
    )
    with open(GAMMA_GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def test_gamma_golden_covers_pinned_gammas(gamma_goldens):
    assert set(gamma_goldens["policies"]) == set(GAMMA_SEEDS)
    assert gamma_goldens["farm_shape"] == FARM_SHAPE


@pytest.mark.parametrize("policy_name", sorted(GAMMA_SEEDS))
def test_gamma_result_matches_golden(gamma_goldens, policy_name):
    pinned = gamma_goldens["policies"][policy_name]
    config = FarmConfig(**FARM_SHAPE)
    result = simulate_day(
        config,
        strategy_by_name(policy_name),
        DayType.WEEKDAY,
        seed=pinned["seed"],
    )
    assert json.loads(json.dumps(snapshot_result(result))) == pinned["result"]


@pytest.mark.parametrize("policy_name", sorted(GAMMA_SEEDS))
def test_gamma_cli_stdout_matches_golden(gamma_goldens, policy_name):
    """``simulate --policy GammaRobust --gamma N`` stdout, byte-exact."""
    pinned = gamma_goldens["policies"][policy_name]
    stdout = simulate_stdout(policy_name, pinned["seed"])
    assert stdout == pinned["simulate_stdout"]
    assert f"policy:           {policy_name} " in stdout
