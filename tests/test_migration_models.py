"""Migration cost model, pre-copy, post-copy, and the traffic ledger."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, MigrationError
from repro.memserver.link import GIGE_LINK, TEN_GIGE_LINK
from repro.migration import (
    MigrationCostModel,
    PostCopyModel,
    PreCopyModel,
    TrafficCategory,
    TrafficLedger,
)


class TestCostModel:
    def test_paper_constants(self):
        costs = MigrationCostModel()
        assert costs.full_migration_s == 10.0
        assert costs.partial_migration_s == 7.2
        assert costs.reintegration_s == 3.7
        assert costs.descriptor_mib_mean == 16.0
        assert costs.on_demand_mib_mean == 56.9
        assert costs.reintegration_mib_mean == 175.3

    def test_occupancies_do_not_exceed_latencies(self):
        costs = MigrationCostModel()
        assert costs.partial_occupancy_s <= costs.partial_migration_s
        assert costs.full_occupancy_s <= costs.full_migration_s
        assert costs.reintegration_occupancy_s <= costs.reintegration_s

    def test_samples_always_positive(self):
        costs = MigrationCostModel(reintegration_mib_std=500.0)
        rng = random.Random(0)
        for _ in range(500):
            assert costs.sample_reintegration_mib(rng) > 0.0
            assert costs.sample_descriptor_mib(rng) > 0.0
            assert costs.sample_on_demand_mib(rng) > 0.0
            assert costs.sample_sas_upload_mib(rng) > 0.0

    def test_sample_means(self):
        costs = MigrationCostModel()
        rng = random.Random(1)
        samples = [costs.sample_on_demand_mib(rng) for _ in range(3000)]
        assert sum(samples) / len(samples) == pytest.approx(56.9, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigError):
            MigrationCostModel(full_migration_s=0.0)
        with pytest.raises(ConfigError):
            MigrationCostModel(descriptor_mib_std=-1.0)


class TestPreCopy:
    def test_idle_vm_close_to_single_pass(self):
        result = PreCopyModel().migrate(4096.0, dirty_rate_mib_s=0.0)
        # One pass at GigE plus setup; no iterative rounds needed.
        assert result.total_s == pytest.approx(2.0 + 4096.0 / 117.0, abs=0.1)
        assert result.round_count == 1
        assert result.stop_and_copy_mib == 0.0

    def test_paper_full_migration_about_41s(self):
        result = PreCopyModel().migrate(4096.0, dirty_rate_mib_s=10.0)
        assert 38.0 <= result.total_s <= 43.0

    def test_rounds_shrink_geometrically(self):
        result = PreCopyModel(stop_threshold_mib=1.0).migrate(
            4096.0, dirty_rate_mib_s=20.0
        )
        for earlier, later in zip(result.rounds, result.rounds[1:]):
            assert later < earlier

    def test_transferred_at_least_memory(self):
        result = PreCopyModel().migrate(4096.0, 30.0)
        assert result.transferred_mib >= 4096.0

    def test_divergent_dirty_rate_forces_stop_and_copy(self):
        result = PreCopyModel().migrate(1024.0, dirty_rate_mib_s=500.0)
        assert result.round_count == 1
        assert result.downtime_s > 1.0

    def test_max_rounds_bounds_iterations(self):
        model = PreCopyModel(max_rounds=3, stop_threshold_mib=0.001)
        result = model.migrate(4096.0, dirty_rate_mib_s=100.0)
        assert result.round_count <= 3

    def test_ten_gige_is_faster(self):
        slow = PreCopyModel(link=GIGE_LINK).migrate(4096.0, 10.0)
        fast = PreCopyModel(link=TEN_GIGE_LINK).migrate(4096.0, 10.0)
        assert fast.total_s < 0.25 * slow.total_s

    def test_validation(self):
        with pytest.raises(MigrationError):
            PreCopyModel().migrate(0.0, 1.0)
        with pytest.raises(MigrationError):
            PreCopyModel().migrate(100.0, -1.0)
        with pytest.raises(ConfigError):
            PreCopyModel(max_rounds=0)

    @given(
        memory=st.floats(min_value=64.0, max_value=8192.0),
        dirty=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_for_any_workload(self, memory, dirty):
        result = PreCopyModel().migrate(memory, dirty)
        assert result.total_s > 0.0
        assert result.downtime_s >= 0.0
        assert result.downtime_s <= result.total_s
        assert result.transferred_mib >= memory


class TestPostCopy:
    def test_downtime_is_context_only(self):
        model = PostCopyModel()
        result = model.migrate(4096.0, working_set_mib=200.0)
        assert result.downtime_s == pytest.approx(
            model.link.transfer_s(model.context_mib)
        )

    def test_completion_after_downtime(self):
        result = PostCopyModel().migrate(4096.0, 200.0)
        assert result.completion_s > result.downtime_s

    def test_post_copy_downtime_beats_precopy_total(self):
        # The §2 trade-off: post-copy resumes almost immediately but
        # degrades; pre-copy takes longer overall but keeps performance.
        post = PostCopyModel().migrate(4096.0, 200.0)
        pre = PreCopyModel().migrate(4096.0, 10.0)
        assert post.downtime_s < 0.05 * pre.total_s

    def test_prepaging_reduces_faults(self):
        naive = PostCopyModel(prepaging_miss_factor=1.0).migrate(4096.0, 200.0)
        adaptive = PostCopyModel(prepaging_miss_factor=0.1).migrate(4096.0, 200.0)
        assert adaptive.demand_faults < naive.demand_faults

    def test_validation(self):
        with pytest.raises(MigrationError):
            PostCopyModel().migrate(100.0, 200.0)
        with pytest.raises(ConfigError):
            PostCopyModel(prepaging_miss_factor=2.0)


class TestTrafficLedger:
    def test_add_and_query(self):
        ledger = TrafficLedger()
        ledger.add(TrafficCategory.FULL_MIGRATION, 4096.0)
        ledger.add(TrafficCategory.FULL_MIGRATION, 4096.0)
        assert ledger.mib(TrafficCategory.FULL_MIGRATION) == 8192.0
        assert ledger.events(TrafficCategory.FULL_MIGRATION) == 2

    def test_sas_traffic_not_in_network_total(self):
        ledger = TrafficLedger()
        ledger.add(TrafficCategory.MEMORY_UPLOAD_SAS, 1000.0)
        ledger.add(TrafficCategory.PARTIAL_DESCRIPTOR, 16.0)
        assert ledger.network_total_mib() == pytest.approx(16.0)

    def test_partial_vs_full_path_split(self):
        ledger = TrafficLedger()
        ledger.add(TrafficCategory.FULL_MIGRATION, 100.0)
        ledger.add(TrafficCategory.CONVERSION_PULL, 50.0)
        ledger.add(TrafficCategory.PARTIAL_DESCRIPTOR, 10.0)
        ledger.add(TrafficCategory.ON_DEMAND_PAGES, 20.0)
        ledger.add(TrafficCategory.REINTEGRATION, 30.0)
        assert ledger.full_path_mib() == pytest.approx(150.0)
        assert ledger.partial_path_mib() == pytest.approx(60.0)

    def test_merge(self):
        a = TrafficLedger()
        a.add(TrafficCategory.REINTEGRATION, 10.0)
        b = TrafficLedger()
        b.add(TrafficCategory.REINTEGRATION, 5.0)
        a.merge(b)
        assert a.mib(TrafficCategory.REINTEGRATION) == 15.0
        assert a.events(TrafficCategory.REINTEGRATION) == 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            TrafficLedger().add(TrafficCategory.REINTEGRATION, -1.0)

    def test_as_dict_covers_all_categories(self):
        assert set(TrafficLedger().as_dict()) == {
            category.value for category in TrafficCategory
        }
