"""Sweep helpers (small configurations to stay fast)."""

from dataclasses import dataclass

import pytest

from repro.core import (
    FULL_TO_PARTIAL,
    ONLY_PARTIAL,
    GreedyStrategy,
    register_strategy,
    strategy_names,
    unregister_strategy,
)
from repro.errors import ConfigError
from repro.farm import FarmConfig, SweepRunner
from repro.farm.sweep import (
    average_savings,
    cluster_shape_sweep,
    consolidation_host_sweep,
    gamma_sweep,
    memory_server_power_sweep,
    run_repetitions,
)
from repro.traces import DayType


def small_config():
    return FarmConfig(home_hosts=6, consolidation_hosts=2, vms_per_host=5)


class TestRepetitions:
    def test_runs_use_distinct_seeds(self):
        results = run_repetitions(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, runs=3,
            base_seed=100,
        )
        assert [r.seed for r in results] == [100, 101, 102]
        savings = {round(r.savings_fraction, 6) for r in results}
        assert len(savings) > 1  # independent trace draws

    def test_at_least_one_run_required(self):
        with pytest.raises(ConfigError):
            run_repetitions(small_config(), FULL_TO_PARTIAL,
                            DayType.WEEKDAY, runs=0)


class TestAverageSavings:
    def test_point_carries_mean_and_std(self):
        point = average_savings(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, runs=3,
        )
        assert point.runs == 3
        assert -1.0 < point.mean_savings < 1.0
        assert point.std_savings >= 0.0

    def test_single_run_has_zero_std(self):
        point = average_savings(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, runs=1,
        )
        assert point.std_savings == 0.0

    def test_default_label(self):
        point = average_savings(
            small_config(), ONLY_PARTIAL, DayType.WEEKEND, runs=1,
        )
        assert "OnlyPartial" in point.label
        assert "weekend" in point.label


class TestSweeps:
    def test_consolidation_host_sweep_structure(self):
        sweep = consolidation_host_sweep(
            small_config(), [FULL_TO_PARTIAL], DayType.WEEKDAY,
            consolidation_counts=(1, 2), runs=1,
        )
        assert set(sweep) == {"FulltoPartial"}
        counts = [count for count, _point in sweep["FulltoPartial"]]
        assert counts == [1, 2]

    def test_memory_server_sweep_monotone_in_power(self):
        rows = memory_server_power_sweep(
            small_config(), FULL_TO_PARTIAL,
            watts_options=(42.2, 1.0), runs=1,
        )
        assert len(rows) == 2
        (heavy_w, heavy_wd, _), (light_w, light_wd, _) = rows
        assert heavy_w > light_w
        # A leaner memory server can only help.
        assert light_wd.mean_savings >= heavy_wd.mean_savings - 0.01

    def test_cluster_shape_sweep_keeps_total_vms(self):
        rows = cluster_shape_sweep(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY,
            shapes=((6, 2), (3, 2)), runs=1,
        )
        assert [label for label, _point in rows] == ["6+2", "3+2"]

    def test_cluster_shape_sweep_rejects_nondivisible(self):
        with pytest.raises(ConfigError):
            cluster_shape_sweep(
                small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY,
                shapes=((7, 2),), runs=1,
            )


class TestRunnerIntegration:
    def test_helpers_share_an_explicit_runner(self):
        runner = SweepRunner()
        run_repetitions(small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY,
                        runs=2, runner=runner)
        memory_server_power_sweep(
            small_config(), FULL_TO_PARTIAL, watts_options=(42.2,),
            runs=1, runner=runner,
        )
        assert len(runner.summaries) == 2
        assert runner.summaries[0].runs == 2
        assert runner.summaries[1].runs == 2  # weekday + weekend

    def test_explicit_runner_matches_default(self):
        baseline = average_savings(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, runs=2,
        )
        explicit = average_savings(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, runs=2,
            runner=SweepRunner(),
        )
        assert baseline == explicit


@dataclass(frozen=True)
class _DummyStrategy(GreedyStrategy):
    """FulltoPartial's planner under a name the built-ins never use."""

    @property
    def name(self) -> str:
        return "SweepDummy"


class TestStrategyRegistrySweeps:
    """The sweeps hold no closed four-policy enum: a newly registered
    strategy sweeps end-to-end purely by name."""

    def test_registered_dummy_strategy_sweeps_end_to_end(self):
        register_strategy(_DummyStrategy(FULL_TO_PARTIAL))
        try:
            assert "SweepDummy" in strategy_names()
            sweep = consolidation_host_sweep(
                small_config(), ["SweepDummy"], DayType.WEEKDAY,
                consolidation_counts=(1, 2), runs=1,
            )
            assert set(sweep) == {"SweepDummy"}
            reference = consolidation_host_sweep(
                small_config(), [FULL_TO_PARTIAL], DayType.WEEKDAY,
                consolidation_counts=(1, 2), runs=1,
            )
            # Same planner, same seeds: only the labels may differ.
            for (_, dummy), (_, ref) in zip(
                sweep["SweepDummy"], reference["FulltoPartial"]
            ):
                assert dummy.mean_savings == ref.mean_savings
        finally:
            unregister_strategy("SweepDummy")
        assert "SweepDummy" not in strategy_names()

    def test_policies_resolve_by_string_name(self):
        point = average_savings(
            small_config(), "FulltoPartial", DayType.WEEKDAY, runs=1,
        )
        via_spec = average_savings(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY, runs=1,
        )
        assert point == via_spec

    def test_gamma_sweep_rows_and_labels(self):
        rows = gamma_sweep(
            small_config(), (0, 2), DayType.WEEKDAY,
            baselines=[FULL_TO_PARTIAL], runs=1,
        )
        assert [name for name, _ in rows] == [
            "FulltoPartial", "GammaRobust@0", "GammaRobust@2",
        ]
        for name, point in rows:
            assert point.label == name
            assert point.runs == 1

    def test_gamma_sweep_rejects_negative_gamma(self):
        with pytest.raises(ConfigError):
            gamma_sweep(small_config(), (-1,), DayType.WEEKDAY, runs=1)
