"""Policy specifications and the plan data model."""

import pytest

from repro.core import (
    ALL_POLICIES,
    DEFAULT,
    FULL_TO_PARTIAL,
    NEW_HOME,
    ONLY_PARTIAL,
    ExchangePlan,
    HostVacatePlan,
    MigrationMode,
    PlannedMigration,
    PolicySpec,
    policy_by_name,
)
from repro.errors import ConfigError


class TestPolicies:
    def test_the_four_paper_policies_exist(self):
        assert [p.name for p in ALL_POLICIES] == [
            "OnlyPartial", "Default", "FulltoPartial", "NewHome",
        ]

    def test_only_partial_never_moves_active_vms(self):
        assert not ONLY_PARTIAL.full_migrate_active
        assert not ONLY_PARTIAL.convert_in_place
        assert not ONLY_PARTIAL.exchange_idle_full

    def test_default_is_hybrid_without_exchange(self):
        assert DEFAULT.full_migrate_active
        assert DEFAULT.convert_in_place
        assert not DEFAULT.exchange_idle_full
        assert not DEFAULT.rehome_on_exhaustion

    def test_full_to_partial_adds_exchange(self):
        assert FULL_TO_PARTIAL.exchange_idle_full
        assert not FULL_TO_PARTIAL.rehome_on_exhaustion

    def test_new_home_adds_rehoming(self):
        assert NEW_HOME.exchange_idle_full
        assert NEW_HOME.rehome_on_exhaustion

    def test_lookup_case_insensitive(self):
        assert policy_by_name("fulltopartial") is FULL_TO_PARTIAL
        assert policy_by_name("NEWHOME") is NEW_HOME

    def test_lookup_unknown(self):
        with pytest.raises(ConfigError):
            policy_by_name("Aggressive")

    def test_exchange_requires_full_migrations(self):
        with pytest.raises(ConfigError):
            PolicySpec(
                name="bad",
                full_migrate_active=False,
                convert_in_place=False,
                exchange_idle_full=True,
                rehome_on_exhaustion=False,
            )


class TestPlanDataModel:
    def test_partial_migration_requires_working_set(self):
        with pytest.raises(ConfigError):
            PlannedMigration(1, 0, 5, MigrationMode.PARTIAL)

    def test_full_migration_carries_no_working_set(self):
        with pytest.raises(ConfigError):
            PlannedMigration(1, 0, 5, MigrationMode.FULL, working_set_mib=100.0)

    def test_source_differs_from_destination(self):
        with pytest.raises(ConfigError):
            PlannedMigration(1, 3, 3, MigrationMode.FULL)

    def test_vacate_plan_counts_modes(self):
        plan = HostVacatePlan(0, [
            PlannedMigration(1, 0, 5, MigrationMode.PARTIAL, 100.0),
            PlannedMigration(2, 0, 5, MigrationMode.FULL),
            PlannedMigration(3, 0, 6, MigrationMode.PARTIAL, 120.0),
        ])
        assert plan.partial_count == 2
        assert plan.full_count == 1

    def test_vacate_plan_rejects_foreign_sources(self):
        with pytest.raises(ConfigError):
            HostVacatePlan(0, [PlannedMigration(1, 9, 5, MigrationMode.FULL)])

    def test_vacate_plan_rejects_empty(self):
        with pytest.raises(ConfigError):
            HostVacatePlan(0, [])

    def test_exchange_plan_validation(self):
        with pytest.raises(ConfigError):
            ExchangePlan(1, consolidation_host_id=3, origin_home_id=3,
                         working_set_mib=100.0)
        with pytest.raises(ConfigError):
            ExchangePlan(1, 3, 0, working_set_mib=0.0)
