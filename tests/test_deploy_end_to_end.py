"""Control plane end to end: the §4.1 protocol flows."""

import pytest

from repro.deploy import Deployment, VmConfigFile
from repro.deploy.messages import (
    Ack,
    MigrationOrder,
    Nack,
    StatsReport,
    SuspendOrder,
    WakeOnLan,
)
from repro.errors import ConfigError
from repro.vm.state import Residency


def make_deployment(**kwargs):
    defaults = dict(home_hosts=2, consolidation_hosts=1, vms_per_host_hint=2)
    defaults.update(kwargs)
    return Deployment(**defaults)


def populate(deployment, count=4, first_vmid=1001):
    for vmid in range(first_vmid, first_vmid + count):
        deployment.create_vm(
            VmConfigFile(vmid=vmid, disk_image=f"/nfs/disks/{vmid}.img")
        )
    deployment.run_for(5.0)
    return list(range(first_vmid, first_vmid + count))


class TestVmCreation:
    def test_creation_places_vms_on_compute_hosts(self):
        deployment = make_deployment()
        vmids = populate(deployment)
        assert deployment.manager.creations == vmids
        for vmid in vmids:
            host = deployment.find_vm_host(vmid)
            assert host is not None
            assert host.host_id in (0, 1)  # compute hosts

    def test_creation_balances_by_free_memory(self):
        deployment = make_deployment()
        vmids = populate(deployment)
        placements = [deployment.find_vm_host(v).host_id for v in vmids]
        assert placements.count(0) == 2
        assert placements.count(1) == 2

    def test_client_receives_acks(self):
        deployment = make_deployment()
        populate(deployment, count=2)
        assert len(deployment.client.acks) == 2
        assert deployment.client.nacks == []

    def test_unknown_config_path_nacked(self):
        deployment = make_deployment()
        deployment.client.create_vm("/nfs/vms/ghost.cfg")
        deployment.run_for(1.0)
        assert len(deployment.client.nacks) == 1

    def test_creation_fails_when_cluster_full(self):
        deployment = make_deployment(vms_per_host_hint=1)
        populate(deployment, count=2)
        deployment.create_vm(
            VmConfigFile(vmid=1999, disk_image="/nfs/disks/1999.img")
        )
        deployment.run_for(1.0)
        assert any(n.request == "create" for n in deployment.client.nacks)


class TestConsolidationFlow:
    def test_idle_cluster_consolidates_and_homes_sleep(self):
        deployment = make_deployment()
        vmids = populate(deployment)
        deployment.run_for(1300.0)
        assert deployment.powered_hosts() == [2]
        for vmid in vmids:
            vm = deployment.find_vm_host(vmid).get_vm(vmid)
            assert vm.residency is Residency.PARTIAL
        deployment.check_consistency()

    def test_migration_orders_flow_over_the_bus(self):
        deployment = make_deployment()
        populate(deployment)
        deployment.run_for(1300.0)
        orders = deployment.bus.messages_of_type(MigrationOrder)
        assert len(orders) == 4
        assert all(order.destination == 2 for order in orders)

    def test_suspend_waits_for_migration_acks(self):
        deployment = make_deployment()
        populate(deployment)
        deployment.run_for(1300.0)
        log = deployment.bus.log
        first_suspend = min(
            (i for i, (_t, _s, _d, m) in enumerate(log)
             if isinstance(m, SuspendOrder)),
        )
        migration_acks = [
            i for i, (_t, _s, _d, m) in enumerate(log)
            if isinstance(m, Ack) and m.request == "migrated"
        ]
        assert migration_acks, "no migration acks seen"
        # At least one ack from each home precedes its suspend order.
        assert min(migration_acks) < first_suspend

    def test_wake_on_lan_precedes_placement_on_sleeping_hosts(self):
        deployment = make_deployment()
        populate(deployment)
        deployment.run_for(1300.0)
        log = deployment.bus.log
        wol_index = min(
            i for i, (_t, _s, _d, m) in enumerate(log)
            if isinstance(m, WakeOnLan) and m.host_id == 2
        )
        first_arrival = min(
            i for i, (_t, _s, d, m) in enumerate(log)
            if d == "agent-2" and isinstance(m, MigrationOrder) is False
            and type(m).__name__ == "VmDescriptorPush"
        )
        assert wol_index < first_arrival

    def test_stats_reports_flow(self):
        deployment = make_deployment()
        populate(deployment)
        deployment.run_for(305.0)
        reports = deployment.bus.messages_of_type(StatsReport)
        assert len(reports) >= 4  # several hosts x several intervals
        sample = reports[-1]
        assert 0.0 <= sample.memory_utilization <= 1.0


class TestActivationFlow:
    def _consolidated(self):
        deployment = make_deployment()
        vmids = populate(deployment)
        deployment.run_for(1300.0)
        return deployment, vmids

    def test_activation_converts_in_place(self):
        deployment, vmids = self._consolidated()
        deployment.set_vm_activity(vmids[0], True)
        deployment.run_for(30.0)
        vm = deployment.find_vm_host(vmids[0]).get_vm(vmids[0])
        assert vm.residency is Residency.FULL
        assert vm.home_id == 2  # re-homed to the consolidation host
        deployment.check_consistency()

    def test_exchange_restores_partial_after_idling(self):
        deployment, vmids = self._consolidated()
        deployment.set_vm_activity(vmids[0], True)
        deployment.run_for(400.0)
        deployment.set_vm_activity(vmids[0], False)
        deployment.run_for(900.0)
        vm = deployment.find_vm_host(vmids[0]).get_vm(vmids[0])
        assert vm.residency is Residency.PARTIAL
        assert vm.home_id == vm.origin_home_id
        # The temporarily woken home went back to sleep.
        assert deployment.powered_hosts() == [2]
        deployment.check_consistency()

    def test_image_release_notice_cleans_old_home(self):
        deployment, vmids = self._consolidated()
        vmid = vmids[0]
        vm = deployment.find_vm_host(vmid).get_vm(vmid)
        origin = deployment.hosts[vm.origin_home_id]
        assert vmid in origin.served_image_ids
        deployment.set_vm_activity(vmid, True)
        deployment.run_for(30.0)
        assert vmid not in origin.served_image_ids

    def test_set_activity_on_unknown_vm(self):
        deployment = make_deployment()
        with pytest.raises(ConfigError):
            deployment.set_vm_activity(4242, True)


class TestProtocolEdges:
    def test_migration_order_for_unknown_vm_is_nacked(self):
        from repro.deploy.messages import MigrationOrder, MigrationType

        deployment = make_deployment()
        populate(deployment, count=1)
        deployment.manager.endpoint.send(
            "agent-0",
            MigrationOrder(
                vmid=9999, migration_type=MigrationType.FULL, destination=2
            ),
        )
        deployment.run_for(1.0)
        nacks = [
            m for m in deployment.bus.messages_of_type(Nack)
            if m.request == "migrate"
        ]
        assert nacks

    def test_only_partial_policy_in_the_control_plane(self):
        from repro.core import ONLY_PARTIAL

        deployment = make_deployment(policy=ONLY_PARTIAL)
        vmids = populate(deployment)
        deployment.run_for(1300.0)
        # Consolidated partials, homes asleep.
        assert deployment.powered_hosts() == [2]
        deployment.set_vm_activity(vmids[0], True)
        deployment.run_for(60.0)
        # OnlyPartial wakes the home and returns all of its VMs.
        vm = deployment.find_vm_host(vmids[0]).get_vm(vmids[0])
        assert vm.host_id == vm.origin_home_id
        assert vm.residency is Residency.FULL
        assert vm.origin_home_id in deployment.powered_hosts()
        deployment.check_consistency()

    def test_simultaneous_activations_all_convert(self):
        deployment = make_deployment()
        vmids = populate(deployment)
        deployment.run_for(1300.0)
        for vmid in vmids:
            deployment.set_vm_activity(vmid, True)
        deployment.run_for(120.0)
        for vmid in vmids:
            vm = deployment.find_vm_host(vmid).get_vm(vmid)
            assert vm.residency is Residency.FULL
        deployment.check_consistency()


class TestOwnership:
    def test_partial_vm_owner_stays_at_source(self):
        # §4.2: while a partial VM runs at the destination, ownership
        # remains with the source agent (it controls the memory server).
        deployment = make_deployment()
        vmids = populate(deployment)
        deployment.run_for(1300.0)
        for vmid in vmids:
            vm = deployment.find_vm_host(vmid).get_vm(vmid)
            origin_agent = deployment.agents[vm.origin_home_id]
            consolidation_agent = deployment.agents[2]
            assert vmid in origin_agent.owned_vmids
            assert vmid not in consolidation_agent.owned_vmids

    def test_ownership_transfers_on_conversion(self):
        deployment = make_deployment()
        vmids = populate(deployment)
        deployment.run_for(1300.0)
        deployment.set_vm_activity(vmids[0], True)
        deployment.run_for(30.0)
        assert vmids[0] in deployment.agents[2].owned_vmids
