"""Discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.simulator import Simulator


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(2.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_simultaneous_events_fire_fifo(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert sim.now == 3.5

    def test_callback_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_zero_delay_runs_after_current_instant_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, "first")
        sim.schedule(0.0, fired.append, "second")
        sim.run()
        assert fired == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_counts_exclude_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert not keep.cancelled

    def test_handle_reports_time_and_label(self):
        sim = Simulator()
        handle = sim.schedule(4.0, lambda: None, label="tick")
        assert handle.time == 4.0
        assert handle.label == "tick"


class TestRunUntil:
    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run_until(3.0)
        assert fired == ["a"]
        assert sim.now == 3.0

    def test_run_until_includes_events_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "edge")
        sim.run_until(3.0)
        assert fired == ["edge"]

    def test_run_until_leaves_future_events_pending(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run_until(5.0)
        assert sim.pending == 1

    def test_run_until_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_advance_moves_relative(self):
        sim = Simulator()
        sim.advance(7.0)
        assert sim.now == 7.0

    def test_run_until_clock_at_horizon_even_without_events(self):
        sim = Simulator()
        sim.run_until(42.0)
        assert sim.now == 42.0


class TestGuards:
    def test_max_events_guards_runaway_loops(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_max_events_executes_exactly_the_bound(self):
        # Regression: the guard used to check *after* executing, so
        # max_events=N let N+1 callbacks run before raising.
        sim = Simulator()
        executed = []

        def forever():
            executed.append(sim.now)
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)
        assert len(executed) == 100

    def test_max_events_equal_to_queue_size_completes(self):
        sim = Simulator()
        fired = []
        for index in range(5):
            sim.schedule(float(index), fired.append, index)
        assert sim.run(max_events=5) == 5
        assert fired == [0, 1, 2, 3, 4]

    def test_events_fired_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_fired == 4

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False
