"""Working-set sampling and the Table 2 workload catalog."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.vm import (
    APPLICATION_CATALOG,
    WORKLOAD_1,
    WORKLOAD_2,
    Workload,
    WorkingSetSampler,
)
from repro.vm.workingset import JETTISON_MEAN_MIB, JETTISON_STD_MIB


class TestWorkingSetSampler:
    def test_defaults_match_paper_moments(self):
        sampler = WorkingSetSampler()
        assert sampler.mean_mib == pytest.approx(165.63)
        assert sampler.std_mib == pytest.approx(91.38)

    def test_samples_within_bounds(self):
        sampler = WorkingSetSampler()
        rng = random.Random(0)
        for _ in range(2000):
            value = sampler.sample(rng)
            assert sampler.min_mib <= value <= sampler.max_mib

    def test_sample_mean_close_to_target(self):
        sampler = WorkingSetSampler()
        rng = random.Random(1)
        samples = [sampler.sample(rng) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(JETTISON_MEAN_MIB, rel=0.1)

    def test_sample_std_close_to_target(self):
        sampler = WorkingSetSampler()
        rng = random.Random(2)
        samples = [sampler.sample(rng) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert var ** 0.5 == pytest.approx(JETTISON_STD_MIB, rel=0.15)

    def test_deterministic_with_seed(self):
        sampler = WorkingSetSampler()
        a = [sampler.sample(random.Random(3)) for _ in range(5)]
        b = [sampler.sample(random.Random(3)) for _ in range(5)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkingSetSampler(mean_mib=-1.0)
        with pytest.raises(ConfigError):
            WorkingSetSampler(mean_mib=10.0, min_mib=50.0)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_sampling_is_total_and_bounded(self, seed):
        sampler = WorkingSetSampler(std_mib=400.0, min_mib=150.0,
                                    max_mib=180.0, mean_mib=165.0)
        value = sampler.sample(random.Random(seed))
        assert 150.0 <= value <= 180.0


class TestWorkloadCatalog:
    def test_catalog_entries_have_positive_numbers(self):
        for key, app in APPLICATION_CATALOG.items():
            assert app.full_start_s > 0.0, key
            assert app.startup_footprint_mib > 0.0, key
            assert app.resident_mib >= app.startup_footprint_mib * 0.5, key

    def test_workload_1_matches_table_2(self):
        names = [app.name for app in WORKLOAD_1.applications]
        assert "Thunderbird mail" in names
        assert "Pidgin IM" in names
        assert names.count("LibreOffice document") == 3
        assert sum(1 for n in names if n.startswith("Firefox")) == 5

    def test_workload_2_matches_table_2(self):
        names = [app.name for app in WORKLOAD_2.applications]
        assert names.count("LibreOffice document") == 3
        assert sum(1 for n in names if n.startswith("Firefox")) == 4
        assert "Evince PDF" in names

    def test_resident_totals_fit_a_4gib_vm(self):
        total = WORKLOAD_1.resident_mib + WORKLOAD_2.resident_mib
        assert total < 4096.0 - 500.0  # leaves room for the OS base

    def test_unknown_application_rejected(self):
        with pytest.raises(ConfigError):
            Workload("bad", ("no-such-app",))

    def test_libreoffice_footprint_supports_figure6(self):
        # 164 MiB at ~4 ms/fault is the paper's 168 s start-up.
        app = APPLICATION_CATALOG["libreoffice-doc"]
        assert app.startup_footprint_mib == pytest.approx(164.0)
