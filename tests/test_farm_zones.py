"""Zoned simulation: partition determinism, the 1-zone differential
battery, K-zone aggregation invariants, and the scale tiers.

The correctness anchor is byte-identity: a ``zones=1`` sharded run must
be indistinguishable — field for field, float for float — from the
unsharded :func:`repro.farm.simulate_day`, with the goldens
unregenerated.  For K > 1 the anchors are the aggregation invariants:
every VM in exactly one zone, per-zone energies summing *exactly* to
the aggregate report, and :func:`validate_simulation` holding on every
shard.
"""

import pytest

from repro.core import FULL_TO_PARTIAL, policy_by_name
from repro.errors import ConfigError
from repro.farm import (
    FarmConfig,
    FarmSimulation,
    GlobalController,
    SweepRunner,
    build_partition,
    simulate_day,
    simulate_zoned_day,
    validate_simulation,
    zone_run_specs,
)
from repro.farm.runner import _ensemble_for
from repro.simulator.randomness import derive_seed
from repro.traces import DayType


def small_config(**overrides):
    defaults = dict(home_hosts=6, consolidation_hosts=3, vms_per_host=4)
    defaults.update(overrides)
    return FarmConfig(**defaults)


def result_fingerprint(result):
    """Everything a figure consumes, exact to the last delay sample."""
    return (
        result.savings_fraction,
        result.counters,
        result.faults,
        result.delays,
        result.active_vms,
        result.powered_hosts,
    )


class TestPartition:
    def test_same_seed_same_partition(self):
        config = small_config(home_hosts=12, consolidation_hosts=3)
        assert build_partition(config, 3, 7) == build_partition(config, 3, 7)

    def test_different_seeds_shuffle_the_assignment(self):
        config = small_config(home_hosts=12, consolidation_hosts=3)
        first = build_partition(config, 3, 0)
        second = build_partition(config, 3, 1)
        assert first.home_host_ids != second.home_host_ids

    def test_assignment_uses_the_derived_substream(self):
        # Pinned indirectly: the shuffle consumes exactly the
        # "zones.assignment" substream of the master seed, so any two
        # calls with equal (config, zones, seed) agree and the master
        # streams (traces, faults, ...) never observe these draws.
        config = small_config(home_hosts=8, consolidation_hosts=2)
        partition = build_partition(config, 2, 5)
        assert partition.zone_seed(0) == derive_seed(5, "zone.0")
        assert partition.zone_seed(1) == derive_seed(5, "zone.1")

    def test_single_zone_is_the_identity_transform(self):
        config = small_config()
        partition = build_partition(config, 1, 42)
        assert partition.home_host_ids == (tuple(range(6)),)
        assert partition.consolidation_host_ids == (tuple(range(6, 9)),)
        assert partition.zone_seed(0) == 42  # the master seed, untouched

    def test_every_vm_in_exactly_one_zone(self):
        config = small_config(home_hosts=10, consolidation_hosts=4)
        for zones in (2, 3, 4):
            partition = build_partition(config, zones, 3)
            seen = []
            for zone in range(zones):
                seen.extend(partition.zone_vm_ids(zone))
            assert sorted(seen) == list(range(config.total_vms))
            assert len(seen) == len(set(seen))

    def test_chunks_are_balanced(self):
        config = small_config(home_hosts=10, consolidation_hosts=4)
        partition = build_partition(config, 4, 9)
        sizes = [len(ids) for ids in partition.home_host_ids]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_global_id_maps_roundtrip(self):
        config = small_config(home_hosts=9, consolidation_hosts=3)
        partition = build_partition(config, 3, 11)
        for zone in range(3):
            for local_vm, global_vm in enumerate(partition.zone_vm_ids(zone)):
                assert partition.global_vm_id(zone, local_vm) == global_vm
                assert partition.vm_zone(global_vm) == zone

    def test_zone_configs_inherit_everything_but_shape(self):
        config = small_config(memory_overcommit=1.5)
        partition = build_partition(config, 3, 0)
        zone_config = partition.zone_config(0, config)
        assert zone_config.home_hosts == 2
        assert zone_config.consolidation_hosts == 1
        assert zone_config.memory_overcommit == 1.5
        assert zone_config.traces == config.traces

    def test_validation(self):
        with pytest.raises(ConfigError):
            build_partition(small_config(), 0, 0)
        with pytest.raises(ConfigError):
            # 3 non-empty zones need 3 consolidation hosts; 2 exist.
            build_partition(small_config(consolidation_hosts=2), 3, 0)
        with pytest.raises(ConfigError):
            GlobalController(
                small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY,
                budget_w=0.0,
            )


class TestSingleZoneDifferential:
    """zones=1 must be byte-identical to the unsharded simulator."""

    @pytest.mark.parametrize("policy_name", ["Default", "FulltoPartial"])
    def test_aggregate_equals_unsharded(self, policy_name):
        config = small_config()
        policy = policy_by_name(policy_name)
        reference = simulate_day(config, policy, DayType.WEEKDAY, seed=13)
        zoned = simulate_zoned_day(
            config, policy, DayType.WEEKDAY, zones=1, seed=13
        )
        aggregate = zoned.aggregate
        assert aggregate.energy == reference.energy
        assert aggregate.counters == reference.counters
        assert aggregate.faults == reference.faults
        assert aggregate.delays == reference.delays
        assert aggregate.active_vms == reference.active_vms
        assert aggregate.powered_hosts == reference.powered_hosts
        assert aggregate.powered_home_hosts == reference.powered_home_hosts
        assert (
            aggregate.powered_consolidation_hosts
            == reference.powered_consolidation_hosts
        )
        assert (
            aggregate.consolidation_ratio_samples
            == reference.consolidation_ratio_samples
        )
        assert aggregate.home_sleep_s == reference.home_sleep_s
        assert aggregate.traffic.as_dict() == reference.traffic.as_dict()
        assert aggregate.sample_times_s == reference.sample_times_s
        assert aggregate.seed == reference.seed
        assert aggregate.policy_name == reference.policy_name
        assert aggregate.day_type == reference.day_type
        assert aggregate.horizon_s == reference.horizon_s

    def test_under_fault_injection(self):
        from repro.faults import fault_profile_by_name

        config = small_config(faults=fault_profile_by_name("heavy"))
        reference = simulate_day(
            config, FULL_TO_PARTIAL, DayType.WEEKDAY, seed=2
        )
        zoned = simulate_zoned_day(
            config, FULL_TO_PARTIAL, DayType.WEEKDAY, zones=1, seed=2
        )
        assert reference.faults.total_events > 0, "vacuous fault test"
        assert result_fingerprint(zoned.aggregate) == result_fingerprint(
            reference
        )


class TestZoneAggregation:
    @pytest.fixture(scope="class")
    def zoned(self):
        return simulate_zoned_day(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY,
            zones=3, seed=5,
        )

    def test_energy_sums_exactly(self, zoned):
        # Exact float equality, not approx: the aggregate is defined as
        # the sum of the shards, in zone order.
        assert sum(zoned.zone_managed_joules()) == (
            zoned.aggregate.energy.managed_joules
        )
        assert sum(
            r.energy.baseline_joules for r in zoned.zone_results if r
        ) == zoned.aggregate.energy.baseline_joules

    def test_counters_and_faults_are_fieldwise_sums(self, zoned):
        import dataclasses

        results = [r for r in zoned.zone_results if r is not None]
        for field in dataclasses.fields(zoned.aggregate.counters):
            assert getattr(zoned.aggregate.counters, field.name) == sum(
                getattr(r.counters, field.name) for r in results
            )
        for field in dataclasses.fields(zoned.aggregate.faults):
            assert getattr(zoned.aggregate.faults, field.name) == sum(
                getattr(r.faults, field.name) for r in results
            )

    def test_time_series_are_elementwise_sums(self, zoned):
        results = [r for r in zoned.zone_results if r is not None]
        for index in range(len(zoned.aggregate.active_vms)):
            assert zoned.aggregate.active_vms[index] == sum(
                r.active_vms[index] for r in results
            )
            assert zoned.aggregate.powered_hosts[index] == sum(
                r.powered_hosts[index] for r in results
            )

    def test_traffic_merges(self, zoned):
        results = [r for r in zoned.zone_results if r is not None]
        merged = {}
        for result in results:
            for key, value in result.traffic.as_dict().items():
                merged[key] = merged.get(key, 0.0) + value
        assert zoned.aggregate.traffic.as_dict() == pytest.approx(merged)

    def test_delays_remap_to_global_vm_ids(self, zoned):
        partition = zoned.partition
        total = 0
        for zone, result in enumerate(zoned.zone_results):
            if result is None:
                continue
            total += len(result.delays)
        assert len(zoned.aggregate.delays) == total
        for sample in zoned.aggregate.delays:
            assert 0 <= sample.vm_id < small_config().total_vms
            # the owning zone really owns the VM
            zone = partition.vm_zone(sample.vm_id)
            assert sample.vm_id in partition.zone_vm_ids(zone)

    def test_home_sleep_keys_are_global_host_ids(self, zoned):
        assert set(zoned.aggregate.home_sleep_s) == set(range(6))

    def test_validate_simulation_holds_per_shard(self):
        config = small_config()
        partition = build_partition(config, 3, 5)
        for _zone, spec in zone_run_specs(
            partition, config, FULL_TO_PARTIAL, DayType.WEEKDAY
        ):
            ensemble, _cached = _ensemble_for(spec)
            shard = FarmSimulation(
                spec.config, spec.policy, ensemble, seed=spec.seed
            )
            shard.run()
            validate_simulation(shard)

    def test_backend_equivalence(self, zoned):
        parallel = simulate_zoned_day(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY,
            zones=3, seed=5,
            runner=SweepRunner(backend="process", workers=2),
        )
        assert result_fingerprint(parallel.aggregate) == result_fingerprint(
            zoned.aggregate
        )
        assert parallel.zone_managed_joules() == zoned.zone_managed_joules()


class TestEdgeCases:
    def test_empty_zones_simulate_nothing(self):
        # 6 zones over 4 home hosts: two zones stay empty.
        config = FarmConfig(home_hosts=4, consolidation_hosts=6,
                            vms_per_host=4)
        zoned = simulate_zoned_day(
            config, FULL_TO_PARTIAL, DayType.WEEKDAY, zones=6, seed=1
        )
        assert len(zoned.partition.nonempty_zones) == 4
        assert zoned.zone_results.count(None) == 2
        assert sum(zoned.zone_managed_joules()) == (
            zoned.aggregate.energy.managed_joules
        )
        for zone, budget in enumerate(zoned.budgets):
            if zoned.partition.is_empty(zone):
                assert budget.mean_power_w == 0.0
                assert budget.peak_demand_w == 0.0

    def test_zone_count_exceeding_vm_count(self):
        config = FarmConfig(home_hosts=3, consolidation_hosts=3,
                            vms_per_host=1)  # 3 VMs
        zoned = simulate_zoned_day(
            config, FULL_TO_PARTIAL, DayType.WEEKDAY, zones=5, seed=1
        )
        assert len(zoned.partition.nonempty_zones) == 3
        seen = []
        for zone in range(5):
            seen.extend(zoned.partition.zone_vm_ids(zone))
        assert sorted(seen) == [0, 1, 2]

    def test_budget_shares_are_proportional_and_sum_to_budget(self):
        config = small_config()
        zoned = simulate_zoned_day(
            config, FULL_TO_PARTIAL, DayType.WEEKDAY, zones=3, seed=1,
            budget_w=1200.0,
        )
        shares = [budget.share_w for budget in zoned.budgets]
        assert sum(shares) == pytest.approx(1200.0)
        demands = [budget.peak_demand_w for budget in zoned.budgets]
        for share, demand in zip(shares, demands):
            assert share == pytest.approx(
                1200.0 * demand / sum(demands)
            )

    def test_unbudgeted_shares_default_to_peak_demand(self):
        zoned = simulate_zoned_day(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY,
            zones=2, seed=1,
        )
        for budget in zoned.budgets:
            assert budget.share_w == budget.peak_demand_w


class TestZoneTracing:
    def test_coordinator_events_are_zone_tagged(self):
        from repro.obs import CAT_ZONE, RecordingTracer

        tracer = RecordingTracer()
        zoned = simulate_zoned_day(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY,
            zones=2, seed=3, tracer=tracer,
        )
        by_name = {}
        for event in tracer.events:
            by_name.setdefault(event.name, []).append(event)
            assert event.category == CAT_ZONE
        assert [e.args["zone"] for e in by_name["zone.partition"]] == [0, 1]
        assert len(by_name["zone.shard_done"]) == 2
        (aggregate_event,) = by_name["zone.aggregate"]
        assert aggregate_event.args["zones"] == 2
        assert aggregate_event.args["savings_fraction"] == (
            zoned.aggregate.savings_fraction
        )

    def test_tracing_does_not_perturb_results(self):
        from repro.obs import RecordingTracer

        untraced = simulate_zoned_day(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY,
            zones=2, seed=3,
        )
        traced = simulate_zoned_day(
            small_config(), FULL_TO_PARTIAL, DayType.WEEKDAY,
            zones=2, seed=3, tracer=RecordingTracer(),
        )
        assert result_fingerprint(traced.aggregate) == result_fingerprint(
            untraced.aggregate
        )


@pytest.mark.slow
class TestScaleTwentyThousand:
    """The acceptance shape: 20k VMs over four zones."""

    def test_20k_vm_four_zone_run(self):
        config = FarmConfig(home_hosts=668, consolidation_hosts=16,
                            vms_per_host=30)  # 20,040 VMs
        zoned = simulate_zoned_day(
            config, policy_by_name("Default"), DayType.WEEKDAY,
            zones=4, seed=0,
        )
        assert config.total_vms == 20040
        # Per-zone energy sums exactly to the aggregate report.
        assert sum(zoned.zone_managed_joules()) == (
            zoned.aggregate.energy.managed_joules
        )
        seen = []
        for zone in range(4):
            seen.extend(zoned.partition.zone_vm_ids(zone))
        assert sorted(seen) == list(range(20040))
        assert len(zoned.aggregate.sample_times_s) == 288


@pytest.mark.fullscale
class TestScaleHundredThousand:
    """The 100k-VM tier, behind the ``fullscale`` marker (the default
    pytest invocation deselects it; opt in with ``-m fullscale``)."""

    def test_100k_vm_perfbench_case(self):
        import time

        from repro.perfbench import fullscale_cases, run_case

        (case,) = fullscale_cases()
        assert case.home_hosts * case.vms_per_host >= 100_000
        outcome = run_case(time.perf_counter, case)
        fingerprint = outcome.fingerprint
        assert fingerprint["zones"] == case.zones
        assert sum(fingerprint["zone_managed_joules"]) == (
            fingerprint["managed_joules"]
        )
        assert outcome.timing["best_s"] > 0.0
