"""Rule battery for the whole-program FLOW/ENC/TRC packs.

Three layers of assurance:

- synthetic fixture modules where each rule must fire at an exact
  ``file:line`` (the seeded-fault battery from the acceptance criteria);
- a mutation battery that appends a rogue index write to each *real*
  indexed module and asserts ENC201 catches it;
- end-to-end ``check_project`` runs covering suppressions, baselines,
  parse errors, and the cache.
"""

import json
import textwrap

import pytest

from repro.checkers.driver import module_name_for, read_source
from repro.checkers.flow.baseline import apply_baseline, load_baseline
from repro.checkers.flow.project import ProjectContext
from repro.checkers.flow.runner import check_project
from repro.checkers.flow.rules_enc import INDEX_SPECS
from repro.checkers.flow.summary import summarize_source

# Importing the runner registered every project rule.
from repro.checkers.flow.project import all_project_rules


def build_ctx(modules):
    """``{dotted_module: source} -> ProjectContext``."""
    summaries = []
    for module, source in modules.items():
        path = "src/" + module.replace(".", "/") + ".py"
        summaries.append(
            summarize_source(textwrap.dedent(source), path, module)
        )
    return ProjectContext(summaries)


def run_rules(ctx, prefix=""):
    found = []
    for rule_cls in all_project_rules():
        if not rule_cls.rule_id.startswith(prefix):
            continue
        found.extend(rule_cls().check(ctx))
    return found


def rendered(findings):
    return [
        (pf.finding.rule_id, pf.finding.path, pf.finding.line)
        for pf in findings
    ]


TRACER_MODULE = """
class Tracer:
    enabled = False

    def event(self, name, **labels):
        return None

    def span(self, name):
        return None

    def now_s(self):
        return 0.0
"""


class TestFlowPack:
    def test_flow101_rogue_draw_exact_location(self):
        ctx = build_ctx(
            {
                "repro.core.evil": """
                import random

                def rogue():
                    r = random.Random()
                    return r.random()
                """
            }
        )
        assert rendered(run_rules(ctx, "FLOW101")) == [
            ("FLOW101", "src/repro/core/evil.py", 6)
        ]

    def test_flow101_attributed_and_external_are_clean(self):
        ctx = build_ctx(
            {
                "repro.core.good": """
                import random

                def seeded():
                    return random.Random(42).random()

                def external(rng: random.Random):
                    return rng.gauss(0.0, 1.0)
                """
            }
        )
        assert run_rules(ctx, "FLOW101") == []

    def test_flow102_unguarded_fault_draw(self):
        source = """
        class Injector:
            def __init__(self, rng, profile):
                self._rng = rng
                self.profile = profile

            def maybe_fail(self):
                return self._rng.random() < self.profile.fail_prob

            def guarded_fail(self):
                if self.profile.fail_prob <= 0.0:
                    return False
                return self._rng.random() < self.profile.fail_prob
        """
        ctx = build_ctx({"repro.faults.injector": source})
        found = rendered(run_rules(ctx, "FLOW102"))
        assert found == [("FLOW102", "src/repro/faults/injector.py", 8)]

    def test_flow103_guarded_stochastic_call_needs_mirror(self):
        ctx = build_ctx(
            {
                "repro.obs.tracer": TRACER_MODULE,
                "repro.core.planner": """
                import random
                from repro.obs.tracer import Tracer

                class Planner:
                    def __init__(self, tracer: Tracer, rng: random.Random):
                        self.tracer = tracer
                        self.rng = rng

                    def plan(self):
                        if self.tracer.enabled:
                            self._stochastic()

                    def mirrored(self):
                        if self.tracer.enabled:
                            self._stochastic()
                        else:
                            self._stochastic()

                    def _stochastic(self):
                        return self.rng.random()
                """,
            }
        )
        found = rendered(run_rules(ctx, "FLOW103"))
        assert found == [("FLOW103", "src/repro/core/planner.py", 12)]

    def test_flow104_drifted_gauss_replica(self):
        # The sin/cos pairing is swapped vs random.Random.gauss: the
        # cached second variate would differ from the library's.
        ctx = build_ctx(
            {
                "repro.migration.fastpath": """
                from math import cos as _cos, sin as _sin, log as _log
                from math import sqrt as _sqrt, tau as _TWOPI
                import random

                def sample(rng: random.Random) -> float:
                    u = rng.random
                    z = rng.gauss_next
                    rng.gauss_next = None
                    if z is None:
                        x2pi = u() * _TWOPI
                        g2rad = _sqrt(-2.0 * _log(1.0 - u()))
                        z = _sin(x2pi) * g2rad
                        rng.gauss_next = _cos(x2pi) * g2rad
                    return 100.0 + z * 10.0
                """
            }
        )
        found = rendered(run_rules(ctx, "FLOW104"))
        # Each unverified gauss_next touch is its own site.
        assert found and all(f[0] == "FLOW104" for f in found)

    def test_flow104_canonical_replica_in_real_tree_is_clean(self):
        path = "src/repro/migration/costs.py"
        summary = summarize_source(
            read_source(path), path, "repro.migration.costs"
        )
        sites = [
            s
            for fn in summary.functions.values()
            for s in fn.replica_sites
        ]
        assert sites, "expected inlined gauss replicas in costs.py"
        assert all(s.ok for s in sites)


class TestEncPack:
    def test_enc201_mutation_battery_real_modules(self):
        """Append a rogue write to each real indexed module; ENC201 must
        catch every one at the exact appended line."""
        for spec in INDEX_SPECS:
            module = spec.cls.rsplit(".", 1)[0]
            cls_name = spec.cls.rsplit(".", 1)[1]
            attr = sorted(spec.attrs)[0]
            path = "src/" + module.replace(".", "/") + ".py"
            source = read_source(path)
            base_lines = source.count("\n")
            rogue = (
                f"\n\ndef _rogue(x: {cls_name}) -> None:\n"
                f"    x.{attr} = None\n"
            )
            summary = summarize_source(source + rogue, path, module)
            ctx = ProjectContext([summary])
            found = rendered(run_rules(ctx, "ENC201"))
            expected_line = base_lines + 4
            assert (("ENC201", path, expected_line) in found), (
                f"rogue write to {spec.cls}.{attr} not caught; "
                f"got {found}"
            )

    def test_enc201_inplace_container_mutation(self):
        ctx = build_ctx(
            {
                "repro.cluster.host": """
                class Host:
                    def __init__(self):
                        self._served_images = set()

                    def add_served_image(self, vm_id):
                        self._served_images.add(vm_id)

                def rogue(h: Host):
                    h._served_images.add(99)
                """
            }
        )
        found = rendered(run_rules(ctx, "ENC201"))
        assert found == [("ENC201", "src/repro/cluster/host.py", 10)]

    def test_enc201_sanctioned_mutator_is_clean(self):
        ctx = build_ctx(
            {
                "repro.cluster.topology": """
                class Cluster:
                    def __init__(self):
                        self._powered_home = 0

                    def _on_power_edge(self, host, previous, state):
                        self._powered_home += 1
                """
            }
        )
        assert run_rules(ctx, "ENC201") == []

    def test_enc202_leaked_index_handle(self):
        ctx = build_ctx(
            {
                "repro.cluster.host": """
                class Host:
                    def __init__(self):
                        self._vms = {}

                    def leak(self):
                        return self._vms

                    def safe(self):
                        return list(self._vms)
                """
            }
        )
        found = rendered(run_rules(ctx, "ENC202"))
        assert found == [("ENC202", "src/repro/cluster/host.py", 7)]


class TestTrcPack:
    def test_trc301_emission_result_feeds_value(self):
        ctx = build_ctx(
            {
                "repro.obs.tracer": TRACER_MODULE,
                "repro.core.engine": """
                from repro.obs.tracer import Tracer

                class Engine:
                    def __init__(self, tracer: Tracer):
                        self.tracer = tracer

                    def bad(self):
                        marker = self.tracer.event("step")
                        return marker

                    def good(self):
                        self.tracer.event("step")
                """,
            }
        )
        found = rendered(run_rules(ctx, "TRC301"))
        assert found == [("TRC301", "src/repro/core/engine.py", 9)]

    def test_trc302_draw_under_tracer_guard(self):
        ctx = build_ctx(
            {
                "repro.obs.tracer": TRACER_MODULE,
                "repro.core.engine": """
                import random
                from repro.obs.tracer import Tracer

                class Engine:
                    def __init__(self, tracer: Tracer, rng: random.Random):
                        self.tracer = tracer
                        self.rng = rng

                    def bad(self):
                        if self.tracer.enabled:
                            jitter = self.rng.random()
                            self.tracer.event("jitter", value=jitter)
                """,
            }
        )
        found = rendered(run_rules(ctx, "TRC302"))
        assert found == [("TRC302", "src/repro/core/engine.py", 12)]

    def test_trc303_tracer_state_reads(self):
        ctx = build_ctx(
            {
                "repro.obs.tracer": TRACER_MODULE,
                "repro.core.engine": """
                from repro.obs.tracer import Tracer

                class Engine:
                    def __init__(self, tracer: Tracer):
                        self.tracer = tracer

                    def clock_read(self):
                        return self.tracer.now_s()

                    def state_read(self, t: Tracer):
                        return t.events
                """,
            }
        )
        found = sorted(rendered(run_rules(ctx, "TRC303")))
        assert found == [
            ("TRC303", "src/repro/core/engine.py", 9),
            ("TRC303", "src/repro/core/engine.py", 12),
        ]

    def test_trc_exempt_inside_obs(self):
        ctx = build_ctx(
            {
                "repro.obs.exporter": TRACER_MODULE
                + """

                def export(tracer: Tracer):
                    return tracer.now_s()
                """
            }
        )
        assert run_rules(ctx, "TRC") == []


class TestProjectRunner:
    def _write_tree(self, tmp_path, files):
        root = tmp_path / "src" / "repro"
        for rel, source in files.items():
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source), encoding="utf-8")
        return str(root)

    def test_end_to_end_with_cache(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            {
                "core/evil.py": """
                import random

                def rogue():
                    return random.Random().random()
                """
            },
        )
        cache = str(tmp_path / "cache.json")
        cold = check_project([root], baseline_path=None, cache_path=cache)
        assert [f.rule_id for f in cold.findings] == ["FLOW101"]
        assert cold.cache_misses >= 1 and cold.cache_hits == 0

        warm = check_project([root], baseline_path=None, cache_path=cache)
        assert [f.rule_id for f in warm.findings] == ["FLOW101"]
        assert warm.cache_misses == 0 and warm.cache_hits >= 1

    def test_line_and_file_suppressions(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            {
                "core/line.py": """
                import random

                def rogue():
                    return random.Random().random()  # repro: noqa[FLOW101]
                """,
                "core/whole.py": """
                # repro: noqa-file[FLOW101]
                import random

                def rogue():
                    return random.Random().random()
                """,
            },
        )
        result = check_project([root], baseline_path=None, cache_path=None)
        assert result.findings == []

    def test_syntax_error_reported_as_parse_finding(self, tmp_path):
        root = self._write_tree(
            tmp_path, {"core/broken.py": "def broken(:\n    pass\n"}
        )
        result = check_project([root], baseline_path=None, cache_path=None)
        assert [f.rule_id for f in result.findings] == ["PARSE"]
        assert result.findings[0].line == 1

    def test_baseline_filters_and_reports_stale(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            {
                "core/evil.py": """
                import random

                def rogue():
                    return random.Random().random()
                """
            },
        )
        evil_path = root + "/core/evil.py"
        baseline = tmp_path / "flow-baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "FLOW101",
                            "path": evil_path,
                            "function": "repro.core.evil.rogue",
                            "reason": "fixture: accepted for the test",
                        },
                        {
                            "rule": "FLOW101",
                            "path": evil_path,
                            "function": "repro.core.evil.gone",
                            "reason": "fixture: this one is stale",
                        },
                    ]
                }
            ),
            encoding="utf-8",
        )
        result = check_project(
            [root], baseline_path=str(baseline), cache_path=None
        )
        assert [f.rule_id for f in result.findings] == ["BASELINE"]
        assert "stale" in result.findings[0].message

    def test_malformed_baseline_is_a_finding(self, tmp_path):
        root = self._write_tree(tmp_path, {"core/ok.py": "x = 1\n"})
        baseline = tmp_path / "flow-baseline.json"
        baseline.write_text(
            json.dumps({"entries": [{"rule": "FLOW101"}]}), encoding="utf-8"
        )
        result = check_project(
            [root], baseline_path=str(baseline), cache_path=None
        )
        assert [f.rule_id for f in result.findings] == ["BASELINE"]
        assert "malformed" in result.findings[0].message

    def test_baseline_reason_must_be_nonempty(self, tmp_path):
        baseline = tmp_path / "flow-baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "FLOW101",
                            "path": "x.py",
                            "function": "m.f",
                            "reason": "   ",
                        }
                    ]
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="empty reason"):
            load_baseline(str(baseline))


class TestCliProjectMode:
    def test_sarif_output_shape(self, tmp_path, capsys):
        from repro.checkers.cli import main

        root = tmp_path / "src" / "repro" / "core"
        root.mkdir(parents=True)
        (root / "evil.py").write_text(
            "import random\n\ndef rogue():\n"
            "    return random.Random().random()\n",
            encoding="utf-8",
        )
        code = main(
            [
                str(tmp_path / "src" / "repro"),
                "--project",
                "--format",
                "sarif",
                "--no-cache",
            ]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        [run] = log["runs"]
        [result] = [
            r for r in run["results"] if r["ruleId"] == "FLOW101"
        ]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 4
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"FLOW101", "ENC201", "TRC301"} <= rule_ids

    def test_sarif_requires_project(self, capsys):
        from repro.checkers.cli import main

        assert main(["src/repro", "--format", "sarif"]) == 2
