"""Golden trace regression: the pinned traced mini-run must reproduce.

``tests/golden/trace_golden.jsonl`` pins the byte-exact JSONL export of
one seeded faulty day, and ``trace_golden_chrome.json`` its Chrome
``trace_event`` export.  Any drift means a change altered the event
vocabulary, the emission order, or the exporter formatting; if that is
intended, regenerate with ``tests/golden/update_goldens.py`` and explain
the diff in review.
"""

import json
import os

import pytest

from repro.obs import (
    events_to_chrome,
    events_to_jsonl,
    read_jsonl,
    validate_chrome_trace,
)
from tests.golden.update_goldens import (
    TRACE_CHROME_PATH,
    TRACE_GOLDEN_PATH,
    record_trace,
)


@pytest.fixture(scope="module")
def tracer():
    for path in (TRACE_GOLDEN_PATH, TRACE_CHROME_PATH):
        assert os.path.exists(path), (
            f"missing {os.path.basename(path)}; run "
            "PYTHONPATH=src python tests/golden/update_goldens.py"
        )
    return record_trace()


def test_jsonl_matches_golden_byte_for_byte(tracer):
    with open(TRACE_GOLDEN_PATH, encoding="utf-8") as handle:
        pinned = handle.read()
    assert events_to_jsonl(tracer.events) == pinned


def test_golden_jsonl_parses_back_to_the_same_events(tracer):
    assert read_jsonl(TRACE_GOLDEN_PATH) == tracer.events


def test_chrome_golden_is_schema_valid_and_current(tracer):
    with open(TRACE_CHROME_PATH, encoding="utf-8") as handle:
        pinned = json.load(handle)
    validate_chrome_trace(pinned)
    # Regenerating from the pinned seed produces the same document.
    assert events_to_chrome(tracer.events) == pinned


def test_golden_trace_covers_every_category(tracer):
    categories = {event.category for event in tracer.events}
    assert {"farm", "sim", "power", "migration", "fault",
            "policy"} <= categories
