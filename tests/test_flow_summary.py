"""Extraction + linking coverage: summaries, call graph, RNG fixpoint.

Exercises the parts of :mod:`repro.checkers.flow` that the rule-level
tests take for granted: decorated functions, lambdas, self-dispatch
across inheritance, call cycles reaching fixpoint, JSON round-trips,
and the content-hash summary cache.
"""

import textwrap

from repro.checkers.flow.cache import SummaryCache
from repro.checkers.flow.project import ProjectContext
from repro.checkers.flow.summary import ModuleSummary, summarize_source


def summarize(source: str, module: str = "repro.farm.demo") -> ModuleSummary:
    path = "src/" + module.replace(".", "/") + ".py"
    return summarize_source(textwrap.dedent(source), path, module)


def link(*summaries: ModuleSummary) -> ProjectContext:
    return ProjectContext(summaries)


class TestExtraction:
    def test_decorated_function_keeps_kind_and_calls(self):
        summary = summarize(
            """
            import functools

            @functools.lru_cache(maxsize=None)
            def cached(x):
                return helper(x)

            def helper(x):
                return x
            """
        )
        func = summary.functions["cached"]
        assert func.kind == "function"
        assert "lru_cache" in func.decorators
        assert any(c.callee == ("global", "helper") for c in func.calls)

    def test_call_through_decorated_function_resolves(self):
        ctx = link(
            summarize(
                """
                import functools
                import random

                @functools.lru_cache(maxsize=None)
                def draws(rng):
                    return rng.random()

                def caller(seed):
                    return draws(random.Random(7))
                """
            )
        )
        key = ("repro.farm.demo", "draws")
        assert key in ctx.transitive_draws
        assert ("repro.farm.demo", "caller") in ctx.transitive_draws
        # The seeded Random flowed into the decorated callee's param.
        assert any(
            t.startswith("seeded:") for t in ctx.param_rng[(key, "rng")]
        )

    def test_lambda_gets_its_own_summary(self):
        summary = summarize(
            """
            def outer(items, rng):
                return sorted(items, key=lambda v: rng.random() + v)
            """
        )
        lambdas = [q for q in summary.functions if "<lambda" in q]
        assert len(lambdas) == 1
        lam = summary.functions[lambdas[0]]
        assert any(
            c.callee == ("getattr", ("param", "rng"), "random")
            for c in lam.calls
        )

    def test_methods_staticmethods_classmethods(self):
        summary = summarize(
            """
            class Box:
                def normal(self):
                    return self.x

                @staticmethod
                def still(v):
                    return v

                @classmethod
                def build(cls):
                    return cls()
            """
        )
        assert summary.functions["Box.normal"].kind == "method"
        assert summary.functions["Box.still"].kind == "staticmethod"
        assert summary.functions["Box.build"].kind == "classmethod"
        assert summary.classes["Box"].methods["normal"] == "Box.normal"

    def test_parse_error_recorded_not_raised(self):
        summary = summarize("def broken(:\n    pass\n")
        assert summary.parse_error is not None
        assert summary.parse_error[0] == 1
        assert summary.functions == {}

    def test_json_roundtrip_is_exact(self):
        summary = summarize(
            """
            import random

            class Sampler:
                def __init__(self, rng: random.Random) -> None:
                    self._rng = rng

                def draw(self) -> float:
                    return self._rng.random()
            """
        )
        recovered = ModuleSummary.from_json(summary.to_json())
        assert recovered.to_json() == summary.to_json()
        assert recovered.functions["Sampler.draw"].calls[0].callee == (
            "getattr",
            ("selfattr", "_rng"),
            "random",
        )


class TestLinking:
    def test_self_dispatch_across_inheritance(self):
        base = summarize(
            """
            class Base:
                def template(self):
                    return self.step()

                def step(self):
                    return 0
            """,
            module="repro.farm.base",
        )
        sub = summarize(
            """
            import random
            from repro.farm.base import Base

            class Sub(Base):
                def __init__(self, rng: random.Random) -> None:
                    self._rng = rng

                def step(self):
                    return self._rng.random()
            """,
            module="repro.farm.sub",
        )
        ctx = link(base, sub)
        assert ctx.find_method("repro.farm.sub.Sub", "template") == (
            "repro.farm.base",
            "Base.template",
        )
        assert ctx.find_method("repro.farm.sub.Sub", "step") == (
            "repro.farm.sub",
            "Sub.step",
        )
        # Base.template calls self.step(); the subclass override draws,
        # so both the override and the base template are stochastic.
        assert ("repro.farm.sub", "Sub.step") in ctx.transitive_draws

    def test_call_cycle_reaches_fixpoint(self):
        ctx = link(
            summarize(
                """
                import random

                def ping(rng, depth):
                    if depth <= 0:
                        return rng.random()
                    return pong(rng, depth - 1)

                def pong(rng, depth):
                    return ping(rng, depth)

                def entry():
                    return ping(random.Random(3), 4)
                """
            )
        )
        module = "repro.farm.demo"
        for qual in ("ping", "pong", "entry"):
            assert (module, qual) in ctx.transitive_draws
        # Attribution propagated around the ping<->pong cycle.
        assert ctx.param_rng[((module, "ping"), "rng")]
        assert ctx.param_rng[((module, "pong"), "rng")]

    def test_union_default_rng_attributes_both_branches(self):
        ctx = link(
            summarize(
                """
                import random

                class Manager:
                    def __init__(self, rng=None):
                        self.rng = rng if rng is not None else random.Random(0)

                    def act(self):
                        return self.rng.random()
                """
            )
        )
        [draw] = [
            d for d in ctx.draws if d.func == ("repro.farm.demo", "Manager.act")
        ]
        assert any(t.startswith("seeded:") for t in draw.tokens)

    def test_streams_literal_get_yields_named_stream(self):
        streams_mod = summarize(
            """
            import random

            class RngStreams:
                def get(self, name: str) -> random.Random:
                    return random.Random(0)
            """,
            module="repro.simulator.randomness",
        )
        user_mod = summarize(
            """
            from repro.simulator.randomness import RngStreams

            class Engine:
                def __init__(self, streams: RngStreams) -> None:
                    self._rng = streams.get("traffic")

                def act(self):
                    return self._rng.random()
            """,
            module="repro.farm.engine",
        )
        ctx = link(streams_mod, user_mod)
        [draw] = [
            d for d in ctx.draws
            if d.func == ("repro.farm.engine", "Engine.act")
        ]
        assert draw.tokens == frozenset({"stream:traffic"})


class TestSummaryCache:
    def test_hit_miss_and_invalidation(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        src_a = "def f():\n    return 1\n"
        src_b = "def f():\n    return 2\n"

        cache = SummaryCache(str(cache_file))
        cache.summarize(src_a, "a.py", "repro.a")
        assert (cache.hits, cache.misses) == (0, 1)
        cache.save()

        warm = SummaryCache(str(cache_file))
        warm.summarize(src_a, "a.py", "repro.a")
        assert (warm.hits, warm.misses) == (1, 0)
        # Changed content misses and replaces the entry.
        warm.summarize(src_b, "a.py", "repro.a")
        assert warm.misses == 1
        warm.save()

        final = SummaryCache(str(cache_file))
        summary = final.summarize(src_b, "a.py", "repro.a")
        assert final.hits == 1
        assert summary.functions["f"].returns[0][1] == ("const", 2)

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache_file = tmp_path / "cache.json"
        cache = SummaryCache(str(cache_file))
        cache.summarize("x = 1\n", "a.py", "repro.a")
        cache.save()

        import repro.checkers.flow.cache as cache_mod

        monkeypatch.setattr(cache_mod, "SUMMARY_VERSION", 9999)
        stale = SummaryCache(str(cache_file))
        assert stale.entries == {}

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json", encoding="utf-8")
        cache = SummaryCache(str(cache_file))
        cache.summarize("x = 1\n", "a.py", "repro.a")
        assert cache.misses == 1
