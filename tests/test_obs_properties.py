"""Property battery: trace invariants under randomized fault schedules.

Reuses the randomized-schedule harness of
``tests/test_faults_properties.py`` — ~100 small farm days, each with an
independently randomized fault profile, rotating policy and day type —
but runs every day under a :class:`RecordingTracer` and asserts the
invariants any healthy trace must satisfy:

* spans strictly nest and balance (begin/end pair by name, stack empties),
* timestamps are monotone non-decreasing and sequence numbers dense,
* every :class:`FaultCounters` increment has a matching trace event
  (and vice versa — the equalities are exact, not ``>=``),
* per-host power-state chains rebuilt from ``power.*`` events replay
  legally through ``_LEGAL_TRANSITIONS``,
* the metrics registry agrees with the event stream it rode along with,
* every trace exports to a schema-valid Chrome trace document.
"""

import json
import random
from dataclasses import dataclass
from typing import Dict, List

import pytest

from repro.cluster.power import _LEGAL_TRANSITIONS, PowerState
from repro.core import ALL_POLICIES
from repro.farm import FarmConfig, FarmSimulation
from repro.obs import (
    PHASE_BEGIN,
    PHASE_END,
    RecordingTracer,
    TraceEvent,
    events_to_chrome,
    events_to_jsonl,
    validate_chrome_trace,
)
from repro.simulator.randomness import RngStreams
from repro.traces import DayType, generate_ensemble
from tests.test_faults_properties import SMALL_SHAPE, random_profile

# Same tier as the faults battery: tier-1 by default, deselectable in
# CI's quick tier via the marker.
pytestmark = pytest.mark.slow

CASES = 100


@dataclass
class TracedCase:
    """One randomized traced day and everything asserted about it."""

    index: int
    simulation: FarmSimulation
    tracer: RecordingTracer

    @property
    def events(self) -> List[TraceEvent]:
        return self.tracer.events

    def named(self, name: str) -> List[TraceEvent]:
        return [event for event in self.events if event.name == name]


@pytest.fixture(scope="module")
def battery() -> List[TracedCase]:
    master = random.Random(0x0B5EFA17)
    cases: List[TracedCase] = []
    for index in range(CASES):
        profile = random_profile(master, index)
        policy = ALL_POLICIES[index % len(ALL_POLICIES)]
        day_type = (DayType.WEEKDAY, DayType.WEEKEND)[index % 2]
        config = FarmConfig(**SMALL_SHAPE, faults=profile)
        ensemble = generate_ensemble(
            config.total_vms,
            day_type,
            seed=RngStreams(index).get("traces").randrange(2**31),
            config=config.traces,
        )
        tracer = RecordingTracer()
        simulation = FarmSimulation(
            config, policy, ensemble, seed=index, tracer=tracer
        )
        simulation.run()
        cases.append(TracedCase(index, simulation, tracer))
    return cases


class TestSpanStructure:
    def test_spans_strictly_nest_and_balance(self, battery):
        for case in battery:
            assert case.tracer.open_span_count == 0
            stack = []
            for event in case.events:
                if event.phase == PHASE_BEGIN:
                    stack.append((event.name, event.category))
                elif event.phase == PHASE_END:
                    assert stack, (
                        f"case {case.index}: end of {event.name!r} "
                        "with no open span"
                    )
                    name, category = stack.pop()
                    assert (name, category) == (event.name, event.category)
            assert stack == [], f"case {case.index}: unclosed spans {stack}"

    def test_day_span_encloses_whole_trace(self, battery):
        for case in battery:
            first, last = case.events[0], case.events[-1]
            assert (first.name, first.phase) == ("farm.day", PHASE_BEGIN)
            assert (last.name, last.phase) == ("farm.day", PHASE_END)

    def test_timestamps_monotone_and_seqs_dense(self, battery):
        for case in battery:
            times = [event.time_s for event in case.events]
            assert times == sorted(times), f"case {case.index}: time warp"
            assert [event.seq for event in case.events] == list(
                range(len(case.events))
            )


class TestCounterEventMatching:
    """Each FaultCounters field equals its trace-event witness, exactly."""

    def test_battery_exercises_every_fault_class(self, battery):
        totals = [case.simulation.result.faults for case in battery]
        assert sum(c.migration_aborts for c in totals) > 0
        assert sum(c.migration_retries for c in totals) > 0
        assert sum(c.wake_give_ups for c in totals) > 0
        assert sum(c.memserver_crashes for c in totals) > 0
        assert sum(c.page_fetch_timeouts for c in totals) > 0

    def test_migration_aborts(self, battery):
        for case in battery:
            faults = case.simulation.result.faults
            assert faults.migration_aborts == len(
                case.named("fault.migration_abort")
            )
            rollbacks = case.named("fault.migration_rollback")
            assert faults.migration_aborts == len(rollbacks)
            assert faults.aborted_traffic_mib == pytest.approx(
                sum(event.args["mib"] for event in rollbacks)
            )
            assert faults.migration_retries == len(
                case.named("fault.migration_retry")
            )

    def test_wake_failures(self, battery):
        for case in battery:
            faults = case.simulation.result.faults
            failures = case.named("fault.wake_failure")
            assert faults.wake_give_ups == sum(
                1 for event in failures if event.args["gave_up"]
            )
            assert faults.wake_retries == sum(
                event.args["failed_attempts"]
                - (1 if event.args["gave_up"] else 0)
                for event in failures
            )
            assert faults.wake_reroutes == len(
                case.named("fault.wake_reroute")
            )

    def test_memserver_crashes(self, battery):
        for case in battery:
            faults = case.simulation.result.faults
            assert faults.memserver_crashes == len(
                case.named("fault.memserver_crash")
            )
            forced = case.named("fault.crash_forced_wakeup")
            assert faults.crash_forced_wakeups == len(forced)
            assert faults.crash_forced_reintegrations == sum(
                event.args["reintegrations"] for event in forced
            )

    def test_page_timeouts(self, battery):
        for case in battery:
            faults = case.simulation.result.faults
            drawn = sum(
                event.args["timeouts"]
                for event in case.named("fault.page_timeouts")
            )
            charged = case.named("fault.page_retry")
            assert faults.page_fetch_timeouts == drawn
            assert faults.page_fetch_timeouts == sum(
                event.args["timeouts"] for event in charged
            )
            assert faults.page_retry_traffic_mib == pytest.approx(
                sum(event.args["retry_mib"] for event in charged)
            )


class TestPowerTransitionReplay:
    def test_chains_replay_legally(self, battery):
        for case in battery:
            state: Dict[int, str] = {}
            for event in case.named("power.init"):
                state[event.args["host"]] = event.args["state"]
            assert len(state) == len(case.simulation.cluster)
            transitions = case.named("power.transition")
            assert transitions, f"case {case.index}: no transitions traced"
            for event in transitions:
                host = event.args["host"]
                assert event.args["from"] == state[host], (
                    f"case {case.index}: host {host} jumped states"
                )
                target = PowerState(event.args["to"])
                assert target in _LEGAL_TRANSITIONS[
                    PowerState(event.args["from"])
                ], (
                    f"case {case.index}: illegal "
                    f"{event.args['from']} -> {event.args['to']}"
                )
                state[host] = event.args["to"]

    def test_failed_wake_edge_is_traced_somewhere(self, battery):
        edges = {
            (event.args["from"], event.args["to"])
            for case in battery
            for event in case.named("power.transition")
        }
        assert ("resuming", "sleeping") in edges


class TestMetricsAgreeWithEvents:
    def test_migration_mib_counter_sums_event_args(self, battery):
        for case in battery:
            migrations = [
                event for event in case.events
                if event.category == "migration"
            ]
            counter = case.tracer.metrics.counter("migration_mib")
            assert counter.value == pytest.approx(
                sum(event.args["mib"] for event in migrations)
            )
            histogram = case.tracer.metrics.histogram("migration_latency_s")
            assert histogram.count == len(migrations)

    def test_sleep_histogram_covers_every_sleep(self, battery):
        for case in battery:
            histogram = case.tracer.metrics.histogram(
                "host_sleep_duration_s"
            )
            entered_sleep = sum(
                1 for event in case.named("power.transition")
                if event.args["to"] == "sleeping"
            ) + sum(
                1 for event in case.named("power.init")
                if event.args["state"] == "sleeping"
            )
            assert histogram.count == entered_sleep
            assert all(value >= 0.0 for value, _ in histogram.observations)


class TestExportsStaySound:
    def test_every_trace_exports_to_valid_chrome_document(self, battery):
        for case in battery:
            document = events_to_chrome(case.events)
            assert validate_chrome_trace(document) == len(document[
                "traceEvents"
            ])

    def test_jsonl_roundtrip_samples(self, battery):
        for case in battery[::10]:
            lines = events_to_jsonl(case.events).splitlines()
            assert len(lines) == len(case.events)
            parsed = [
                TraceEvent.from_dict(json.loads(line)) for line in lines
            ]
            assert parsed == case.events
