"""Property-based tests for host accounting and the busy scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, Host, HostRole
from repro.migration import HostBusyScheduler
from repro.vm import VirtualMachine


@st.composite
def host_operations(draw):
    """A random sequence of attach/detach/grow/convert operations."""
    count = draw(st.integers(min_value=1, max_value=12))
    ops = []
    for vm_id in range(1, count + 1):
        partial = draw(st.booleans())
        ws = draw(st.floats(min_value=16.0, max_value=1024.0))
        ops.append(("attach", vm_id, partial, ws))
        action = draw(st.sampled_from(["keep", "detach", "grow", "convert"]))
        ops.append((action, vm_id, partial, ws))
    return ops


class TestHostAccountingProperties:
    @given(ops=host_operations())
    @settings(max_examples=100, deadline=None)
    def test_incremental_accounting_never_drifts(self, ops):
        cluster = Cluster(1, 1, host_capacity_mib=1e6)
        host = cluster.host(1)  # consolidation host can hold partials
        vms = {}
        for op, vm_id, partial, ws in ops:
            if op == "attach":
                vm = VirtualMachine(vm_id, 0, 4096.0)
                if partial:
                    vm.become_partial(1, ws)
                    host.attach(vm)
                else:
                    vm.full_migrate(1)
                    host.attach(vm)
                vms[vm_id] = vm
            elif op == "detach":
                host.detach(vm_id)
                del vms[vm_id]
            elif op == "grow" and vms[vm_id].is_partial:
                host.grow_partial_vm(vm_id, 32.0)
            elif op == "convert" and vms[vm_id].is_partial:
                host.convert_vm_full_in_place(vm_id)
            cluster.check_invariants()

    @given(
        working_sets=st.lists(
            st.floats(min_value=16.0, max_value=4096.0),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fraction_returns_to_zero_after_full_drain(self, working_sets):
        host = Host(1, HostRole.CONSOLIDATION, capacity_mib=1e6)
        for vm_id, ws in enumerate(working_sets, start=1):
            vm = VirtualMachine(vm_id, 0, 4096.0)
            vm.become_partial(1, ws)
            host.attach(vm)
        for vm_id in list(host.vm_ids):
            host.detach(vm_id)
        assert host.used_mib == pytest.approx(0.0, abs=1e-6)
        assert host.partial_resident_fraction == pytest.approx(0.0, abs=1e-9)
        assert host.full_vm_count == 0


class TestSchedulerProperties:
    @given(
        jobs=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),        # resource
                st.floats(min_value=0.0, max_value=50.0),  # now offset
                st.floats(min_value=0.1, max_value=20.0),  # latency
                st.floats(min_value=0.0, max_value=10.0),  # occupancy
            ),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_reservations_never_overlap_per_resource(self, jobs):
        scheduler = HostBusyScheduler()
        spans = {}
        clock = 0.0
        for resource, advance, latency, occupancy in jobs:
            clock += advance
            occupancy = min(occupancy, latency)
            start, end = scheduler.reserve(
                [resource], clock, latency, occupancy_s=occupancy
            )
            assert start >= clock
            assert end == pytest.approx(start + latency)
            previous = spans.get(resource)
            if previous is not None:
                # Occupancy windows on one resource never overlap.
                assert start >= previous - 1e-9
            spans[resource] = start + occupancy
            assert scheduler.release_after(resource) >= end - 1e-9
