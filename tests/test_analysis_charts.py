"""ASCII chart renderers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import cdf_chart, line_chart, sparkline
from repro.errors import ConfigError


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_downsampling_to_width(self):
        assert len(sparkline(list(range(288)), width=72)) == 72

    def test_extremes_use_extreme_glyphs(self):
        line = sparkline([0.0, 10.0])
        assert line[0] != line[1]
        assert line[-1] == "█"

    def test_flat_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([])
        with pytest.raises(ConfigError):
            sparkline([1.0], width=0)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=1, max_size=500,
        ),
        width=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=80, deadline=None)
    def test_never_longer_than_width(self, values, width):
        line = sparkline(values, width=width)
        assert 1 <= len(line) <= width
        assert all(ch in " ▁▂▃▄▅▆▇█" for ch in line)


class TestLineChart:
    def test_dimensions(self):
        chart = line_chart([1.0, 5.0, 2.0, 8.0], width=20, height=6)
        lines = chart.splitlines()
        assert len(lines) == 8  # header + 6 rows + footer
        assert all(len(line) <= 20 for line in lines[1:-1])

    def test_annotations(self):
        chart = line_chart([1.0, 9.0], label="active VMs")
        assert "active VMs" in chart
        assert "max=9" in chart
        assert "min=1" in chart

    def test_validation(self):
        with pytest.raises(ConfigError):
            line_chart([])
        with pytest.raises(ConfigError):
            line_chart([1.0], width=0)


class TestCdfChart:
    def test_quantile_rows(self):
        points = [(float(v), (v + 1) / 10.0) for v in range(10)]
        chart = cdf_chart(points, label="delays")
        assert "delays" in chart
        assert "p 50.0" in chart
        assert "p100.0" in chart

    def test_monotone_bars(self):
        points = [(1.0, 0.5), (2.0, 1.0)]
        lines = cdf_chart(points).splitlines()
        bar_lengths = [line.count("#") for line in lines]
        assert bar_lengths == sorted(bar_lengths)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            cdf_chart([])

    def test_unlabeled_chart_has_only_quantile_rows(self):
        lines = cdf_chart([(1.0, 1.0)]).splitlines()
        assert len(lines) == 6
        assert all(line.startswith("p") for line in lines)

    def test_value_beyond_last_point_clamps_to_max(self):
        # Cumulative probability tops out below the p90/p99/p100 probes;
        # the chart must fall back to the largest value, not crash.
        chart = cdf_chart([(1.0, 0.3), (2.0, 0.6)])
        rows = {
            line[:6]: float(line[6:].split("|")[0])
            for line in chart.splitlines()
        }
        assert rows["p 25.0"] == 1.0
        assert rows["p 50.0"] == 2.0
        assert rows["p100.0"] == 2.0


class TestChartEdges:
    def test_unlabeled_line_chart_header(self):
        lines = line_chart([1.0, 9.0], width=10, height=2).splitlines()
        assert lines[0] == "max=9"
        assert lines[-1] == "min=1"

    def test_flat_line_chart_renders_without_span(self):
        chart = line_chart([4.0, 4.0, 4.0], width=10, height=3)
        assert "max=4" in chart and "min=4" in chart

    def test_sparkline_downsampling_averages_buckets(self):
        line = sparkline([0.0, 0.0, 10.0, 10.0], width=2)
        assert len(line) == 2
        assert line[0] == "▁" and line[1] == "█"
