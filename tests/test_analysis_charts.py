"""ASCII chart renderers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import cdf_chart, line_chart, sparkline
from repro.errors import ConfigError


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_downsampling_to_width(self):
        assert len(sparkline(list(range(288)), width=72)) == 72

    def test_extremes_use_extreme_glyphs(self):
        line = sparkline([0.0, 10.0])
        assert line[0] != line[1]
        assert line[-1] == "█"

    def test_flat_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([])
        with pytest.raises(ConfigError):
            sparkline([1.0], width=0)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=1, max_size=500,
        ),
        width=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=80, deadline=None)
    def test_never_longer_than_width(self, values, width):
        line = sparkline(values, width=width)
        assert 1 <= len(line) <= width
        assert all(ch in " ▁▂▃▄▅▆▇█" for ch in line)


class TestLineChart:
    def test_dimensions(self):
        chart = line_chart([1.0, 5.0, 2.0, 8.0], width=20, height=6)
        lines = chart.splitlines()
        assert len(lines) == 8  # header + 6 rows + footer
        assert all(len(line) <= 20 for line in lines[1:-1])

    def test_annotations(self):
        chart = line_chart([1.0, 9.0], label="active VMs")
        assert "active VMs" in chart
        assert "max=9" in chart
        assert "min=1" in chart

    def test_validation(self):
        with pytest.raises(ConfigError):
            line_chart([])
        with pytest.raises(ConfigError):
            line_chart([1.0], width=0)


class TestCdfChart:
    def test_quantile_rows(self):
        points = [(float(v), (v + 1) / 10.0) for v in range(10)]
        chart = cdf_chart(points, label="delays")
        assert "delays" in chart
        assert "p 50.0" in chart
        assert "p100.0" in chart

    def test_monotone_bars(self):
        points = [(1.0, 0.5), (2.0, 1.0)]
        lines = cdf_chart(points).splitlines()
        bar_lengths = [line.count("#") for line in lines]
        assert bar_lengths == sorted(bar_lengths)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            cdf_chart([])
