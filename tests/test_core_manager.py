"""Cluster-manager decisions: activations and exchanges per policy."""

import random

from repro.cluster import Cluster
from repro.core import (
    ActivationAction,
    ClusterManager,
    DEFAULT,
    FULL_TO_PARTIAL,
    NEW_HOME,
    ONLY_PARTIAL,
)
from repro.vm import VirtualMachine, VmActivity, WorkingSetSampler


def build(policy, homes=2, consolidation=2, capacity=3 * 4096.0):
    cluster = Cluster(homes, consolidation, capacity)
    manager = ClusterManager(
        cluster, policy, WorkingSetSampler(), random.Random(0)
    )
    return cluster, manager


def consolidated_partial(cluster, vm_id=1, home=0, dest=None, ws=160.0):
    dest = dest if dest is not None else cluster.consolidation_hosts[0].host_id
    vm = VirtualMachine(vm_id, home, 4096.0)
    vm.become_partial(dest, ws)
    cluster.host(dest).attach(vm)
    cluster.host(home).add_served_image(vm_id)
    return vm


class TestActivationDecisions:
    def test_full_vm_needs_nothing(self):
        cluster, manager = build(DEFAULT)
        vm = VirtualMachine(1, 0, 4096.0)
        cluster.host(0).attach(vm)
        decision = manager.decide_activation(vm)
        assert decision.action is ActivationAction.ALREADY_FULL

    def test_partial_with_space_converts_in_place(self):
        cluster, manager = build(DEFAULT)
        vm = consolidated_partial(cluster)
        decision = manager.decide_activation(vm)
        assert decision.action is ActivationAction.CONVERT_IN_PLACE
        assert decision.target_host_id == vm.host_id

    def test_partial_without_space_wakes_home(self):
        cluster, manager = build(DEFAULT, capacity=4096.0)
        # Fill the consolidation host so the conversion cannot fit.
        filler = VirtualMachine(9, 1, 4096.0)
        filler.become_partial(2, 3900.0)
        cluster.host(2).attach(filler)
        vm = consolidated_partial(cluster, vm_id=1, home=0, dest=2, ws=150.0)
        decision = manager.decide_activation(vm)
        assert decision.action is ActivationAction.WAKE_HOME_RETURN_ALL
        assert decision.target_host_id == 0

    def test_only_partial_always_returns_home(self):
        cluster, manager = build(ONLY_PARTIAL)
        vm = consolidated_partial(cluster)
        decision = manager.decide_activation(vm)
        assert decision.action is ActivationAction.WAKE_HOME_RETURN_ALL

    def test_new_home_rehomes_before_waking(self):
        cluster, manager = build(NEW_HOME, capacity=4096.0 + 200.0)
        vm = consolidated_partial(cluster, ws=150.0)
        # A second partial fills the host so the ~3.9 GiB in-place
        # conversion cannot fit — but other powered hosts have room.
        filler = consolidated_partial(cluster, vm_id=8, home=1, ws=300.0)
        assert filler.host_id == vm.host_id
        decision = manager.decide_activation(vm)
        assert decision.action is ActivationAction.MIGRATE_NEW_HOME
        assert decision.target_host_id != vm.host_id

    def test_new_home_falls_back_to_waking_when_cluster_full(self):
        cluster, manager = build(
            NEW_HOME, homes=1, consolidation=1, capacity=4096.0 + 200.0
        )
        vm = consolidated_partial(cluster, dest=1, ws=150.0)
        filler = VirtualMachine(8, 0, 4096.0)
        filler.become_partial(1, 300.0)
        cluster.host(1).attach(filler)
        # Home host 0 is occupied by another full VM, leaving no space.
        blocker = VirtualMachine(5, 0, 4096.0)
        cluster.host(0).attach(blocker)
        decision = manager.decide_activation(vm)
        assert decision.action is ActivationAction.WAKE_HOME_RETURN_ALL


class TestExchangePlanning:
    def _with_idle_full_on_consolidation(self, policy):
        cluster, manager = build(policy)
        vm = VirtualMachine(1, 0, 4096.0)
        vm.full_migrate(2)  # consolidated full VM
        vm.set_activity(VmActivity.IDLE)
        vm.idle_intervals = 2
        cluster.host(2).attach(vm)
        return cluster, manager, vm

    def test_full_to_partial_plans_exchanges(self):
        _cluster, manager, vm = self._with_idle_full_on_consolidation(
            FULL_TO_PARTIAL
        )
        exchanges = manager.plan_exchanges()
        assert len(exchanges) == 1
        assert exchanges[0].vm_id == vm.vm_id
        assert exchanges[0].origin_home_id == 0
        assert exchanges[0].consolidation_host_id == 2
        assert 0.0 < exchanges[0].working_set_mib <= 4096.0

    def test_default_plans_no_exchanges(self):
        _cluster, manager, _vm = self._with_idle_full_on_consolidation(DEFAULT)
        assert manager.plan_exchanges() == []

    def test_active_full_vms_not_exchanged(self):
        cluster, manager, vm = self._with_idle_full_on_consolidation(
            FULL_TO_PARTIAL
        )
        vm.set_activity(VmActivity.ACTIVE)
        assert manager.plan_exchanges() == []

    def test_partial_vms_not_exchanged(self):
        cluster, manager = build(FULL_TO_PARTIAL)
        consolidated_partial(cluster)
        assert manager.plan_exchanges() == []

    def test_fresh_idlers_wait_for_hysteresis(self):
        cluster, manager, vm = self._with_idle_full_on_consolidation(
            FULL_TO_PARTIAL
        )
        manager.min_idle_intervals = 3
        vm.idle_intervals = 1
        assert manager.plan_exchanges() == []
