"""VM state machine: activity, residency, placement invariants."""

import pytest

from repro.errors import MigrationError
from repro.vm import Residency, VirtualMachine, VmActivity


def make_vm():
    return VirtualMachine(vm_id=1, origin_home_id=0, memory_mib=4096.0)


class TestInitialState:
    def test_starts_full_and_idle_at_origin(self):
        vm = make_vm()
        assert vm.residency is Residency.FULL
        assert vm.activity is VmActivity.IDLE
        assert vm.host_id == vm.home_id == vm.origin_home_id == 0
        assert vm.resident_mib == 4096.0
        assert vm.resident_fraction == 1.0

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(MigrationError):
            VirtualMachine(1, 0, 0.0)


class TestActivity:
    def test_idle_streak_counting(self):
        vm = make_vm()
        vm.set_activity(VmActivity.IDLE)
        vm.set_activity(VmActivity.IDLE)
        assert vm.idle_intervals == 2
        vm.set_activity(VmActivity.ACTIVE)
        assert vm.idle_intervals == 0
        assert vm.is_active
        vm.set_activity(VmActivity.IDLE)
        assert vm.idle_intervals == 1


class TestPartialMigration:
    def test_become_partial(self):
        vm = make_vm()
        vm.become_partial(destination_id=9, working_set_mib=170.0)
        assert vm.is_partial
        assert vm.host_id == 9
        assert vm.home_id == 0  # image stays home
        assert vm.resident_mib == pytest.approx(170.0)
        assert vm.resident_fraction == pytest.approx(170.0 / 4096.0)

    def test_partial_to_home_rejected(self):
        vm = make_vm()
        with pytest.raises(MigrationError):
            vm.become_partial(destination_id=0, working_set_mib=100.0)

    def test_double_partial_rejected(self):
        vm = make_vm()
        vm.become_partial(9, 100.0)
        with pytest.raises(MigrationError):
            vm.become_partial(8, 100.0)

    def test_working_set_bounds(self):
        vm = make_vm()
        with pytest.raises(MigrationError):
            vm.become_partial(9, 0.0)
        with pytest.raises(MigrationError):
            vm.become_partial(9, 5000.0)

    def test_relocate_partial(self):
        vm = make_vm()
        vm.become_partial(9, 100.0)
        vm.relocate_partial(8)
        assert vm.host_id == 8
        assert vm.home_id == 0
        assert vm.is_partial

    def test_relocate_to_home_rejected(self):
        vm = make_vm()
        vm.become_partial(9, 100.0)
        with pytest.raises(MigrationError):
            vm.relocate_partial(0)

    def test_relocate_requires_partial(self):
        with pytest.raises(MigrationError):
            make_vm().relocate_partial(5)


class TestReintegration:
    def test_reintegrate_returns_home_full(self):
        vm = make_vm()
        vm.become_partial(9, 100.0)
        vm.reintegrate()
        assert vm.residency is Residency.FULL
        assert vm.host_id == vm.home_id == 0
        assert vm.working_set_mib is None

    def test_reintegrate_requires_partial(self):
        with pytest.raises(MigrationError):
            make_vm().reintegrate()


class TestFullConversions:
    def test_become_full_in_place_rehomes(self):
        vm = make_vm()
        vm.become_partial(9, 100.0)
        vm.become_full_in_place()
        assert vm.residency is Residency.FULL
        assert vm.host_id == vm.home_id == 9
        assert vm.origin_home_id == 0  # origin never changes

    def test_become_full_at_new_host(self):
        vm = make_vm()
        vm.become_partial(9, 100.0)
        vm.become_full_at(4)
        assert vm.host_id == vm.home_id == 4

    def test_become_full_requires_partial(self):
        with pytest.raises(MigrationError):
            make_vm().become_full_at(4)

    def test_full_migrate_moves_home(self):
        vm = make_vm()
        vm.full_migrate(7)
        assert vm.host_id == vm.home_id == 7
        assert vm.residency is Residency.FULL

    def test_full_migrate_requires_full(self):
        vm = make_vm()
        vm.become_partial(9, 100.0)
        with pytest.raises(MigrationError):
            vm.full_migrate(7)


class TestWorkingSetGrowth:
    def test_growth(self):
        vm = make_vm()
        vm.become_partial(9, 100.0)
        vm.grow_working_set(50.0)
        assert vm.working_set_mib == pytest.approx(150.0)

    def test_growth_caps_at_allocation(self):
        vm = make_vm()
        vm.become_partial(9, 4000.0)
        vm.grow_working_set(500.0)
        assert vm.working_set_mib == pytest.approx(4096.0)

    def test_growth_requires_partial(self):
        with pytest.raises(MigrationError):
            make_vm().grow_working_set(1.0)

    def test_negative_growth_rejected(self):
        vm = make_vm()
        vm.become_partial(9, 100.0)
        with pytest.raises(MigrationError):
            vm.grow_working_set(-1.0)

    def test_resident_mib_requires_working_set(self):
        vm = make_vm()
        vm.become_partial(9, 100.0)
        vm.working_set_mib = None  # simulate corruption
        with pytest.raises(MigrationError):
            _ = vm.resident_mib
