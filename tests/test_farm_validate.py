"""The post-run validator itself: it must catch corrupted state."""

import pytest

from repro.core import FULL_TO_PARTIAL
from repro.errors import SimulationError
from repro.farm import FarmConfig, FarmSimulation, validate_simulation
from repro.traces import DayType, TraceEnsemble, UserDayTrace


@pytest.fixture
def finished_simulation():
    config = FarmConfig(home_hosts=2, consolidation_hosts=1, vms_per_host=2)
    ensemble = TraceEnsemble(
        DayType.WEEKDAY,
        tuple(UserDayTrace.all_idle(u, DayType.WEEKDAY) for u in range(4)),
    )
    simulation = FarmSimulation(config, FULL_TO_PARTIAL, ensemble, seed=0)
    simulation.run()
    return simulation


class TestValidator:
    def test_clean_run_passes(self, finished_simulation):
        validate_simulation(finished_simulation)

    def test_unfinished_run_rejected(self):
        config = FarmConfig(home_hosts=2, consolidation_hosts=1,
                            vms_per_host=2)
        ensemble = TraceEnsemble(
            DayType.WEEKDAY,
            tuple(UserDayTrace.all_idle(u, DayType.WEEKDAY)
                  for u in range(4)),
        )
        simulation = FarmSimulation(config, FULL_TO_PARTIAL, ensemble)
        with pytest.raises(SimulationError, match="not run"):
            validate_simulation(simulation)

    def test_catches_lost_vm(self, finished_simulation):
        vm = finished_simulation.vms[0]
        finished_simulation.cluster.host(vm.host_id).detach(vm.vm_id)
        with pytest.raises(SimulationError, match="conservation"):
            validate_simulation(finished_simulation)

    def test_catches_accounting_drift(self, finished_simulation):
        host = finished_simulation.cluster.host(2)
        host._used_mib += 123.0
        with pytest.raises(SimulationError, match="accounting"):
            validate_simulation(finished_simulation)

    def test_catches_orphan_served_image(self, finished_simulation):
        finished_simulation.cluster.host(0).add_served_image(999)
        with pytest.raises(SimulationError, match="image"):
            validate_simulation(finished_simulation)

    def test_catches_negative_delay(self, finished_simulation):
        from repro.farm.metrics import DelaySample

        finished_simulation.result.delays.append(
            DelaySample(time_s=1.0, vm_id=0, delay_s=-1.0, action="x")
        )
        with pytest.raises(SimulationError, match="negative"):
            validate_simulation(finished_simulation)
