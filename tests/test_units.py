"""Unit-convention helpers."""

import math

import pytest

from repro import units


class TestConstants:
    def test_intervals_per_day(self):
        assert units.INTERVALS_PER_DAY == 288

    def test_trace_interval(self):
        assert units.TRACE_INTERVAL_SECONDS == 300.0

    def test_pages_per_mib(self):
        assert units.PAGES_PER_MIB == 256

    def test_default_vm_memory_is_4_gib(self):
        assert units.DEFAULT_VM_MEMORY_MIB == 4096.0

    def test_seconds_per_day(self):
        assert units.SECONDS_PER_DAY == 24 * 3600


class TestConversions:
    def test_mib_gib_roundtrip(self):
        assert units.gib_to_mib(units.mib_to_gib(5120.0)) == pytest.approx(5120.0)

    def test_mib_to_pages(self):
        assert units.mib_to_pages(1.0) == 256
        assert units.mib_to_pages(4096.0) == 1024 * 1024

    def test_pages_to_mib_inverse(self):
        assert units.pages_to_mib(units.mib_to_pages(37.5)) == pytest.approx(37.5)

    def test_joules_wh_roundtrip(self):
        assert units.wh_to_joules(units.joules_to_wh(7200.0)) == pytest.approx(7200.0)

    def test_one_wh_is_3600_joules(self):
        assert units.wh_to_joules(1.0) == 3600.0


class TestTransferSeconds:
    def test_basic(self):
        assert units.transfer_seconds(128.0, 128.0) == pytest.approx(1.0)

    def test_zero_size(self):
        assert units.transfer_seconds(0.0, 100.0) == 0.0

    def test_full_vm_over_gige_is_about_35_seconds(self):
        t = units.transfer_seconds(
            units.DEFAULT_VM_MEMORY_MIB, units.GIGE_MIB_PER_S
        )
        assert 30.0 < t < 40.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(-1.0, 100.0)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(1.0, 0.0)

    def test_sas_rate_matches_paper(self):
        # 128 MiB/s sequential writes (§4.3).
        assert units.SAS_MIB_PER_S == 128.0

    def test_ten_gige_faster_than_gige(self):
        assert units.TEN_GIGE_MIB_PER_S == pytest.approx(
            10 * units.GIGE_MIB_PER_S
        )

    def test_transfer_time_scales_linearly(self):
        one = units.transfer_seconds(10.0, 50.0)
        two = units.transfer_seconds(20.0, 50.0)
        assert math.isclose(two, 2 * one)
