"""Tariff and carbon accounting."""

import pytest

from repro.energy.costs import ElectricityTariff, SavingsStatement
from repro.energy.report import EnergyReport
from repro.errors import ConfigError
from repro.units import wh_to_joules


class TestTariff:
    def test_facility_kwh_applies_pue(self):
        tariff = ElectricityTariff(pue=1.5)
        joules = wh_to_joules(1000.0)  # 1 IT kWh
        assert tariff.facility_kwh(joules) == pytest.approx(1.5)

    def test_cost_and_carbon(self):
        tariff = ElectricityTariff(
            usd_per_kwh=0.2, kg_co2_per_kwh=0.5, pue=1.0
        )
        joules = wh_to_joules(2000.0)
        assert tariff.cost_usd(joules) == pytest.approx(0.4)
        assert tariff.carbon_kg(joules) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ElectricityTariff(usd_per_kwh=-0.1)
        with pytest.raises(ConfigError):
            ElectricityTariff(pue=0.9)
        with pytest.raises(ConfigError):
            ElectricityTariff().facility_kwh(-1.0)


class TestSavingsStatement:
    def _statement(self, **kwargs):
        report = EnergyReport(
            managed_joules=wh_to_joules(70_000.0),
            baseline_joules=wh_to_joules(100_000.0),
        )
        tariff = ElectricityTariff(
            usd_per_kwh=0.10, kg_co2_per_kwh=0.4, pue=1.0
        )
        return SavingsStatement(report, tariff, **kwargs)

    def test_daily_quantities(self):
        statement = self._statement()
        assert statement.daily_kwh == pytest.approx(30.0)
        assert statement.daily_usd == pytest.approx(3.0)
        assert statement.daily_carbon_kg == pytest.approx(12.0)

    def test_annual_scaling(self):
        statement = self._statement(days_per_year=100.0)
        assert statement.annual_usd == pytest.approx(300.0)
        assert statement.annual_carbon_kg == pytest.approx(1200.0)

    def test_string_form(self):
        text = str(self._statement())
        assert "kWh/day" in text
        assert "CO2" in text

    def test_validation(self):
        with pytest.raises(ConfigError):
            self._statement(days_per_year=0.0)

    def test_integrates_with_a_real_run(self):
        from repro.core import FULL_TO_PARTIAL
        from repro.farm import FarmConfig, simulate_day
        from repro.traces import DayType

        result = simulate_day(
            FarmConfig(home_hosts=4, consolidation_hosts=1, vms_per_host=4),
            FULL_TO_PARTIAL, DayType.WEEKEND, seed=0,
        )
        statement = SavingsStatement(result.energy, ElectricityTariff())
        assert statement.daily_usd > 0.0
        assert statement.annual_carbon_kg > 0.0
