"""Link models and the page-service daemon."""

import pytest

from repro.energy import MemoryServerProfile
from repro.errors import ConfigError
from repro.memserver import (
    GIGE_LINK,
    MemoryServer,
    PageServiceModel,
    PageStore,
    SAS_LINK,
    TEN_GIGE_LINK,
    TransferLink,
)
from repro.memserver.pages import PAGE_BYTES


class TestTransferLink:
    def test_transfer_time_includes_setup(self):
        link = TransferLink("test", bandwidth_mib_per_s=100.0, setup_s=1.0)
        assert link.transfer_s(200.0) == pytest.approx(3.0)

    def test_per_op_overhead(self):
        link = TransferLink("test", 100.0, per_op_s=0.01)
        assert link.transfer_s(100.0, operations=10) == pytest.approx(1.1)

    def test_zero_size_zero_ops_is_free(self):
        link = TransferLink("test", 100.0, setup_s=1.0)
        assert link.transfer_s(0.0, operations=0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TransferLink("bad", 0.0)
        with pytest.raises(ConfigError):
            TransferLink("bad", 1.0, setup_s=-1.0)
        with pytest.raises(ConfigError):
            GIGE_LINK.transfer_s(-5.0)

    def test_standard_links(self):
        assert SAS_LINK.bandwidth_mib_per_s == 128.0
        assert TEN_GIGE_LINK.bandwidth_mib_per_s == pytest.approx(
            10 * GIGE_LINK.bandwidth_mib_per_s
        )


class TestPageServiceModel:
    def test_per_fault_budget_is_about_4ms(self):
        # The prototype's spinning-disk path (Figure 6 calibration).
        assert PageServiceModel().per_fault_s == pytest.approx(0.004, abs=0.0005)

    def test_dram_backed_is_much_faster(self):
        disk = PageServiceModel()
        dram = PageServiceModel.dram_backed()
        assert dram.per_fault_s < 0.25 * disk.per_fault_s

    def test_fetch_time_scales_with_pages(self):
        model = PageServiceModel()
        assert model.fetch_time_s(200) == pytest.approx(200 * model.per_fault_s)

    def test_fetch_time_for_mib(self):
        model = PageServiceModel()
        assert model.fetch_time_for_mib(1.0) == pytest.approx(
            256 * model.per_fault_s
        )

    def test_tls_knob_adds_latency(self):
        plain = PageServiceModel()
        secured = PageServiceModel(tls_s=0.001)
        assert secured.per_fault_s == pytest.approx(plain.per_fault_s + 0.001)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PageServiceModel(disk_read_s=-1.0)
        with pytest.raises(ConfigError):
            PageServiceModel().fetch_time_s(-1)


class TestMemoryServer:
    def _server_with_page(self):
        store = PageStore()
        store.upload(3, {0: bytes(PAGE_BYTES)})
        return MemoryServer(host_id=0, store=store)

    def test_serving_lifecycle(self):
        server = self._server_with_page()
        with pytest.raises(ConfigError):
            server.serve_page(3, 0)  # not serving yet
        server.start_serving()
        blob = server.serve_page(3, 0)
        assert blob  # compressed page bytes
        assert server.requests_served == 1
        server.stop_serving()
        with pytest.raises(ConfigError):
            server.serve_page(3, 0)

    def test_serving_requires_store(self):
        server = MemoryServer(host_id=0)
        server.start_serving()
        with pytest.raises(ConfigError):
            server.serve_page(1, 0)

    def test_power_matches_profile(self):
        server = MemoryServer(host_id=0)
        assert server.power_w == pytest.approx(42.2)
        lean = MemoryServer(
            host_id=0, profile=MemoryServerProfile.alternative(2.0)
        )
        assert lean.power_w == 2.0
