"""Cluster construction and aggregate queries."""

import pytest

from repro.cluster import Cluster, HostRole, PowerState
from repro.errors import ConfigError
from repro.vm import VirtualMachine


class TestConstruction:
    def test_host_counts_and_roles(self):
        cluster = Cluster(home_hosts=3, consolidation_hosts=2,
                          host_capacity_mib=1000.0)
        assert len(cluster) == 5
        assert len(cluster.home_hosts) == 3
        assert len(cluster.consolidation_hosts) == 2

    def test_dense_host_ids_homes_first(self):
        cluster = Cluster(3, 2, 1000.0)
        assert [h.host_id for h in cluster.home_hosts] == [0, 1, 2]
        assert [h.host_id for h in cluster.consolidation_hosts] == [3, 4]

    def test_memory_servers_only_on_compute_hosts(self):
        cluster = Cluster(2, 2, 1000.0)
        assert all(h.memory_server_enabled for h in cluster.home_hosts)
        assert not any(
            h.memory_server_enabled for h in cluster.consolidation_hosts
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            Cluster(0, 1, 1000.0)
        with pytest.raises(ConfigError):
            Cluster(1, 0, 1000.0)

    def test_unknown_host_lookup(self):
        with pytest.raises(ConfigError):
            Cluster(1, 1, 1000.0).host(99)


class TestAggregates:
    def test_powered_counts(self):
        cluster = Cluster(2, 2, 1000.0)
        cluster.host(3).power_state = PowerState.SLEEPING
        assert cluster.powered_host_count() == 3
        assert cluster.powered_home_count() == 2
        assert cluster.powered_consolidation_count() == 1

    def test_total_running_vms(self):
        cluster = Cluster(2, 1, 10_000.0)
        cluster.host(0).attach(VirtualMachine(1, 0, 4096.0))
        cluster.host(1).attach(VirtualMachine(2, 1, 4096.0))
        assert cluster.total_running_vms() == 2

    def test_invariant_checker_passes_consistent_state(self):
        cluster = Cluster(1, 1, 10_000.0)
        cluster.host(0).attach(VirtualMachine(1, 0, 4096.0))
        cluster.check_invariants()

    def test_invariant_checker_catches_drift(self):
        cluster = Cluster(1, 1, 10_000.0)
        host = cluster.host(0)
        host.attach(VirtualMachine(1, 0, 4096.0))
        host._used_mib = 1.0  # corrupt the incremental accounting
        with pytest.raises(AssertionError):
            cluster.check_invariants()

    def test_roles_enum_values(self):
        assert HostRole.COMPUTE.value == "compute"
        assert HostRole.CONSOLIDATION.value == "consolidation"
