"""Known-value and invariant tests for the pure-stdlib test battery.

The statistical kernels gate engine certification, so they are pinned
against textbook reference points (binomial tail sums, chi-square and
Kolmogorov critical values) rather than against themselves.
"""

import math

import pytest

from repro.equiv.stats import (
    binom_two_sided_p,
    chi_square_homogeneity,
    chi_square_p_value,
    count_split_p_value,
    ks_p_value,
    ks_statistic,
    ks_two_sample,
    pooled_dispersion,
    sign_test_p_value,
)
from repro.errors import ConfigError


class TestKolmogorovSmirnov:
    def test_disjoint_samples_have_statistic_one(self):
        assert ks_statistic([1.0, 2.0, 3.0], [4.0, 5.0, 6.0]) == 1.0

    def test_identical_samples_have_statistic_zero(self):
        sample = [3.0, 1.0, 2.0, 5.0]
        assert ks_statistic(sample, sample) == 0.0
        result = ks_two_sample(sample, sample)
        assert result.p_value == 1.0

    def test_interleaved_samples_statistic(self):
        # F_a - F_b peaks at 1/2 for a=[1,3], b=[2,4].
        assert ks_statistic([1.0, 3.0], [2.0, 4.0]) == pytest.approx(0.5)

    def test_critical_value_reproduces_kolmogorov_five_percent(self):
        # The classic lambda = 1.358 is the 5% point of Kolmogorov's
        # distribution; invert the Stephens scaling at n=1000 per side.
        root_en = math.sqrt(1000 * 1000 / 2000)
        d = 1.358 / (root_en + 0.12 + 0.11 / root_en)
        p = ks_p_value(d, 1000, 1000)
        assert 0.045 < p < 0.055

    def test_p_decreases_with_statistic(self):
        ps = [ks_p_value(d, 50, 50) for d in (0.1, 0.2, 0.3, 0.5)]
        assert ps == sorted(ps, reverse=True)

    def test_empty_sample_rejected(self):
        with pytest.raises(ConfigError):
            ks_statistic([], [1.0])


class TestBinomial:
    def test_symmetric_two_sided_tail(self):
        # 2 * P(X >= 8 | n=10, p=1/2) = 2 * 56/1024.
        assert binom_two_sided_p(8, 10, 0.5) == pytest.approx(0.109375)

    def test_extreme_outcome(self):
        assert binom_two_sided_p(0, 10, 0.5) == pytest.approx(2 / 1024)

    def test_central_outcome_is_one(self):
        assert binom_two_sided_p(5, 10, 0.5) == pytest.approx(1.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            binom_two_sided_p(11, 10, 0.5)
        with pytest.raises(ConfigError):
            binom_two_sided_p(1, 10, 1.0)


class TestSignTest:
    def test_known_eighteen_of_twenty(self):
        # 2 * (C(20,0) + C(20,1) + C(20,2)) / 2^20 = 422 / 1048576.
        result = sign_test_p_value(18, 2)
        assert result.p_value == pytest.approx(422 / 1048576)

    def test_all_ties_pass(self):
        assert sign_test_p_value(0, 0).p_value == 1.0

    def test_balanced_signs_pass(self):
        assert sign_test_p_value(10, 10).p_value > 0.5


class TestCountSplit:
    def test_equal_totals_pass(self):
        assert count_split_p_value(100, 100).p_value > 0.9

    def test_lopsided_totals_reject(self):
        assert count_split_p_value(150, 50).p_value < 1e-10

    def test_zero_totals_pass(self):
        assert count_split_p_value(0, 0).p_value == 1.0

    def test_unequal_run_counts_shift_the_null(self):
        # 200 vs 100 events over 2 vs 1 runs is exactly the null split.
        assert count_split_p_value(200, 100, n_a=2, n_b=1).p_value > 0.9

    def test_dispersion_deflates_significance(self):
        raw = count_split_p_value(240, 160).p_value
        corrected = count_split_p_value(240, 160, dispersion=8.0).p_value
        assert corrected > raw

    def test_large_totals_use_chi_square_branch(self):
        p = count_split_p_value(10_000, 10_000).p_value
        assert p > 0.9

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            count_split_p_value(-1, 5)
        with pytest.raises(ConfigError):
            count_split_p_value(1, 5, dispersion=0.5)


class TestPooledDispersion:
    def test_constant_columns_clamp_to_one(self):
        assert pooled_dispersion([5, 5, 5], [5, 5, 5]) == 1.0

    def test_overdispersed_counts_exceed_one(self):
        assert pooled_dispersion([0, 200, 0, 200], [0, 200, 0, 200]) > 10.0

    def test_between_column_shift_is_not_dispersion(self):
        # Variance is pooled within each column, so a pure mean shift
        # between the ensembles does not inflate the estimate.
        assert pooled_dispersion([50, 50, 50], [90, 90, 90]) == 1.0

    def test_empty_column_rejected(self):
        with pytest.raises(ConfigError):
            pooled_dispersion([], [1.0])


class TestChiSquare:
    def test_one_dof_critical_value(self):
        assert 0.045 < chi_square_p_value(3.841, 1) < 0.055

    def test_two_dof_critical_value(self):
        assert 0.045 < chi_square_p_value(5.991, 2) < 0.055

    def test_zero_statistic_is_one(self):
        assert chi_square_p_value(0.0, 3) == 1.0

    def test_invalid_dof_rejected(self):
        with pytest.raises(ConfigError):
            chi_square_p_value(1.0, 0)


class TestHomogeneity:
    def test_identical_histograms_pass(self):
        result, dof = chi_square_homogeneity([10, 20, 30], [10, 20, 30])
        assert result.p_value > 0.99
        assert dof >= 1

    def test_disjoint_histograms_reject(self):
        result, _ = chi_square_homogeneity([50, 0], [0, 50])
        assert result.p_value < 1e-10

    def test_both_empty_bins_are_dropped(self):
        full, _ = chi_square_homogeneity([10, 0, 30], [12, 0, 28])
        trimmed, _ = chi_square_homogeneity([10, 30], [12, 28])
        assert full.p_value == pytest.approx(trimmed.p_value)

    def test_sparse_bins_merge(self):
        # All bins pooled < 5 collapse into one cell: trivially passes.
        result, dof = chi_square_homogeneity([1, 1, 1], [1, 0, 1])
        assert dof == 0
        assert result.p_value == 1.0

    def test_mismatched_binning_rejected(self):
        with pytest.raises(ConfigError):
            chi_square_homogeneity([1, 2], [1, 2, 3])

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            chi_square_homogeneity([1, -2], [1, 2])
