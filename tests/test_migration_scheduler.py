"""Per-host busy/release scheduling."""

import pytest

from repro.errors import SimulationError
from repro.migration import HostBusyScheduler


class TestReserve:
    def test_idle_host_starts_immediately(self):
        scheduler = HostBusyScheduler()
        start, end = scheduler.reserve(["a"], now=10.0, latency_s=5.0)
        assert start == 10.0
        assert end == 15.0

    def test_operations_serialize_on_occupancy(self):
        scheduler = HostBusyScheduler()
        scheduler.reserve(["a"], 0.0, latency_s=5.0, occupancy_s=2.0)
        start, end = scheduler.reserve(["a"], 0.0, latency_s=5.0, occupancy_s=2.0)
        assert start == 2.0  # waits for the bottleneck, not the latency
        assert end == 7.0

    def test_latency_defaults_to_occupancy(self):
        scheduler = HostBusyScheduler()
        scheduler.reserve(["a"], 0.0, latency_s=5.0)
        start, _end = scheduler.reserve(["a"], 0.0, latency_s=1.0)
        assert start == 5.0

    def test_storm_queueing(self):
        # Thirty reintegrations to one woken home: starts spaced by the
        # occupancy; each sees its own latency on top (Figure 11 tail).
        scheduler = HostBusyScheduler()
        ends = []
        for _ in range(30):
            _start, end = scheduler.reserve(
                ["home"], 0.0, latency_s=3.7, occupancy_s=0.5
            )
            ends.append(end)
        assert ends[0] == pytest.approx(3.7)
        assert ends[-1] == pytest.approx(29 * 0.5 + 3.7)

    def test_multi_host_operation_waits_for_all(self):
        scheduler = HostBusyScheduler()
        scheduler.reserve(["a"], 0.0, 4.0)
        scheduler.reserve(["b"], 0.0, 9.0)
        start, _end = scheduler.reserve(["a", "b"], 0.0, 1.0)
        assert start == 9.0

    def test_not_before_defers_start(self):
        scheduler = HostBusyScheduler()
        start, _end = scheduler.reserve(["a"], 0.0, 1.0, not_before=50.0)
        assert start == 50.0

    def test_independent_hosts_run_concurrently(self):
        scheduler = HostBusyScheduler()
        s1, _ = scheduler.reserve(["a"], 0.0, 5.0)
        s2, _ = scheduler.reserve(["b"], 0.0, 5.0)
        assert s1 == s2 == 0.0

    def test_negative_durations_rejected(self):
        scheduler = HostBusyScheduler()
        with pytest.raises(SimulationError):
            scheduler.reserve(["a"], 0.0, -1.0)
        with pytest.raises(SimulationError):
            scheduler.reserve(["a"], 0.0, 1.0, occupancy_s=-1.0)


class TestRelease:
    def test_release_covers_latency_even_with_short_occupancy(self):
        scheduler = HostBusyScheduler()
        scheduler.reserve(["a"], 0.0, latency_s=10.0, occupancy_s=1.0)
        assert scheduler.busy_until("a") == 1.0
        assert scheduler.release_after("a") == 10.0

    def test_release_tracks_maximum(self):
        scheduler = HostBusyScheduler()
        scheduler.reserve(["a"], 0.0, latency_s=10.0, occupancy_s=1.0)
        scheduler.reserve(["a"], 0.0, latency_s=2.0, occupancy_s=1.0)
        assert scheduler.release_after("a") == 10.0

    def test_extend(self):
        scheduler = HostBusyScheduler()
        scheduler.extend("a", 5.0)
        assert scheduler.busy_until("a") == 5.0
        scheduler.extend("a", 3.0)  # never shrinks
        assert scheduler.busy_until("a") == 5.0

    def test_clear_before_drops_stale_horizons(self):
        scheduler = HostBusyScheduler()
        scheduler.reserve(["a"], 0.0, 1.0)
        scheduler.reserve(["b"], 0.0, 100.0)
        scheduler.clear_before(50.0)
        assert scheduler.busy_until("a") == 0.0
        assert scheduler.busy_until("b") == 100.0

    def test_resource_keys_are_independent(self):
        # The engine keys by (resource, host): SAS uploads must not
        # block NIC receives.
        scheduler = HostBusyScheduler()
        scheduler.reserve([("sas", 1)], 0.0, 60.0)
        start, _ = scheduler.reserve([("nic", 1)], 0.0, 1.0)
        assert start == 0.0


class TestSignature:
    def test_occupancy_default_is_declared_optional(self):
        # occupancy_s defaults to None; the annotation must say so
        # (implicit Optional is rejected by mypy --strict and ruff).
        import typing

        hints = typing.get_type_hints(HostBusyScheduler.reserve)
        assert hints["occupancy_s"] == typing.Optional[float]
