"""Week-level projections."""

import pytest

from repro.core import FULL_TO_PARTIAL
from repro.errors import ConfigError
from repro.farm import FarmConfig
from repro.farm.week import WeekReport, simulate_week


@pytest.fixture(scope="module")
def small_week():
    config = FarmConfig(home_hosts=6, consolidation_hosts=1, vms_per_host=5)
    return simulate_week(config, FULL_TO_PARTIAL, seed=3)


class TestSimulateWeek:
    def test_week_has_seven_days(self, small_week):
        assert len(small_week.weekday_results) == 5
        assert len(small_week.weekend_results) == 2

    def test_days_use_independent_seeds(self, small_week):
        seeds = [r.seed for r in small_week.weekday_results]
        assert len(set(seeds)) == 5

    def test_weekly_savings_between_day_types(self, small_week):
        weekday_mean = sum(
            r.savings_fraction for r in small_week.weekday_results
        ) / 5
        weekend_mean = sum(
            r.savings_fraction for r in small_week.weekend_results
        ) / 2
        low, high = sorted((weekday_mean, weekend_mean))
        assert low <= small_week.savings_fraction <= high

    def test_energy_totals_sum(self, small_week):
        total = sum(
            r.energy.managed_joules
            for r in small_week.weekday_results + small_week.weekend_results
        )
        assert small_week.managed_joules == pytest.approx(total)

    def test_annual_projection_scales(self, small_week):
        assert small_week.projected_annual_kwh() == pytest.approx(
            52.0 * small_week.saved_kwh
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            simulate_week(FarmConfig(), FULL_TO_PARTIAL, weekdays=0)
        with pytest.raises(ConfigError):
            WeekReport([], [])
