"""Week-level projections."""

import pytest

from repro.core import FULL_TO_PARTIAL
from repro.errors import ConfigError
from repro.farm import FarmConfig
from repro.farm.week import WeekReport, simulate_week


@pytest.fixture(scope="module")
def small_week():
    config = FarmConfig(home_hosts=6, consolidation_hosts=1, vms_per_host=5)
    return simulate_week(config, FULL_TO_PARTIAL, seed=3)


class TestSimulateWeek:
    def test_week_has_seven_days(self, small_week):
        assert len(small_week.weekday_results) == 5
        assert len(small_week.weekend_results) == 2

    def test_days_use_independent_seeds(self, small_week):
        seeds = [r.seed for r in small_week.weekday_results]
        assert len(set(seeds)) == 5

    def test_weekly_savings_between_day_types(self, small_week):
        weekday_mean = sum(
            r.savings_fraction for r in small_week.weekday_results
        ) / 5
        weekend_mean = sum(
            r.savings_fraction for r in small_week.weekend_results
        ) / 2
        low, high = sorted((weekday_mean, weekend_mean))
        assert low <= small_week.savings_fraction <= high

    def test_energy_totals_sum(self, small_week):
        total = sum(
            r.energy.managed_joules
            for r in small_week.weekday_results + small_week.weekend_results
        )
        assert small_week.managed_joules == pytest.approx(total)

    def test_annual_projection_scales(self, small_week):
        assert small_week.projected_annual_kwh() == pytest.approx(
            52.0 * small_week.saved_kwh
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            simulate_week(FarmConfig(), FULL_TO_PARTIAL, weekdays=0)
        with pytest.raises(ConfigError):
            WeekReport([], [])


def _zero_energy_result():
    """A result stand-in whose day consumed (and baselined) nothing.

    ``EnergyReport`` itself rejects a non-positive baseline, so the
    degenerate zero-watt day can only reach ``WeekReport`` through a
    duck-typed energy record — which is exactly how a custom zero-power
    profile would surface it.
    """
    from types import SimpleNamespace

    return SimpleNamespace(
        energy=SimpleNamespace(managed_joules=0.0, baseline_joules=0.0)
    )


class TestZeroBaselineWeek:
    """Regression: a zero-baseline week used to raise ZeroDivisionError."""

    def test_savings_fraction_is_zero_not_an_error(self):
        report = WeekReport([_zero_energy_result()], [_zero_energy_result()])
        assert report.baseline_joules == 0.0
        assert report.savings_fraction == 0.0

    def test_saved_kwh_and_str_share_the_edge(self):
        # saved_kwh subtracts rather than divides, and __str__ formats
        # the guarded property — neither may crash on the same input.
        report = WeekReport([_zero_energy_result()], [_zero_energy_result()])
        assert report.saved_kwh == 0.0
        assert report.projected_annual_kwh() == 0.0
        assert "0.0%" in str(report)

    def test_nonzero_week_unchanged(self, small_week):
        expected = 1.0 - small_week.managed_joules / small_week.baseline_joules
        assert small_week.savings_fraction == expected
