"""Property-based fuzzing of the farm engine.

Random small workloads x random policies must always preserve the
engine's global invariants: no VM is lost or duplicated, memory
accounting never drifts, host state time adds up to the day, energy
stays within physical bounds, and every reported metric is sane.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import ALL_POLICIES
from repro.farm import FarmConfig, FarmSimulation
from repro.traces import DayType, TraceEnsemble, UserDayTrace
from repro.units import INTERVALS_PER_DAY

HOMES = 3
VMS_PER_HOST = 2
TOTAL_VMS = HOMES * VMS_PER_HOST


def random_ensemble(seed: int) -> TraceEnsemble:
    """A random-but-structured population: random active runs."""
    rng = random.Random(seed)
    traces = []
    for user_id in range(TOTAL_VMS):
        bits = [0] * INTERVALS_PER_DAY
        for _ in range(rng.randint(0, 6)):
            start = rng.randrange(INTERVALS_PER_DAY)
            length = rng.randint(1, 40)
            for index in range(start, min(start + length, INTERVALS_PER_DAY)):
                bits[index] = 1
        traces.append(UserDayTrace.from_bits(user_id, DayType.WEEKDAY, bits))
    return TraceEnsemble(DayType.WEEKDAY, tuple(traces))


@given(
    trace_seed=st.integers(min_value=0, max_value=10_000),
    policy_index=st.integers(min_value=0, max_value=len(ALL_POLICIES) - 1),
    engine_seed=st.integers(min_value=0, max_value=1_000),
)
@settings(max_examples=30, deadline=None)
def test_engine_invariants_hold_for_any_workload(
    trace_seed, policy_index, engine_seed
):
    config = FarmConfig(
        home_hosts=HOMES, consolidation_hosts=1, vms_per_host=VMS_PER_HOST
    )
    policy = ALL_POLICIES[policy_index]
    simulation = FarmSimulation(
        config, policy, random_ensemble(trace_seed), seed=engine_seed
    )
    result = simulation.run()

    # The full invariant battery (conservation, accounting, served
    # images, state time, energy bounds, metric sanity).
    from repro.farm import validate_simulation

    validate_simulation(simulation)

    assert result.traffic.network_total_mib() >= 0.0
    # OnlyPartial never moves full images.
    if policy.name == "OnlyPartial":
        assert result.counters.full_migrations == 0
        assert result.counters.conversions_in_place == 0


@given(
    trace_seed=st.integers(min_value=0, max_value=10_000),
    engine_seed=st.integers(min_value=0, max_value=1_000),
)
@settings(max_examples=10, deadline=None)
def test_runs_are_deterministic(trace_seed, engine_seed):
    config = FarmConfig(
        home_hosts=HOMES, consolidation_hosts=1, vms_per_host=VMS_PER_HOST
    )
    ensemble = random_ensemble(trace_seed)
    first = FarmSimulation(
        config, ALL_POLICIES[2], ensemble, seed=engine_seed
    ).run()
    second = FarmSimulation(
        config, ALL_POLICIES[2], ensemble, seed=engine_seed
    ).run()
    assert first.energy.managed_joules == second.energy.managed_joules
    assert first.delay_values() == second.delay_values()
    assert first.powered_hosts == second.powered_hosts
    assert (
        first.traffic.network_total_mib()
        == second.traffic.network_total_mib()
    )
