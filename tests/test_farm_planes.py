"""The two-plane split is a seam, not a change (DESIGN.md §16).

``FarmSimulation`` routes every planner query through a
:class:`~repro.farm.planes.DecisionPlane` and every bookkeeping write
through an :class:`~repro.farm.planes.AccountingLedger`.  These tests
pin the seam contract from three angles:

* the reference planes are installed and share the result's records
  (same objects, not copies);
* across a battery of randomized farm shapes and fault profiles, the
  ledger's read-back equals the ``FarmResult`` fields the pre-split
  engine produced directly — energy to the bit, per-state splits to
  float reassociation;
* the ``simulate`` stdout is byte-identical to the committed golden,
  which was NOT regenerated for the split.
"""

import json
import math
import random

import pytest

from repro.farm import (
    SURCHARGE_STATE,
    FarmAccountingLedger,
    FarmConfig,
    FarmSimulation,
    ManagerDecisionPlane,
)
from repro.farm.runner import RunSpec
from repro.faults import fault_profile_by_name
from repro.traces import DayType, generate_ensemble
from tests.golden.update_goldens import GOLDEN_PATH, simulate_stdout


def _run_simulation(config, policy, day_type, seed):
    """Construct, run, and hand back the simulation (not just the result)."""
    spec = RunSpec(config, policy, day_type, seed)
    ensemble = generate_ensemble(
        config.total_vms, day_type, seed=spec.trace_seed, config=config.traces
    )
    sim = FarmSimulation(config, policy, ensemble, seed=seed)
    result = sim.run()
    return sim, result


class TestPlaneInstallation:
    def test_reference_planes_installed(self):
        config = FarmConfig(home_hosts=2, consolidation_hosts=1,
                            vms_per_host=2)
        ensemble = generate_ensemble(
            config.total_vms, DayType.WEEKDAY, seed=3, config=config.traces
        )
        sim = FarmSimulation(config, "Default", ensemble, seed=3)
        assert isinstance(sim.decisions, ManagerDecisionPlane)
        assert sim.decisions.manager is sim.manager
        assert isinstance(sim.ledger, FarmAccountingLedger)
        # The pre-split attribute names remain live aliases into the
        # ledger, so older instrumentation keeps working.
        assert sim.accountant is sim.ledger.accountant
        assert sim.tracker is sim.ledger.tracker
        assert sim.faults is sim.ledger.faults

    def test_ledger_shares_result_records(self):
        config = FarmConfig(home_hosts=2, consolidation_hosts=1,
                            vms_per_host=2)
        ensemble = generate_ensemble(
            config.total_vms, DayType.WEEKDAY, seed=4, config=config.traces
        )
        sim = FarmSimulation(config, "Default", ensemble, seed=4)
        assert sim.ledger.traffic is sim.result.traffic
        assert sim.ledger.counters is sim.result.counters
        assert sim.ledger.faults is sim.result.faults


def _random_shapes(count, seed=20160418):
    rng = random.Random(seed)
    shapes = []
    for _ in range(count):
        shapes.append(
            dict(
                home_hosts=rng.randint(2, 5),
                consolidation_hosts=rng.randint(1, 3),
                vms_per_host=rng.randint(2, 5),
            )
        )
    return shapes


@pytest.mark.slow
class TestLedgerMatchesResult:
    """Ledger read-back == pre-split FarmResult fields, property-style."""

    #: 100 random farm shapes, each run under both extreme fault
    #: profiles — the battery the seam's correctness claim rests on.
    SHAPES = _random_shapes(100)

    @pytest.mark.parametrize("profile", ["none", "heavy"])
    def test_ledger_totals_equal_result_fields(self, profile):
        rng = random.Random({"none": 101, "heavy": 102}[profile])
        policies = ("OnlyPartial", "Default", "FulltoPartial", "NewHome")
        for index, shape in enumerate(self.SHAPES):
            config = FarmConfig(
                **shape, faults=fault_profile_by_name(profile)
            )
            policy = policies[index % len(policies)]
            day = DayType.WEEKDAY if index % 2 == 0 else DayType.WEEKEND
            sim, result = _run_simulation(
                config, policy, day, seed=rng.randrange(2**31)
            )
            ledger = sim.ledger

            # Energy: the ledger IS the result's source of truth.
            assert result.energy is not None
            assert result.energy.managed_joules == ledger.total_joules()

            # Per-state energy is additive-only metering: it must
            # reassemble the managed total (float reassociation only).
            state_energy = ledger.state_energy_j()
            assert result.state_energy_j == state_energy
            assert math.isclose(
                sum(state_energy.values()),
                result.energy.managed_joules,
                rel_tol=1e-9,
            )
            assert all(v >= 0.0 for v in state_energy.values())

            # State residence: result snapshot == ledger read-back, and
            # per-host sleep seconds come from the same tracker.
            assert result.state_time_s == ledger.state_time_s()
            for host_id, sleep_s in result.home_sleep_s.items():
                assert sleep_s == ledger.state_duration(host_id, "sleeping")

    def test_surcharge_bucket_only_when_lump_charged(self):
        # The surcharge pseudo-state appears iff add_energy ever fired;
        # when present it is positive and bounded by the managed total.
        config = FarmConfig(home_hosts=3, consolidation_hosts=1,
                            vms_per_host=3)
        sim, result = _run_simulation(
            config, "FulltoPartial", DayType.WEEKDAY, seed=17
        )
        split = result.state_energy_j
        if SURCHARGE_STATE in split:
            assert 0.0 < split[SURCHARGE_STATE]
            assert split[SURCHARGE_STATE] <= result.energy.managed_joules


class TestGoldenStdoutSeam:
    """The split did not shift a byte: pinned stdout vs committed golden.

    ``tests/test_farm_golden.py`` guards this for every policy; this
    duplicate of one policy states the *seam's* contract where the seam
    is tested, so a future plane change failing here points straight at
    the planes rather than at "some golden drifted".
    """

    def test_stdout_byte_identical_to_committed_golden(self):
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            goldens = json.load(handle)
        pinned = goldens["policies"]["FulltoPartial"]
        assert simulate_stdout("FulltoPartial", pinned["seed"]) == (
            pinned["simulate_stdout"]
        )
