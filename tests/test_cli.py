"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.policy == "FulltoPartial"
        assert args.day == "weekday"
        assert args.consolidation_hosts == 4

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "Nope"])

    def test_micro_tables_enumerated(self):
        for table in ("table1", "fig1", "fig2", "fig5", "fig6", "traffic"):
            args = build_parser().parse_args(["micro", table])
            assert args.table == table

    def test_simulate_accepts_runs_and_workers(self):
        args = build_parser().parse_args(
            ["simulate", "--runs", "3", "--workers", "2"]
        )
        assert args.runs == 3
        assert args.workers == 2

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.policy == "all"
        assert args.workers == 1
        assert args.consolidation_counts == "2,4"


class TestSweepCommand:
    def test_small_serial_sweep(self, capsys):
        assert main([
            "sweep", "--policy", "FulltoPartial", "--runs", "2",
            "--consolidation-counts", "1,2",
            "--home-hosts", "4", "--vms-per-host", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "FulltoPartial" in out
        assert "1 cons" in out and "2 cons" in out
        assert "timing:" in out
        assert "serial backend" in out

    def test_small_process_sweep(self, capsys):
        assert main([
            "sweep", "--policy", "FulltoPartial", "--runs", "2",
            "--workers", "2", "--consolidation-counts", "1",
            "--home-hosts", "4", "--vms-per-host", "4",
        ]) == 0
        assert "process backend x2" in capsys.readouterr().out

    def test_bad_counts_rejected(self, capsys):
        assert main([
            "sweep", "--consolidation-counts", "two,4",
        ]) == 2

    def test_simulate_repetitions(self, capsys):
        assert main([
            "simulate", "--runs", "2",
            "--home-hosts", "4", "--consolidation-hosts", "1",
            "--vms-per-host", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean savings:" in out
        assert "ensemble cache" in out


class TestMicroCommands:
    def test_table1_output(self, capsys):
        assert main(["micro", "table1"]) == 0
        out = capsys.readouterr().out
        assert "102.2" in out
        assert "12.9" in out

    def test_fig5_output(self, capsys):
        assert main(["micro", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "full migration" in out
        assert "partial migration #2" in out

    def test_fig6_output(self, capsys):
        assert main(["micro", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "LibreOffice" in out

    def test_fig1_output(self, capsys):
        assert main(["micro", "fig1"]) == 0
        assert "Desktop" in capsys.readouterr().out

    def test_traffic_output(self, capsys):
        assert main(["micro", "traffic"]) == 0
        assert "reintegration dirty" in capsys.readouterr().out


class TestTracesCommands:
    def test_generate_then_stats(self, tmp_path, capsys):
        out_file = tmp_path / "traces.csv"
        assert main([
            "traces", "generate", "--count", "40", "--out", str(out_file),
        ]) == 0
        assert out_file.exists()
        assert main(["traces", "stats", "--file", str(out_file)]) == 0
        assert "users=40" in capsys.readouterr().out

    def test_json_roundtrip_via_extension(self, tmp_path, capsys):
        out_file = tmp_path / "traces.json"
        assert main([
            "traces", "generate", "--count", "12", "--out", str(out_file),
        ]) == 0
        assert out_file.read_text().lstrip().startswith("{")
        assert main(["traces", "stats", "--file", str(out_file)]) == 0
        assert "users=12" in capsys.readouterr().out


class TestSimulateCommand:
    def test_week_simulation_runs(self, capsys):
        code = main([
            "simulate",
            "--home-hosts", "3",
            "--consolidation-hosts", "1",
            "--vms-per-host", "3",
            "--week",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "weekly savings" in out
        assert "kWh/year" in out

    def test_small_simulation_runs(self, capsys):
        code = main([
            "simulate",
            "--home-hosts", "4",
            "--consolidation-hosts", "1",
            "--vms-per-host", "4",
            "--policy", "FulltoPartial",
            "--day", "weekend",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "energy savings" in out
        assert "home-host sleep" in out


class TestZonedSimulateCommand:
    def test_parser_zone_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.zones == 1
        assert args.budget_w is None

    def test_zero_zones_rejected(self, capsys):
        assert main(["simulate", "--zones", "0"]) == 2
        assert "--zones must be >= 1" in capsys.readouterr().err

    def test_zones_incompatible_with_week(self, capsys):
        assert main(["simulate", "--zones", "2", "--week"]) == 2
        assert "drop --week and --runs" in capsys.readouterr().err

    def test_zones_incompatible_with_runs(self, capsys):
        assert main(["simulate", "--zones", "2", "--runs", "2"]) == 2
        assert "drop --week and --runs" in capsys.readouterr().err

    def test_zoned_run_prints_zone_table(self, capsys):
        code = main([
            "simulate",
            "--home-hosts", "4",
            "--consolidation-hosts", "2",
            "--vms-per-host", "4",
            "--zones", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "energy savings" in out  # the aggregate day summary
        for header in ("zone", "homes", "cons", "savings", "share W"):
            assert header in out
        assert "budget:" not in out  # no --budget-w, no budget line

    def test_budget_line_reports_status(self, capsys):
        code = main([
            "simulate",
            "--home-hosts", "4",
            "--consolidation-hosts", "2",
            "--vms-per-host", "4",
            "--zones", "2",
            "--budget-w", "100000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "budget:           100000 W across 2 zones" in out
        assert "all zones within budget" in out
