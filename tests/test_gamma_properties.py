"""Property battery for Γ-robust first-fit (100 seeded instances).

Every instance comes from :func:`repro.policies.seeded_instance`, so the
battery is deterministic: the same seeds produce the same items, Γ, and
packings on every run.  The properties pinned here are the ones the
Γ-robustness construction promises by design:

* the robust invariant — any Γ VMs of a bin at their interval maximum
  plus the rest at nominal still fit (checked both through
  :func:`robust_load` and by exhaustive subset enumeration);
* packing integrity — every item lands in exactly one bin, no bin is
  empty;
* Γ = 0 degenerates *exactly* to point-estimate First-Fit over the
  nominal demands (compared against an independent re-implementation);
* monotonicity — the heuristic's bin count never decreases as Γ grows.
"""

from itertools import combinations

import pytest

from repro.errors import ConfigError
from repro.policies import (
    GammaItem,
    gamma_first_fit,
    robust_fits,
    robust_load,
    seeded_instance,
)

#: The battery's instance seeds; 100 deterministic randomized packings.
SEEDS = range(100)

_EPS = 1e-9


@pytest.fixture(scope="module", params=SEEDS)
def instance(request):
    return seeded_instance(request.param)


def test_battery_is_deterministic():
    first = seeded_instance(7)
    again = seeded_instance(7)
    assert first == again
    assert len(first.items) >= 3


def test_robust_invariant_holds_per_bin(instance):
    """Every packed bin satisfies sum(uc) + top-Γ(ur) <= capacity."""
    bins = gamma_first_fit(instance.items, instance.gamma, instance.capacity)
    for packed in bins:
        assert robust_fits(packed, instance.gamma, instance.capacity)
        assert robust_load(packed, instance.gamma) <= (
            instance.capacity + _EPS
        )


def test_robust_invariant_exhaustive_subsets(instance):
    """The invariant, spelled out: pick ANY Γ VMs of a bin, spike them
    to their interval maximum, leave the rest at nominal — it fits.

    Enumerated over every Γ-subset of every bin, independently of the
    ``nlargest`` shortcut inside :func:`robust_load`."""
    bins = gamma_first_fit(instance.items, instance.gamma, instance.capacity)
    for packed in bins:
        nominal_total = sum(item.nominal for item in packed)
        spikers = min(instance.gamma, len(packed))
        for chosen in combinations(packed, spikers):
            load = nominal_total + sum(item.deviation for item in chosen)
            assert load <= instance.capacity + _EPS


def test_packing_integrity(instance):
    """Each item appears exactly once; no bin is left empty."""
    bins = gamma_first_fit(instance.items, instance.gamma, instance.capacity)
    assert all(packed for packed in bins)
    packed_ids = [item.item_id for packed in bins for item in packed]
    assert sorted(packed_ids) == sorted(
        item.item_id for item in instance.items
    )
    assert len(packed_ids) == len(set(packed_ids))


def _point_estimate_first_fit(items, capacity):
    """Plain nominal-demand First-Fit, re-implemented independently."""
    bins, loads = [], []
    for item in items:
        for position, load in enumerate(loads):
            if load + item.nominal <= capacity + _EPS:
                bins[position].append(item)
                loads[position] += item.nominal
                break
        else:
            bins.append([item])
            loads.append(item.nominal)
    return bins


def test_gamma_zero_is_point_estimate_first_fit(instance):
    """Γ = 0 must reproduce classic First-Fit bin-for-bin, not merely
    match its bin count: deviations become entirely invisible."""
    robust = gamma_first_fit(instance.items, 0, instance.capacity)
    classic = _point_estimate_first_fit(instance.items, instance.capacity)
    assert robust == classic


def test_bin_count_monotone_in_gamma(instance):
    """More protection can never need fewer hosts: the heuristic's bin
    count is non-decreasing in Γ on every battery instance."""
    counts = [
        len(gamma_first_fit(instance.items, gamma, instance.capacity))
        for gamma in range(5)
    ]
    assert counts == sorted(counts)


def test_robust_load_saturates_at_item_count():
    """Γ beyond the bin population adds nothing: every item is already
    spiking."""
    items = [GammaItem(0, 10.0, 4.0), GammaItem(1, 20.0, 6.0)]
    saturated = robust_load(items, 2)
    assert saturated == pytest.approx(40.0)
    assert robust_load(items, 5) == pytest.approx(saturated)


def test_oversized_item_is_rejected():
    """An item whose lone worst case exceeds the capacity can never be
    packed; the heuristic refuses the instance up front."""
    items = [GammaItem(0, 6.0, 5.0)]
    with pytest.raises(ConfigError):
        gamma_first_fit(items, 1, 8.0)
    # ...but with Γ = 0 the deviation is dormant and the item fits.
    assert len(gamma_first_fit(items, 0, 8.0)) == 1
