"""Mutation self-tests: the battery must prove its own power.

Every registered mutant (a deliberately defective engine) must be
rejected at the committed ensemble size, the identity mutant must be
accepted bit-for-bit, and the reference engine must accept itself
across disjoint seed ranges.  This is the evidence that a future
``equiv compare`` acceptance of an engine variant means something.

The full battery simulates a few hundred small-farm days (~10 s), so it
carries the ``equiv`` and ``slow`` markers; CI's quick tier skips it
and runs the thin ``equiv-smoke`` subset instead.
"""

import pytest

from repro.equiv import (
    COMMITTED_ENSEMBLE_SIZE,
    MUTANTS,
    mutant_by_name,
    mutant_names,
    run_selftest,
)
from repro.errors import ConfigError
from repro.farm import FarmConfig
from repro.traces import DayType
from tests.golden.update_goldens import EQUIV_ROOT_SEED, FARM_SHAPE

pytestmark = [pytest.mark.equiv, pytest.mark.slow]


@pytest.fixture(scope="module")
def selftest():
    """One full self-test run shared by every assertion below."""
    return run_selftest(
        FarmConfig(**FARM_SHAPE),
        "FulltoPartial",
        DayType.WEEKDAY,
        root_seed=EQUIV_ROOT_SEED,
        ensemble_size=COMMITTED_ENSEMBLE_SIZE,
    )


class TestRegistry:
    def test_at_least_six_reject_mutants_registered(self):
        rejecting = [m for m in MUTANTS.values() if m.should_reject]
        assert len(rejecting) >= 6

    def test_identity_is_registered_and_accepting(self):
        assert not MUTANTS["identity"].should_reject

    def test_names_are_stable(self):
        assert set(mutant_names()) == set(MUTANTS)
        assert mutant_names()[0] == "identity"

    def test_unknown_mutant_rejected(self):
        with pytest.raises(ConfigError):
            mutant_by_name("no-such-defect")


class TestPower:
    def test_selftest_passes_wholesale(self, selftest):
        assert selftest.passed, selftest.render()

    def test_ran_at_the_committed_ensemble_size(self, selftest):
        assert selftest.ensemble_size == COMMITTED_ENSEMBLE_SIZE == 20

    @pytest.mark.parametrize("name", sorted(MUTANTS))
    def test_each_mutant_gets_its_required_verdict(self, selftest, name):
        trial = {t.mutant: t for t in selftest.trials}[name]
        assert trial.rejected == trial.should_reject, (
            f"{name}: want "
            f"{'reject' if trial.should_reject else 'accept'}, got "
            f"{'rejected' if trial.rejected else 'accepted'}\n"
            + trial.report.render()
        )

    def test_identity_is_bit_identical_not_just_accepted(self, selftest):
        identity = {t.mutant: t for t in selftest.trials}["identity"]
        assert identity.report.paired
        assert all(
            v.p_value > 0.999 for v in identity.report.verdicts
        ), "identity mutant drifted from the reference engine"

    def test_reference_accepts_itself_across_disjoint_seeds(self, selftest):
        report = selftest.disjoint_report
        assert not report.paired, "disjoint seed ranges must not pair"
        assert report.equivalent, report.render()

    def test_rejections_carry_explanatory_verdicts(self, selftest):
        for trial in selftest.trials:
            if trial.rejected:
                failures = trial.report.failures()
                assert failures, trial.mutant
                for verdict in failures:
                    assert verdict.p_value < verdict.threshold
