"""Trace CSV round-trips and malformed-input handling."""

import pytest

from repro.errors import TraceFormatError
from repro.traces import (
    DayType,
    generate_ensemble,
    read_traces_csv,
    write_traces_csv,
)
from repro.traces.io import read_ensemble_csv
from repro.units import INTERVALS_PER_DAY


@pytest.fixture
def sample_traces():
    return list(generate_ensemble(10, DayType.WEEKDAY, seed=4))


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path, sample_traces):
        path = tmp_path / "traces.csv"
        write_traces_csv(path, sample_traces)
        loaded = read_traces_csv(path)
        assert len(loaded) == len(sample_traces)
        for original, copy in zip(sample_traces, loaded):
            assert copy.user_id == original.user_id
            assert copy.day_type is original.day_type
            assert copy.intervals == original.intervals

    def test_read_ensemble(self, tmp_path, sample_traces):
        path = tmp_path / "traces.csv"
        write_traces_csv(path, sample_traces)
        ensemble = read_ensemble_csv(path)
        assert len(ensemble) == 10
        assert ensemble.day_type is DayType.WEEKDAY

    def test_empty_file_has_header_only(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_traces_csv(path, [])
        assert read_traces_csv(path) == []
        with pytest.raises(TraceFormatError):
            read_ensemble_csv(path)


class TestJsonRoundTrip:
    def test_roundtrip(self, tmp_path, sample_traces):
        from repro.traces import read_traces_json, write_traces_json

        path = tmp_path / "traces.json"
        write_traces_json(path, sample_traces)
        loaded = read_traces_json(path)
        assert len(loaded) == len(sample_traces)
        for original, copy in zip(sample_traces, loaded):
            assert copy.user_id == original.user_id
            assert copy.intervals == original.intervals

    def test_invalid_json(self, tmp_path):
        from repro.traces import read_traces_json

        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TraceFormatError):
            read_traces_json(path)

    def test_missing_traces_key(self, tmp_path):
        from repro.traces import read_traces_json

        path = tmp_path / "bad.json"
        path.write_text('{"users": []}')
        with pytest.raises(TraceFormatError):
            read_traces_json(path)

    def test_non_object_record(self, tmp_path):
        from repro.traces import read_traces_json

        path = tmp_path / "bad.json"
        path.write_text('{"traces": [42]}')
        with pytest.raises(TraceFormatError):
            read_traces_json(path)

    def test_json_and_csv_agree(self, tmp_path, sample_traces):
        from repro.traces import read_traces_json, write_traces_json

        json_path = tmp_path / "traces.json"
        csv_path = tmp_path / "traces.csv"
        write_traces_json(json_path, sample_traces)
        write_traces_csv(csv_path, sample_traces)
        assert [t.intervals for t in read_traces_json(json_path)] == [
            t.intervals for t in read_traces_csv(csv_path)
        ]


class TestMalformedInput:
    def _write(self, tmp_path, text):
        path = tmp_path / "bad.csv"
        path.write_text(text)
        return path

    def test_missing_columns(self, tmp_path):
        path = self._write(tmp_path, "user_id,day_type\n0,weekday\n")
        with pytest.raises(TraceFormatError):
            read_traces_csv(path)

    def test_bad_user_id(self, tmp_path):
        bits = "0" * INTERVALS_PER_DAY
        path = self._write(
            tmp_path, f"user_id,day_type,intervals\nnope,weekday,{bits}\n"
        )
        with pytest.raises(TraceFormatError):
            read_traces_csv(path)

    def test_bad_day_type(self, tmp_path):
        bits = "0" * INTERVALS_PER_DAY
        path = self._write(
            tmp_path, f"user_id,day_type,intervals\n0,holiday,{bits}\n"
        )
        with pytest.raises(TraceFormatError):
            read_traces_csv(path)

    def test_wrong_interval_count(self, tmp_path):
        path = self._write(
            tmp_path, "user_id,day_type,intervals\n0,weekday,0101\n"
        )
        with pytest.raises(TraceFormatError):
            read_traces_csv(path)

    def test_non_binary_characters(self, tmp_path):
        bits = "2" * INTERVALS_PER_DAY
        path = self._write(
            tmp_path, f"user_id,day_type,intervals\n0,weekday,{bits}\n"
        )
        with pytest.raises(TraceFormatError):
            read_traces_csv(path)

    def test_error_messages_carry_line_numbers(self, tmp_path):
        bits = "0" * INTERVALS_PER_DAY
        path = self._write(
            tmp_path,
            f"user_id,day_type,intervals\n0,weekday,{bits}\nx,weekday,{bits}\n",
        )
        with pytest.raises(TraceFormatError, match=":3"):
            read_traces_csv(path)
