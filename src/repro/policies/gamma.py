"""Γ-robust consolidation (the ``GammaRobust`` strategy family).

Oasis packs VMs with *point estimates* of demand, so a handful of
simultaneous working-set spikes can overflow a consolidation host that
looked safe on paper.  Following the Γ-robustness (Bertsimas-Sim)
treatment of bin packing, every idle VM's demand is modelled as an
interval ``[uc - ur, uc + ur]`` around a nominal working set ``uc``,
and a placement is *Γ-robust* when every host still fits if any Γ of
its VMs spike to their interval maximum while the rest sit at nominal:

    sum(uc) + (sum of the Γ largest ur) <= capacity

The module has three layers:

* a pure interval bin-packing core (:func:`gamma_first_fit` plus the
  exact :func:`minimum_bins` branch-and-bound oracle and the
  independent :func:`brute_force_minimum_bins` cross-check) used by the
  property/oracle test batteries and the ``micro gamma`` report;
* :class:`DemandIntervalModel`, which derives each VM's interval
  deterministically from the simulation seed (see below);
* :class:`GammaRobustPlanner` / :class:`GammaRobustStrategy`, the
  farm-facing planner that mirrors the greedy vacate/compaction
  structure of :class:`~repro.core.placement.GreedyVacatePlanner` but
  places with a Γ-aware first-fit over the same shadow-capacity index.

Determinism contract (the ``gamma.intervals`` stream family): VM
``v``'s spike fraction is the single ``random()`` draw of a
``random.Random`` seeded with ``derive_seed(root_seed,
f"gamma.intervals:{v}")``.  Intervals are therefore a pure function of
``(root seed, vm id)`` — independent of planning order, of how often
the planner runs, and of every other named stream — so adding or
consulting them never perturbs existing streams, and zone-sharded runs
see the same intervals as the equivalent single-zone run of each shard
seed.  The planner itself draws nothing: Γ-robust placement is
deterministic first-fit (powered hosts before sleeping ones, ascending
host id within each tier).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from heapq import nlargest
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.host import Host
from repro.cluster.topology import Cluster
from repro.core.placement import (
    DestinationStrategy,
    GreedyVacatePlanner,
    _ShadowCapacity,
)
from repro.core.plan import (
    ConsolidationPlan,
    HostVacatePlan,
    MigrationMode,
    PlannedMigration,
)
from repro.core.policies import PolicySpec
from repro.core.strategies import PlacementStrategy, register_family
from repro.errors import ConfigError
from repro.simulator.randomness import RngStreams, derive_seed
from repro.vm.machine import VirtualMachine
from repro.vm.state import Residency, VmActivity
from repro.vm.workingset import WorkingSetSampler

__all__ = [
    "GAMMA_ROBUST_POLICY",
    "GammaInstance",
    "GammaItem",
    "GammaRobustPlanner",
    "GammaRobustStrategy",
    "DemandIntervalModel",
    "brute_force_minimum_bins",
    "gamma_first_fit",
    "minimum_bins",
    "oracle_gap_report",
    "render_gap_report",
    "robust_fits",
    "robust_load",
    "seeded_instance",
]

#: Numerical slack for capacity comparisons, matching the shadow index.
_EPS = 1e-9


# ----------------------------------------------------------------------
# pure interval bin packing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GammaItem:
    """One VM's demand interval ``[nominal - deviation, nominal + deviation]``."""

    item_id: int
    nominal: float
    deviation: float

    def __post_init__(self) -> None:
        if self.nominal < 0.0:
            raise ConfigError(
                f"item {self.item_id}: nominal demand must be >= 0, "
                f"got {self.nominal}"
            )
        if self.deviation < 0.0:
            raise ConfigError(
                f"item {self.item_id}: deviation must be >= 0, "
                f"got {self.deviation}"
            )


def robust_load(items: Sequence[GammaItem], gamma: int) -> float:
    """Worst-case load with up to ``gamma`` items at their interval max."""
    if gamma < 0:
        raise ConfigError(f"gamma must be >= 0, got {gamma}")
    total = 0.0
    for item in items:
        total += item.nominal
    if gamma > 0 and items:
        total += sum(nlargest(gamma, (item.deviation for item in items)))
    return total


def robust_fits(
    items: Sequence[GammaItem], gamma: int, capacity: float
) -> bool:
    """Whether ``items`` are Γ-robust-feasible on one ``capacity`` bin."""
    return robust_load(items, gamma) <= capacity + _EPS


def _check_instance(
    items: Sequence[GammaItem], gamma: int, capacity: float
) -> None:
    if gamma < 0:
        raise ConfigError(f"gamma must be >= 0, got {gamma}")
    if capacity <= 0.0:
        raise ConfigError(f"capacity must be > 0, got {capacity}")
    for item in items:
        worst = item.nominal + (item.deviation if gamma > 0 else 0.0)
        if worst > capacity + _EPS:
            raise ConfigError(
                f"item {item.item_id} needs {worst} alone; no bin of "
                f"capacity {capacity} can ever hold it"
            )


def gamma_first_fit(
    items: Sequence[GammaItem], gamma: int, capacity: float
) -> List[List[GammaItem]]:
    """Γ-aware First-Fit: each item goes to the first bin it robustly
    fits, in the order given; a new bin opens only when none fits.

    With ``gamma == 0`` this is exactly point-estimate First-Fit over
    the nominal demands.
    """
    _check_instance(items, gamma, capacity)
    bins: List[List[GammaItem]] = []
    loads: List[float] = []  # nominal sums, one per bin
    for item in items:
        for position, packed in enumerate(bins):
            load = loads[position] + item.nominal
            if gamma > 0:
                load += sum(nlargest(
                    gamma,
                    [other.deviation for other in packed] + [item.deviation],
                ))
            if load <= capacity + _EPS:
                packed.append(item)
                loads[position] += item.nominal
                break
        else:
            bins.append([item])
            loads.append(item.nominal)
    return bins


def brute_force_minimum_bins(
    items: Sequence[GammaItem], gamma: int, capacity: float
) -> int:
    """Exact optimum by enumerating every set partition (<= 10 items).

    Deliberately shares no search machinery with :func:`minimum_bins`:
    it is the differential reference the oracle battery checks the
    branch-and-bound solver against.
    """
    _check_instance(items, gamma, capacity)
    if len(items) > 10:
        raise ConfigError(
            f"brute force is capped at 10 items, got {len(items)}"
        )
    if not items:
        return 0
    best: List[int] = [len(items)]
    bins: List[List[GammaItem]] = []

    def assign(position: int) -> None:
        if position == len(items):
            best[0] = min(best[0], len(bins))
            return
        item = items[position]
        for packed in bins:
            packed.append(item)
            if robust_fits(packed, gamma, capacity):
                assign(position + 1)
            packed.pop()
        # Canonical set partitions: the item may also open exactly one
        # new bin (opening "the second empty bin" would be symmetric).
        bins.append([item])
        assign(position + 1)
        bins.pop()

    assign(0)
    return best[0]


def minimum_bins(
    items: Sequence[GammaItem], gamma: int, capacity: float
) -> int:
    """Exact minimum bin count via branch-and-bound.

    Items are branched largest-first (by worst-case size); the First-Fit
    solution primes the incumbent; identical partial bins are branched
    once; and the search stops early when the incumbent meets the
    nominal-volume lower bound.  Pure python, small-scale by design —
    the oracle scores heuristic optimality gaps on test instances, it is
    not a production planner.
    """
    _check_instance(items, gamma, capacity)
    if not items:
        return 0
    order = sorted(
        items,
        key=lambda item: (
            item.nominal + item.deviation, item.nominal, item.item_id,
        ),
        reverse=True,
    )
    incumbent = len(gamma_first_fit(order, gamma, capacity))
    nominal_total = sum(item.nominal for item in order)
    lower_bound = max(1, math.ceil(nominal_total / capacity - _EPS))
    if incumbent <= lower_bound:
        return incumbent
    best: List[int] = [incumbent]
    bins: List[List[GammaItem]] = []

    def branch(position: int) -> None:
        if len(bins) >= best[0]:
            return
        if position == len(order):
            best[0] = len(bins)
            return
        item = order[position]
        seen_signatures = set()
        for packed in bins:
            signature = tuple(sorted(
                (other.nominal, other.deviation) for other in packed
            ))
            if signature in seen_signatures:
                continue
            seen_signatures.add(signature)
            packed.append(item)
            if robust_fits(packed, gamma, capacity):
                branch(position + 1)
            packed.pop()
            if best[0] <= lower_bound:
                return
        if len(bins) + 1 < best[0]:
            bins.append([item])
            branch(position + 1)
            bins.pop()

    branch(0)
    return best[0]


# ----------------------------------------------------------------------
# seeded oracle instances and the optimality-gap report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GammaInstance:
    """A seeded bin-packing instance for the oracle battery."""

    seed: int
    gamma: int
    capacity: float
    items: Tuple[GammaItem, ...]


#: Instance count of the default oracle battery (tests, ``micro gamma``).
DEFAULT_ORACLE_INSTANCES = 30


def _instance_rng(seed: int) -> random.Random:
    """The ``gamma.oracle`` stream: one generator per instance seed."""
    return random.Random(derive_seed(seed, "gamma.oracle.instance"))


def seeded_instance(seed: int, max_items: int = 12) -> GammaInstance:
    """A deterministic random instance sized for the exact oracle."""
    if max_items < 2:
        raise ConfigError(f"max_items must be >= 2, got {max_items}")
    rng = _instance_rng(seed)
    count = rng.randint(3, max_items)
    capacity = 8192.0
    items = []
    for item_id in range(count):
        nominal = rng.uniform(0.10, 0.55) * capacity
        deviation = rng.uniform(0.0, 0.6) * (capacity - nominal)
        items.append(GammaItem(item_id, nominal, deviation))
    gamma = rng.randint(0, 3)
    return GammaInstance(
        seed=seed, gamma=gamma, capacity=capacity, items=tuple(items)
    )


def oracle_gap_report(
    instance_count: int = DEFAULT_ORACLE_INSTANCES, max_items: int = 12
) -> Dict[str, object]:
    """Score Γ-first-fit against the exact oracle on seeded instances."""
    if instance_count < 1:
        raise ConfigError(
            f"instance_count must be >= 1, got {instance_count}"
        )
    rows: List[Dict[str, object]] = []
    for seed in range(instance_count):
        instance = seeded_instance(seed, max_items=max_items)
        heuristic = len(gamma_first_fit(
            instance.items, instance.gamma, instance.capacity
        ))
        optimal = minimum_bins(
            instance.items, instance.gamma, instance.capacity
        )
        rows.append({
            "seed": instance.seed,
            "gamma": instance.gamma,
            "items": len(instance.items),
            "ff_bins": heuristic,
            "optimal_bins": optimal,
            "gap": heuristic - optimal,
        })
    gaps = [int(row["gap"]) for row in rows]
    return {
        "schema": "repro.gamma-oracle/1",
        "instances": rows,
        "summary": {
            "count": len(rows),
            "mean_gap": sum(gaps) / len(gaps),
            "max_gap": max(gaps),
            "optimal_fraction": gaps.count(0) / len(gaps),
        },
    }


def render_gap_report(report: Dict[str, object]) -> str:
    """The ``micro gamma`` table: per-instance gaps plus a summary."""
    rows = report["instances"]
    summary = report["summary"]
    assert isinstance(rows, list) and isinstance(summary, dict)
    lines = [
        "Gamma-robust first-fit vs exact branch-and-bound oracle",
        f"{'seed':>6} {'gamma':>6} {'items':>6} "
        f"{'FF bins':>8} {'optimal':>8} {'gap':>4}",
    ]
    for row in rows:
        lines.append(
            f"{row['seed']:>6} {row['gamma']:>6} {row['items']:>6} "
            f"{row['ff_bins']:>8} {row['optimal_bins']:>8} {row['gap']:>4}"
        )
    lines.append(
        f"instances: {summary['count']}  "
        f"mean gap: {summary['mean_gap']:.3f}  "
        f"max gap: {summary['max_gap']}  "
        f"optimal: {100.0 * summary['optimal_fraction']:.1f}%"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# farm-facing planner
# ----------------------------------------------------------------------

#: Behavioural switches of the GammaRobust family: hybrid migration with
#: in-place conversion (Default's event handling); no exchange/rehome
#: refinements, so the family isolates the effect of robust placement.
GAMMA_ROBUST_POLICY = PolicySpec(
    name="GammaRobust",
    full_migrate_active=True,
    convert_in_place=True,
    exchange_idle_full=False,
    rehome_on_exhaustion=False,
)


class DemandIntervalModel:
    """Deterministic per-VM demand intervals (``gamma.intervals``).

    The nominal demand ``uc`` is the working-set distribution's mean
    (capped at the VM's memory).  The deviation ``ur`` covers a per-VM
    fraction of the remaining headroom, drawn once per VM id from its
    own derived seed — see the module docstring for the contract.
    """

    __slots__ = ("_sampler", "_root_seed", "_spike_min", "_spike_max",
                 "_cache")

    def __init__(
        self,
        working_sets: WorkingSetSampler,
        root_seed: int,
        spike_min: float = 0.25,
        spike_max: float = 0.75,
    ) -> None:
        if not 0.0 <= spike_min <= spike_max <= 1.0:
            raise ConfigError(
                "spike fractions must satisfy 0 <= spike_min <= "
                f"spike_max <= 1, got [{spike_min}, {spike_max}]"
            )
        self._sampler = working_sets
        self._root_seed = root_seed
        self._spike_min = spike_min
        self._spike_max = spike_max
        self._cache: Dict[int, Tuple[float, float]] = {}

    def interval(self, vm: VirtualMachine) -> Tuple[float, float]:
        """``(nominal, deviation)`` MiB for ``vm``; pure in (seed, id)."""
        cached = self._cache.get(vm.vm_id)
        if cached is not None:
            return cached
        memory = vm.memory_mib
        nominal = self._sampler.expected_mib()
        if nominal > memory:
            nominal = memory
        fraction = random.Random(derive_seed(
            self._root_seed, f"gamma.intervals:{vm.vm_id}"
        )).random()
        spike = self._spike_min + (self._spike_max - self._spike_min) * fraction
        deviation = spike * (memory - nominal)
        result = (nominal, deviation)
        self._cache[vm.vm_id] = result
        return result


class GammaRobustPlanner:
    """Γ-aware first-fit vacate/compaction planner.

    Mirrors :class:`~repro.core.placement.GreedyVacatePlanner`'s plan
    structure (cheapest-host-first vacations, low-water compaction over
    the same shadow-capacity index) but admits a placement only while
    the destination stays Γ-robust-feasible, counting the spike room of
    VMs already resident there.  Destination choice is deterministic
    first-fit — powered (or already-woken) consolidation hosts before
    sleeping ones, ascending host id within each tier — so the planner
    consumes no randomness at all.
    """

    def __init__(
        self,
        policy: PolicySpec,
        working_sets: WorkingSetSampler,
        intervals: DemandIntervalModel,
        gamma: int,
        min_idle_intervals: int = 1,
    ) -> None:
        if gamma < 0:
            raise ConfigError(f"gamma must be >= 0, got {gamma}")
        if min_idle_intervals < 1:
            raise ConfigError("min_idle_intervals must be >= 1")
        self.policy = policy
        self.working_sets = working_sets
        self.intervals = intervals
        self.gamma = gamma
        self.min_idle_intervals = min_idle_intervals

    # -- public API -----------------------------------------------------

    def plan(
        self, cluster: Cluster, compact_consolidation: bool = True
    ) -> ConsolidationPlan:
        shadow = _ShadowCapacity(cluster)
        spikes = self._spike_state(cluster, shadow)
        vacations: List[HostVacatePlan] = []
        for host in self._vacate_queue(cluster):
            migrations = self._try_vacate(host, shadow, spikes)
            if migrations is not None:
                vacations.append(HostVacatePlan(host.host_id, migrations))
        compactions: List[HostVacatePlan] = []
        if compact_consolidation:
            compactions = self._plan_compaction(cluster, shadow, spikes)
        return ConsolidationPlan(
            vacations=vacations,
            hosts_to_wake=set(shadow.woken),
            compactions=compactions,
        )

    # -- robust feasibility ---------------------------------------------

    def _resident_spike(self, vm: VirtualMachine) -> float:
        """Spike room a resident VM may still claim on its host: its
        interval maximum (capped at full memory) minus what it already
        holds.  Full VMs hold everything and can never spike further."""
        if vm.residency is not Residency.PARTIAL:
            return 0.0
        nominal, deviation = self.intervals.interval(vm)
        worst = nominal + deviation
        memory = vm.memory_mib
        if worst > memory:
            worst = memory
        spike = worst - vm.resident_mib
        return spike if spike > 0.0 else 0.0

    def _spike_state(
        self, cluster: Cluster, shadow: _ShadowCapacity
    ) -> List[List[float]]:
        """Per shadow position: committed spike rooms of resident VMs."""
        spikes: List[List[float]] = [[] for _ in shadow.ids]
        for host in cluster.consolidation_hosts:
            position = shadow.index[host.host_id]
            for vm in host.vms():
                spike = self._resident_spike(vm)
                if spike > 0.0:
                    spikes[position].append(spike)
        return spikes

    def _robust_fits(
        self,
        position: int,
        size: float,
        deviation: float,
        shadow: _ShadowCapacity,
        spikes: List[List[float]],
        reserve: float = 0.0,
    ) -> bool:
        """Would placing ``(size, deviation)`` keep the host Γ-robust
        (and ``reserve`` MiB free on top of the worst case)?"""
        free = shadow.free[position]
        if self.gamma == 0:
            return free + _EPS >= size + reserve
        excess = sum(nlargest(
            self.gamma, spikes[position] + [deviation]
        ))
        return free + _EPS >= size + excess + reserve

    # -- vacations ------------------------------------------------------

    def _vacate_queue(self, cluster: Cluster) -> List[Host]:
        """Powered compute hosts with VMs, cheapest robust demand first
        (active VMs at full memory, idle VMs at nominal — the same
        ordering the greedy planner derives from expected working sets)."""
        candidates = [
            host
            for host in cluster.home_hosts
            if host.is_powered and host.vm_count > 0
        ]
        return sorted(candidates, key=self._memory_demand)

    def _memory_demand(self, host: Host) -> float:
        demand = 0.0
        for vm in host.vms():
            if vm.activity is VmActivity.ACTIVE:
                demand += vm.memory_mib
            else:
                nominal, _ = self.intervals.interval(vm)
                demand += nominal
        return demand

    def _try_vacate(
        self,
        host: Host,
        shadow: _ShadowCapacity,
        spikes: List[List[float]],
    ) -> Optional[List[PlannedMigration]]:
        """Plan all of one host's VMs, or None if any cannot move."""
        migrations: List[PlannedMigration] = []
        placed: List[Tuple[int, int, float]] = []
        for vm in host.vms():
            if vm.activity is VmActivity.ACTIVE:
                if not self.policy.full_migrate_active:
                    self._rollback(placed, shadow, spikes)
                    return None
                size = vm.memory_mib
                deviation = 0.0
                working_set = None
                mode = MigrationMode.FULL
            else:
                if vm.idle_intervals < self.min_idle_intervals:
                    self._rollback(placed, shadow, spikes)
                    return None
                nominal, deviation = self.intervals.interval(vm)
                size = nominal
                working_set = nominal
                mode = MigrationMode.PARTIAL
            destination = self._first_fit(size, deviation, shadow, spikes)
            if destination is None:
                self._rollback(placed, shadow, spikes)
                return None
            position = shadow.index[destination]
            shadow.place(destination, size)
            spikes[position].append(deviation)
            placed.append((destination, position, size))
            migrations.append(PlannedMigration(
                vm_id=vm.vm_id,
                source_id=host.host_id,
                destination_id=destination,
                mode=mode,
                working_set_mib=working_set,
            ))
        return migrations

    def _first_fit(
        self,
        size: float,
        deviation: float,
        shadow: _ShadowCapacity,
        spikes: List[List[float]],
    ) -> Optional[int]:
        """First robust-feasible destination: powered/woken hosts first,
        then sleeping ones; ascending host id within each tier."""
        effective = shadow.effective
        for tier in (True, False):
            for position, host_id in enumerate(shadow.ids):
                if effective[position] != tier:
                    continue
                if self._robust_fits(position, size, deviation, shadow,
                                     spikes):
                    return host_id
        return None

    def _rollback(
        self,
        placed: List[Tuple[int, int, float]],
        shadow: _ShadowCapacity,
        spikes: List[List[float]],
    ) -> None:
        for destination, position, size in reversed(placed):
            shadow.unplace(destination, size)
            spikes[position].pop()

    # -- compaction -----------------------------------------------------

    def _plan_compaction(
        self,
        cluster: Cluster,
        shadow: _ShadowCapacity,
        spikes: List[List[float]],
    ) -> List[HostVacatePlan]:
        """Empty lightly-loaded powered consolidation hosts into peers
        that stay Γ-robust (same low-water/headroom levers as greedy)."""
        low_water = GreedyVacatePlanner.COMPACTION_LOW_WATER
        candidates = sorted(
            (
                host
                for host in cluster.consolidation_hosts
                if host.is_powered
                and host.vm_count > 0
                and host.used_mib < low_water * host.capacity_mib
            ),
            key=lambda host: host.used_mib,
        )
        compactions: List[HostVacatePlan] = []
        emptied: set = set()
        for host in candidates:
            migrations: List[PlannedMigration] = []
            placed: List[Tuple[int, int, float]] = []
            feasible = True
            for vm in host.vms():
                size = vm.resident_mib
                deviation = self._resident_spike(vm)
                destination = self._first_fit_compact(
                    size, deviation, shadow, spikes, host.host_id, emptied
                )
                if destination is None:
                    feasible = False
                    break
                position = shadow.index[destination]
                shadow.place(destination, size)
                spikes[position].append(deviation)
                placed.append((destination, position, size))
                mode = (
                    MigrationMode.PARTIAL
                    if vm.residency is Residency.PARTIAL
                    else MigrationMode.FULL
                )
                migrations.append(PlannedMigration(
                    vm_id=vm.vm_id,
                    source_id=host.host_id,
                    destination_id=destination,
                    mode=mode,
                    working_set_mib=(
                        vm.working_set_mib
                        if mode is MigrationMode.PARTIAL
                        else None
                    ),
                ))
            if feasible and migrations:
                compactions.append(HostVacatePlan(host.host_id, migrations))
                emptied.add(host.host_id)
            else:
                self._rollback(placed, shadow, spikes)
        return compactions

    def _first_fit_compact(
        self,
        size: float,
        deviation: float,
        shadow: _ShadowCapacity,
        spikes: List[List[float]],
        source_id: int,
        emptied: set,
    ) -> Optional[int]:
        """First robust destination among originally-powered peers that
        are not being emptied themselves, keeping compaction headroom."""
        reserve_fraction = GreedyVacatePlanner.COMPACTION_HEADROOM
        powered = shadow.powered
        capacity = shadow.capacity
        woken = shadow.woken
        for position, host_id in enumerate(shadow.ids):
            if host_id == source_id or host_id in emptied:
                continue
            if not powered[position] or host_id in woken:
                continue
            reserve = reserve_fraction * capacity[position]
            if self._robust_fits(position, size, deviation, shadow, spikes,
                                 reserve=reserve):
                return host_id
        return None


# ----------------------------------------------------------------------
# the registered strategy family
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GammaRobustStrategy(PlacementStrategy):
    """``GammaRobust@Γ``: Γ-robust first-fit placement (picklable)."""

    gamma: int = 1
    spike_min: float = 0.25
    spike_max: float = 0.75

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ConfigError(f"gamma must be >= 0, got {self.gamma}")
        if not 0.0 <= self.spike_min <= self.spike_max <= 1.0:
            raise ConfigError(
                "spike fractions must satisfy 0 <= spike_min <= "
                f"spike_max <= 1, got [{self.spike_min}, {self.spike_max}]"
            )

    @property
    def name(self) -> str:
        return f"GammaRobust@{self.gamma}"

    @property
    def spec(self) -> PolicySpec:
        return GAMMA_ROBUST_POLICY

    def build_planner(
        self,
        working_sets: WorkingSetSampler,
        rng: random.Random,
        min_idle_intervals: int = 1,
        destination: DestinationStrategy = DestinationStrategy.RANDOM,
        streams: Optional[RngStreams] = None,
    ) -> GammaRobustPlanner:
        # ``rng`` and ``destination`` are part of the strategy protocol
        # but deliberately unused: robust placement is deterministic
        # first-fit and must not advance the manager's stream.
        root_seed = streams.seed if streams is not None else 0
        intervals = DemandIntervalModel(
            working_sets,
            root_seed,
            spike_min=self.spike_min,
            spike_max=self.spike_max,
        )
        return GammaRobustPlanner(
            policy=self.spec,
            working_sets=working_sets,
            intervals=intervals,
            gamma=self.gamma,
            min_idle_intervals=min_idle_intervals,
        )


def _gamma_factory(argument: str) -> GammaRobustStrategy:
    """Registry factory for ``GammaRobust`` / ``GammaRobust@N`` names."""
    if not argument:
        return GammaRobustStrategy()
    try:
        gamma = int(argument)
    except ValueError:
        raise ConfigError(
            f"GammaRobust parameter must be an integer Γ, got {argument!r}"
        )
    return GammaRobustStrategy(gamma=gamma)


register_family("GammaRobust", _gamma_factory)
