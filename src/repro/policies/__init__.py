"""Policy families beyond the paper's four.

Each module in this package defines a :class:`~repro.core.strategies.
PlacementStrategy` implementation and registers it (importing this
package is what makes the families resolvable by name — the strategy
registry does so lazily on first lookup).
"""

from repro.policies.gamma import (
    GAMMA_ROBUST_POLICY,
    GammaInstance,
    GammaItem,
    GammaRobustPlanner,
    GammaRobustStrategy,
    DemandIntervalModel,
    brute_force_minimum_bins,
    gamma_first_fit,
    minimum_bins,
    oracle_gap_report,
    render_gap_report,
    robust_fits,
    robust_load,
    seeded_instance,
)

__all__ = [
    "GAMMA_ROBUST_POLICY",
    "GammaInstance",
    "GammaItem",
    "GammaRobustPlanner",
    "GammaRobustStrategy",
    "DemandIntervalModel",
    "brute_force_minimum_bins",
    "gamma_first_fit",
    "minimum_bins",
    "oracle_gap_report",
    "render_gap_report",
    "robust_fits",
    "robust_load",
    "seeded_instance",
]
