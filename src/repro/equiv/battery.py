"""The equivalence battery: ensemble vs ensemble, verdict per metric.

:func:`compare_fingerprints` takes two seed ensembles of
:class:`~repro.equiv.fingerprint.RunFingerprint` and decides, metric by
metric, whether they look like the same engine:

* every continuous metric gets an unpaired two-sample KS test;
* every counter metric gets the conditional count-split test on totals;
* the sleep-duration histograms get a pooled chi-square homogeneity
  test;
* when the two ensembles were run on the *same* seed list, every metric
  additionally gets an exact paired sign test on the per-seed
  differences — this is where the battery's power against small
  systematic biases comes from (an off-by-one watt moves every seed the
  same way; a legitimately reordered engine produces mixed signs).

Significance is Bonferroni-controlled: the whole battery holds a
family-wise error rate of :attr:`BatteryConfig.family_alpha`, so a
reference engine compared against itself across disjoint seed ranges is
accepted with probability ``>= 1 - family_alpha`` regardless of how
many metrics the fingerprint grows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.equiv.fingerprint import (
    RunFingerprint,
    continuous_metrics,
    counter_metrics,
)
from repro.equiv.stats import (
    TestResult,
    chi_square_homogeneity,
    count_split_p_value,
    ks_two_sample,
    pooled_dispersion,
    sign_test_p_value,
)
from repro.errors import ConfigError

__all__ = [
    "COMMITTED_ENSEMBLE_SIZE",
    "BatteryConfig",
    "MetricVerdict",
    "EquivalenceReport",
    "compare_fingerprints",
    "report_from_dict",
]

#: The ensemble size the mutation self-tests commit to: every mutant in
#: :mod:`repro.equiv.mutants` must be rejected, and the reference
#: accepted, at exactly this many seeds per side.
COMMITTED_ENSEMBLE_SIZE = 20


@dataclass(frozen=True)
class BatteryConfig:
    """Knobs of one battery run.

    ``family_alpha`` is the family-wise false-rejection budget for the
    *whole* battery; each individual test runs at
    ``family_alpha / total_tests`` (Bonferroni).  ``paired`` controls
    whether matching seed lists trigger the sign tests (on by default;
    baselines compared across disjoint seed ranges never pair).
    """

    family_alpha: float = 0.05
    paired: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.family_alpha < 1.0:
            raise ConfigError(
                f"family_alpha must be in (0, 1), got {self.family_alpha}"
            )


@dataclass(frozen=True)
class MetricVerdict:
    """One metric's test outcome within a battery run."""

    metric: str
    test: str
    statistic: float
    p_value: float
    threshold: float

    @property
    def passed(self) -> bool:
        return self.p_value >= self.threshold

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "test": self.test,
            "statistic": self.statistic,
            "p_value": self.p_value,
            "threshold": self.threshold,
            "passed": self.passed,
        }


@dataclass(frozen=True)
class EquivalenceReport:
    """The battery's full output for one ensemble-vs-ensemble run."""

    label_a: str
    label_b: str
    policy: str
    day_type: str
    ensemble_size_a: int
    ensemble_size_b: int
    paired: bool
    family_alpha: float
    verdicts: Tuple[MetricVerdict, ...] = field(default_factory=tuple)

    @property
    def equivalent(self) -> bool:
        """True iff every metric verdict passed."""
        return all(verdict.passed for verdict in self.verdicts)

    def failures(self) -> List[MetricVerdict]:
        """The verdicts that rejected, most significant first."""
        return sorted(
            (v for v in self.verdicts if not v.passed),
            key=lambda v: v.p_value,
        )

    def as_dict(self) -> dict:
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "policy": self.policy,
            "day_type": self.day_type,
            "ensemble_size_a": self.ensemble_size_a,
            "ensemble_size_b": self.ensemble_size_b,
            "paired": self.paired,
            "family_alpha": self.family_alpha,
            "equivalent": self.equivalent,
            "verdicts": [verdict.as_dict() for verdict in self.verdicts],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self, verbose: bool = False) -> str:
        """Human-readable summary (the ``repro equiv`` CLI output)."""
        lines = [
            f"equivalence battery: {self.label_a} vs {self.label_b}",
            f"  policy={self.policy} day={self.day_type} "
            f"n_a={self.ensemble_size_a} n_b={self.ensemble_size_b} "
            f"paired={'yes' if self.paired else 'no'}",
            f"  tests={len(self.verdicts)} "
            f"family_alpha={self.family_alpha:g}",
        ]
        failures = self.failures()
        if failures:
            lines.append(f"  VERDICT: NOT EQUIVALENT ({len(failures)} metric"
                         f"{'s' if len(failures) != 1 else ''} rejected)")
            for verdict in failures:
                lines.append(
                    f"    REJECT {verdict.metric} [{verdict.test}] "
                    f"p={verdict.p_value:.3g} < {verdict.threshold:.3g} "
                    f"stat={verdict.statistic:.6g}"
                )
        else:
            lines.append("  VERDICT: equivalent (no metric rejected)")
        if verbose:
            for verdict in sorted(self.verdicts, key=lambda v: v.metric):
                flag = "ok    " if verdict.passed else "REJECT"
                lines.append(
                    f"    {flag} {verdict.metric} [{verdict.test}] "
                    f"p={verdict.p_value:.3g} stat={verdict.statistic:.6g}"
                )
        return "\n".join(lines)


def _validate_ensemble(
    fingerprints: Sequence[RunFingerprint], label: str
) -> Tuple[str, str]:
    if not fingerprints:
        raise ConfigError(f"ensemble {label!r} is empty")
    policies = {fp.policy for fp in fingerprints}
    day_types = {fp.day_type for fp in fingerprints}
    if len(policies) > 1 or len(day_types) > 1:
        raise ConfigError(
            f"ensemble {label!r} mixes runs: policies={sorted(policies)} "
            f"day_types={sorted(day_types)}"
        )
    return fingerprints[0].policy, fingerprints[0].day_type


def _metric_columns(
    fingerprints_a: Sequence[RunFingerprint],
    fingerprints_b: Sequence[RunFingerprint],
    extract,
) -> Tuple[Dict[str, List[float]], Dict[str, List[float]]]:
    """Aligned metric columns over the union of both ensembles' keys.

    A run that never enters some power state has no key for it, so the
    key set legitimately varies per seed — and an engine that *stops*
    entering a state entirely must be rejected, not erred on.  Missing
    metrics read as 0.0 (no time, no energy, no events in that bucket).
    """
    rows_a = [extract(fp) for fp in fingerprints_a]
    rows_b = [extract(fp) for fp in fingerprints_b]
    key_union: set = set()
    for row in rows_a:
        key_union.update(row)
    for row in rows_b:
        key_union.update(row)
    names = sorted(key_union)
    columns_a = {
        name: [row.get(name, 0.0) for row in rows_a] for name in names
    }
    columns_b = {
        name: [row.get(name, 0.0) for row in rows_b] for name in names
    }
    return columns_a, columns_b


def _paired_signs(
    column_a: Sequence[float], column_b: Sequence[float]
) -> Tuple[int, int]:
    positive = negative = 0
    for a, b in zip(column_a, column_b):
        if a > b:
            positive += 1
        elif a < b:
            negative += 1
    return positive, negative


def compare_fingerprints(
    fingerprints_a: Sequence[RunFingerprint],
    fingerprints_b: Sequence[RunFingerprint],
    config: Optional[BatteryConfig] = None,
    label_a: str = "A",
    label_b: str = "B",
) -> EquivalenceReport:
    """Run the full battery over two fingerprint ensembles."""
    config = config or BatteryConfig()
    policy_a, day_a = _validate_ensemble(fingerprints_a, label_a)
    policy_b, day_b = _validate_ensemble(fingerprints_b, label_b)
    if policy_a != policy_b or day_a != day_b:
        raise ConfigError(
            f"ensembles are not comparable: {policy_a}/{day_a} vs "
            f"{policy_b}/{day_b}"
        )

    continuous_a, continuous_b = _metric_columns(
        fingerprints_a, fingerprints_b, continuous_metrics
    )
    counters_a, counters_b = _metric_columns(
        fingerprints_a, fingerprints_b, counter_metrics
    )

    seeds_a = [fp.seed for fp in fingerprints_a]
    seeds_b = [fp.seed for fp in fingerprints_b]
    paired = config.paired and seeds_a == seeds_b

    # One pass to count the tests so Bonferroni thresholds are exact.
    pair_tests = len(continuous_a) + len(counters_a) if paired else 0
    total_tests = len(continuous_a) + len(counters_a) + 1 + pair_tests
    threshold = config.family_alpha / total_tests

    n_a, n_b = len(fingerprints_a), len(fingerprints_b)
    verdicts: List[MetricVerdict] = []

    def add(metric: str, test: str, result: TestResult) -> None:
        verdicts.append(
            MetricVerdict(
                metric=metric,
                test=test,
                statistic=result.statistic,
                p_value=result.p_value,
                threshold=threshold,
            )
        )

    for metric in sorted(continuous_a):
        add(metric, "ks", ks_two_sample(continuous_a[metric],
                                        continuous_b[metric]))
        if paired:
            positive, negative = _paired_signs(
                continuous_a[metric], continuous_b[metric]
            )
            add(metric, "sign", sign_test_p_value(positive, negative))

    for metric in sorted(counters_a):
        # Quasi-binomial: deflate totals by the pooled variance-to-mean
        # ratio so seed-to-seed workload variance (over-dispersion
        # relative to Poisson) cannot falsely reject honest ensembles.
        add(
            metric,
            "count-split",
            count_split_p_value(
                sum(counters_a[metric]),
                sum(counters_b[metric]),
                n_a,
                n_b,
                dispersion=pooled_dispersion(
                    counters_a[metric], counters_b[metric]
                ),
            ),
        )
        if paired:
            positive, negative = _paired_signs(
                counters_a[metric], counters_b[metric]
            )
            add(metric, "sign", sign_test_p_value(positive, negative))

    hist_a = [0.0] * len(fingerprints_a[0].sleep_hist)
    hist_b = [0.0] * len(fingerprints_b[0].sleep_hist)
    for fingerprint in fingerprints_a:
        for i, count in enumerate(fingerprint.sleep_hist):
            hist_a[i] += count
    for fingerprint in fingerprints_b:
        for i, count in enumerate(fingerprint.sleep_hist):
            hist_b[i] += count
    hist_result, _dof = chi_square_homogeneity(hist_a, hist_b)
    add("sleep_hist", "chi2-homogeneity", hist_result)

    return EquivalenceReport(
        label_a=label_a,
        label_b=label_b,
        policy=policy_a,
        day_type=day_a,
        ensemble_size_a=n_a,
        ensemble_size_b=n_b,
        paired=paired,
        family_alpha=config.family_alpha,
        verdicts=tuple(verdicts),
    )


def report_from_dict(payload: Mapping) -> EquivalenceReport:
    """Rebuild a report from :meth:`EquivalenceReport.as_dict` output."""
    try:
        verdicts = tuple(
            MetricVerdict(
                metric=str(v["metric"]),
                test=str(v["test"]),
                statistic=float(v["statistic"]),
                p_value=float(v["p_value"]),
                threshold=float(v["threshold"]),
            )
            for v in payload["verdicts"]
        )
        return EquivalenceReport(
            label_a=str(payload["label_a"]),
            label_b=str(payload["label_b"]),
            policy=str(payload["policy"]),
            day_type=str(payload["day_type"]),
            ensemble_size_a=int(payload["ensemble_size_a"]),
            ensemble_size_b=int(payload["ensemble_size_b"]),
            paired=bool(payload["paired"]),
            family_alpha=float(payload["family_alpha"]),
            verdicts=verdicts,
        )
    except KeyError as missing:
        raise ConfigError(f"report payload missing {missing}") from None
