"""Statistical engine-equivalence battery (DESIGN.md §16).

Certifies that two simulation engines are *statistically equivalent*:
over an ensemble of pinned seeds their run fingerprints — total and
per-state energy, migration/fault counters, per-category traffic, and
sleep-duration histograms — are indistinguishable under a
Bonferroni-controlled battery of pure-stdlib two-sample tests.  The
battery proves its own power by mutation self-tests: deliberately
defective engines it must reject, and the reference engine it must
accept against itself across disjoint seed ranges.

Entry points: ``repro equiv selftest|baseline|compare`` on the CLI, or
:func:`~repro.equiv.harness.run_selftest` /
:func:`~repro.equiv.harness.compare_to_baseline` from code.
"""

from repro.equiv.battery import (
    COMMITTED_ENSEMBLE_SIZE,
    BatteryConfig,
    EquivalenceReport,
    MetricVerdict,
    compare_fingerprints,
    report_from_dict,
)
from repro.equiv.fingerprint import (
    SLEEP_HIST_BINS,
    RunFingerprint,
    continuous_metrics,
    counter_metrics,
    fingerprint_from_dict,
    fingerprint_from_result,
)
from repro.equiv.harness import (
    BASELINE_VERSION,
    MutantTrial,
    SelftestReport,
    baseline_seeds,
    build_baseline,
    compare_to_baseline,
    ensemble_seeds,
    load_baseline,
    read_baseline,
    run_mutant_ensemble,
    run_reference_ensemble,
    run_selftest,
    write_baseline,
)
from repro.equiv.mutants import (
    IDENTITY,
    MUTANTS,
    Mutant,
    apply_mutant,
    mutant_by_name,
    mutant_names,
)
from repro.equiv.stats import (
    TestResult,
    binom_two_sided_p,
    chi_square_homogeneity,
    chi_square_p_value,
    count_split_p_value,
    ks_p_value,
    ks_statistic,
    ks_two_sample,
    sign_test_p_value,
)

__all__ = [
    "COMMITTED_ENSEMBLE_SIZE",
    "BatteryConfig",
    "EquivalenceReport",
    "MetricVerdict",
    "compare_fingerprints",
    "report_from_dict",
    "SLEEP_HIST_BINS",
    "RunFingerprint",
    "continuous_metrics",
    "counter_metrics",
    "fingerprint_from_dict",
    "fingerprint_from_result",
    "BASELINE_VERSION",
    "MutantTrial",
    "SelftestReport",
    "baseline_seeds",
    "build_baseline",
    "compare_to_baseline",
    "ensemble_seeds",
    "load_baseline",
    "read_baseline",
    "run_mutant_ensemble",
    "run_reference_ensemble",
    "run_selftest",
    "write_baseline",
    "IDENTITY",
    "MUTANTS",
    "Mutant",
    "apply_mutant",
    "mutant_by_name",
    "mutant_names",
    "TestResult",
    "binom_two_sided_p",
    "chi_square_homogeneity",
    "chi_square_p_value",
    "count_split_p_value",
    "ks_p_value",
    "ks_statistic",
    "ks_two_sample",
    "sign_test_p_value",
]
