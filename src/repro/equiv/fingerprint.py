"""Typed per-run fingerprints: what "the same engine" must reproduce.

A :class:`RunFingerprint` compresses one day's
:class:`~repro.farm.metrics.FarmResult` into the distributional facts
engine equivalence is judged on — total and per-state energy, the
migration/fault counters, per-category traffic, delay statistics, and
the home-host sleep-duration histogram.  It deliberately drops
trajectory detail (event timings, per-interval series): a statistically
equivalent engine is free to reorder work within a day, but over a seed
ensemble these marginals must match.

Fingerprints are frozen, hashable, and JSON round-trippable
(:meth:`RunFingerprint.as_dict` / :func:`fingerprint_from_dict`) so
reference ensembles can be committed as goldens
(``tests/golden/equiv_baseline.json``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import ConfigError
from repro.farm.metrics import FarmResult

__all__ = [
    "SLEEP_HIST_BINS",
    "RunFingerprint",
    "fingerprint_from_result",
    "fingerprint_from_dict",
    "continuous_metrics",
    "counter_metrics",
]

#: Bin count of the home-host sleep-fraction histogram (equal-width
#: bins over [0, 1]; a host asleep the whole day lands in the last bin).
SLEEP_HIST_BINS = 8

Pairs = Tuple[Tuple[str, float], ...]


def _pairs(mapping: Mapping[str, float]) -> Pairs:
    return tuple(sorted((str(k), float(v)) for k, v in mapping.items()))


@dataclass(frozen=True)
class RunFingerprint:
    """The equivalence-relevant marginals of one simulated day."""

    seed: int
    policy: str
    day_type: str

    #: Total managed energy over the day (Figure 8's numerator).
    total_energy_j: float
    #: Energy per power state plus the lump-surcharge bucket.
    state_energy_j: Pairs
    #: Residence seconds per power state, summed over hosts.
    state_time_s: Pairs
    #: Migration/operation counters (``MigrationCounters`` fields).
    counters: Pairs
    #: Fault counters (``FaultCounters.as_dict`` fields).
    faults: Pairs
    #: Traffic MiB per ledger category.
    traffic_mib: Pairs
    #: All bytes that crossed the datacenter network.
    network_total_mib: float
    #: Mean idle-to-active delay and the zero-delay fraction (§5.5).
    mean_delay_s: float
    zero_delay_fraction: float
    #: Home-host sleep fractions binned into :data:`SLEEP_HIST_BINS`
    #: equal-width bins over [0, 1] (one entry per home host).
    sleep_hist: Tuple[int, ...]
    #: Mean home-host sleep fraction (the histogram's scalar shadow).
    mean_sleep_fraction: float

    def as_dict(self) -> dict:
        """A JSON-serializable snapshot (keys sorted for stable diffs)."""
        return {
            "seed": self.seed,
            "policy": self.policy,
            "day_type": self.day_type,
            "total_energy_j": self.total_energy_j,
            "state_energy_j": dict(self.state_energy_j),
            "state_time_s": dict(self.state_time_s),
            "counters": dict(self.counters),
            "faults": dict(self.faults),
            "traffic_mib": dict(self.traffic_mib),
            "network_total_mib": self.network_total_mib,
            "mean_delay_s": self.mean_delay_s,
            "zero_delay_fraction": self.zero_delay_fraction,
            "sleep_hist": list(self.sleep_hist),
            "mean_sleep_fraction": self.mean_sleep_fraction,
        }


def _sleep_histogram(
    home_sleep_s: Mapping[int, float], horizon_s: float
) -> Tuple[Tuple[int, ...], float]:
    if horizon_s <= 0.0:
        raise ConfigError("fingerprint needs a positive horizon")
    bins = [0] * SLEEP_HIST_BINS
    fractions = []
    for host_id in sorted(home_sleep_s):
        fraction = home_sleep_s[host_id] / horizon_s
        fraction = min(max(fraction, 0.0), 1.0)
        fractions.append(fraction)
        index = min(int(fraction * SLEEP_HIST_BINS), SLEEP_HIST_BINS - 1)
        bins[index] += 1
    mean_fraction = sum(fractions) / len(fractions) if fractions else 0.0
    return tuple(bins), mean_fraction


def fingerprint_from_result(result: FarmResult) -> RunFingerprint:
    """Extract the fingerprint of one finished run."""
    if result.energy is None:
        raise ConfigError("result has no energy report; did the run finish?")
    delays = result.delay_values()
    mean_delay = sum(delays) / len(delays) if delays else 0.0
    sleep_hist, mean_sleep = _sleep_histogram(
        result.home_sleep_s, result.horizon_s
    )
    return RunFingerprint(
        seed=result.seed,
        policy=result.policy_name,
        day_type=result.day_type,
        total_energy_j=result.energy.managed_joules,
        state_energy_j=_pairs(result.state_energy_j),
        state_time_s=_pairs(result.state_time_s),
        counters=_pairs(dataclasses.asdict(result.counters)),
        faults=_pairs(result.faults.as_dict()),
        traffic_mib=_pairs(result.traffic.as_dict()),
        network_total_mib=result.traffic.network_total_mib(),
        mean_delay_s=mean_delay,
        zero_delay_fraction=result.zero_delay_fraction(),
        sleep_hist=sleep_hist,
        mean_sleep_fraction=mean_sleep,
    )


def fingerprint_from_dict(payload: Mapping) -> RunFingerprint:
    """Rebuild a fingerprint from :meth:`RunFingerprint.as_dict` output."""
    try:
        return RunFingerprint(
            seed=int(payload["seed"]),
            policy=str(payload["policy"]),
            day_type=str(payload["day_type"]),
            total_energy_j=float(payload["total_energy_j"]),
            state_energy_j=_pairs(payload["state_energy_j"]),
            state_time_s=_pairs(payload["state_time_s"]),
            counters=_pairs(payload["counters"]),
            faults=_pairs(payload["faults"]),
            traffic_mib=_pairs(payload["traffic_mib"]),
            network_total_mib=float(payload["network_total_mib"]),
            mean_delay_s=float(payload["mean_delay_s"]),
            zero_delay_fraction=float(payload["zero_delay_fraction"]),
            sleep_hist=tuple(int(v) for v in payload["sleep_hist"]),
            mean_sleep_fraction=float(payload["mean_sleep_fraction"]),
        )
    except KeyError as missing:
        raise ConfigError(f"fingerprint payload missing {missing}") from None


def continuous_metrics(fingerprint: RunFingerprint) -> Dict[str, float]:
    """The fingerprint's continuous metrics, flat and namespaced."""
    metrics = {
        "total_energy_j": fingerprint.total_energy_j,
        "network_total_mib": fingerprint.network_total_mib,
        "mean_delay_s": fingerprint.mean_delay_s,
        "zero_delay_fraction": fingerprint.zero_delay_fraction,
        "mean_sleep_fraction": fingerprint.mean_sleep_fraction,
    }
    for state, joules in fingerprint.state_energy_j:
        metrics[f"state_energy_j.{state}"] = joules
    for state, seconds in fingerprint.state_time_s:
        metrics[f"state_time_s.{state}"] = seconds
    for category, mib in fingerprint.traffic_mib:
        metrics[f"traffic_mib.{category}"] = mib
    return metrics


def counter_metrics(fingerprint: RunFingerprint) -> Dict[str, float]:
    """The fingerprint's event-count metrics, flat and namespaced."""
    metrics = {}
    for name, value in fingerprint.counters:
        metrics[f"counters.{name}"] = value
    for name, value in fingerprint.faults:
        metrics[f"faults.{name}"] = value
    return metrics
