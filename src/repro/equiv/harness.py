"""Ensemble runner and self-test harness for the equivalence battery.

Three layers:

* **Ensembles** — :func:`ensemble_seeds` derives member seeds from one
  root via the repo's SHA-256 substream derivation, and
  :func:`run_reference_ensemble` / :func:`run_mutant_ensemble` turn a
  seed list into fingerprints.  Reference ensembles ride the existing
  :class:`~repro.farm.runner.SweepRunner` (so they parallelize like any
  sweep); mutant ensembles run serially because a mutant is applied by
  object surgery on a constructed simulation, which does not pickle.
  Both paths derive the trace seed through
  :attr:`~repro.farm.runner.RunSpec.trace_seed`, so a mutant sees the
  *exact* trace ensemble its reference counterpart saw.

* **Baselines** — :func:`build_baseline` captures reference ensembles
  for a set of policies into a JSON-serializable payload
  (``tests/golden/equiv_baseline.json``); :func:`load_baseline` /
  :func:`compare_to_baseline` replay a candidate engine at the
  baseline's pinned seeds and run the battery *paired*, which is the
  certification workflow for an engine variant.

* **Self-test** — :func:`run_selftest` proves the battery's power: every
  registered mutant must be rejected at the committed ensemble size,
  the identity mutant and a disjoint-seed reference re-run must be
  accepted.  CI runs a small-ensemble version of this on every push.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.strategies import PolicyLike, resolve_strategy
from repro.equiv.battery import (
    COMMITTED_ENSEMBLE_SIZE,
    BatteryConfig,
    EquivalenceReport,
    compare_fingerprints,
)
from repro.equiv.fingerprint import (
    RunFingerprint,
    fingerprint_from_dict,
    fingerprint_from_result,
)
from repro.equiv.mutants import MUTANTS, Mutant, apply_mutant
from repro.errors import ConfigError
from repro.farm.config import FarmConfig
from repro.farm.runner import RunSpec, SweepRunner
from repro.farm.simulation import FarmSimulation
from repro.simulator.randomness import derive_seed
from repro.traces.model import DayType
from repro.traces.sampler import generate_ensemble

__all__ = [
    "BASELINE_VERSION",
    "ensemble_seeds",
    "run_reference_ensemble",
    "run_mutant_ensemble",
    "MutantTrial",
    "SelftestReport",
    "run_selftest",
    "build_baseline",
    "load_baseline",
    "baseline_seeds",
    "compare_to_baseline",
    "write_baseline",
    "read_baseline",
]

#: Schema version of the committed baseline payload.
BASELINE_VERSION = 1


def ensemble_seeds(root_seed: int, count: int) -> List[int]:
    """Derive ``count`` member seeds from one root.

    Uses the repo-wide SHA-256 substream derivation
    (:func:`~repro.simulator.randomness.derive_seed`), so member seeds
    are stable across platforms, collision-free in practice, and two
    distinct roots yield disjoint seed lists.
    """
    if count < 1:
        raise ConfigError(f"ensemble needs at least one member, got {count}")
    return [derive_seed(root_seed, f"member.{i}") for i in range(count)]


def run_reference_ensemble(
    config: FarmConfig,
    policy: PolicyLike,
    day_type: DayType,
    seeds: Sequence[int],
    runner: Optional[SweepRunner] = None,
) -> List[RunFingerprint]:
    """Fingerprint the reference engine at every seed (sweep-parallel)."""
    if not seeds:
        raise ConfigError("reference ensemble needs at least one seed")
    runner = runner or SweepRunner(backend="serial")
    specs = [
        RunSpec(config, policy, day_type, seed, label="equiv")
        for seed in seeds
    ]
    return [
        fingerprint_from_result(result)
        for result in runner.run_results(specs)
    ]


def run_mutant_ensemble(
    config: FarmConfig,
    policy: PolicyLike,
    day_type: DayType,
    seeds: Sequence[int],
    mutant: Mutant,
) -> List[RunFingerprint]:
    """Fingerprint a perturbed engine at every seed (serial).

    Replicates the reference path exactly — same trace-seed derivation
    via :attr:`RunSpec.trace_seed`, same constructor — then applies the
    mutant's object surgery before running.
    """
    if not seeds:
        raise ConfigError("mutant ensemble needs at least one seed")
    fingerprints = []
    for seed in seeds:
        spec = RunSpec(config, policy, day_type, seed, label="equiv-mutant")
        ensemble = generate_ensemble(
            config.total_vms,
            day_type,
            seed=spec.trace_seed,
            config=config.traces,
        )
        sim = FarmSimulation(config, policy, ensemble, seed=seed)
        apply_mutant(sim, mutant)
        fingerprints.append(fingerprint_from_result(sim.run()))
    return fingerprints


# ----------------------------------------------------------------------
# self-test
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MutantTrial:
    """One mutant's battery run within a self-test."""

    mutant: str
    description: str
    should_reject: bool
    report: EquivalenceReport

    @property
    def rejected(self) -> bool:
        return not self.report.equivalent

    @property
    def passed(self) -> bool:
        """Did the battery do what this mutant demands of it?"""
        return self.rejected == self.should_reject

    def as_dict(self) -> dict:
        return {
            "mutant": self.mutant,
            "description": self.description,
            "should_reject": self.should_reject,
            "rejected": self.rejected,
            "passed": self.passed,
            "report": self.report.as_dict(),
        }


@dataclass(frozen=True)
class SelftestReport:
    """The battery's full power self-test."""

    policy: str
    day_type: str
    ensemble_size: int
    trials: Tuple[MutantTrial, ...]
    #: Reference vs reference across disjoint seed roots — must accept.
    disjoint_report: EquivalenceReport

    @property
    def passed(self) -> bool:
        return (
            all(trial.passed for trial in self.trials)
            and self.disjoint_report.equivalent
        )

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "day_type": self.day_type,
            "ensemble_size": self.ensemble_size,
            "passed": self.passed,
            "trials": [trial.as_dict() for trial in self.trials],
            "disjoint_report": self.disjoint_report.as_dict(),
        }

    def render(self) -> str:
        lines = [
            f"equivalence self-test: policy={self.policy} "
            f"day={self.day_type} n={self.ensemble_size}",
        ]
        for trial in self.trials:
            want = "reject" if trial.should_reject else "accept"
            got = "rejected" if trial.rejected else "accepted"
            flag = "ok    " if trial.passed else "FAIL  "
            lines.append(f"  {flag} {trial.mutant}: want {want}, {got}")
        flag = "ok    " if self.disjoint_report.equivalent else "FAIL  "
        lines.append(
            f"  {flag} disjoint-seed reference re-run: "
            f"{'accepted' if self.disjoint_report.equivalent else 'rejected'}"
        )
        lines.append(
            "SELFTEST PASSED" if self.passed else "SELFTEST FAILED"
        )
        return "\n".join(lines)


def run_selftest(
    config: FarmConfig,
    policy: PolicyLike,
    day_type: DayType,
    root_seed: int = 2016,
    ensemble_size: int = COMMITTED_ENSEMBLE_SIZE,
    battery_config: Optional[BatteryConfig] = None,
    mutants: Optional[Sequence[str]] = None,
    runner: Optional[SweepRunner] = None,
) -> SelftestReport:
    """Prove the battery's power against the registered mutants.

    Runs the reference once on the shared seed list, compares every
    requested mutant against it paired, then re-runs the reference on a
    disjoint seed list (root ``derive_seed(root_seed, "disjoint")``) and
    requires unpaired acceptance.  A mutant pinned to a specific policy
    (:attr:`~repro.equiv.mutants.Mutant.policy` — its perturbation is a
    no-op elsewhere) is trialled under that policy, against a reference
    ensemble built for it on the same seeds.
    """
    battery_config = battery_config or BatteryConfig()
    seeds = ensemble_seeds(root_seed, ensemble_size)
    references: Dict[str, List[RunFingerprint]] = {}

    def reference_for(pol: PolicyLike) -> List[RunFingerprint]:
        name = resolve_strategy(pol).name
        if name not in references:
            references[name] = run_reference_ensemble(
                config, pol, day_type, seeds, runner=runner
            )
        return references[name]

    reference = reference_for(policy)

    names = list(mutants) if mutants is not None else sorted(MUTANTS)
    trials = []
    for name in names:
        mutant = MUTANTS.get(name)
        if mutant is None:
            raise ConfigError(
                f"unknown mutant {name!r}; choose from {sorted(MUTANTS)}"
            )
        trial_policy = mutant.policy if mutant.policy is not None else policy
        perturbed = run_mutant_ensemble(
            config, trial_policy, day_type, seeds, mutant
        )
        report = compare_fingerprints(
            reference_for(trial_policy),
            perturbed,
            config=battery_config,
            label_a="reference",
            label_b=f"mutant:{mutant.name}",
        )
        trials.append(
            MutantTrial(
                mutant=mutant.name,
                description=mutant.description,
                should_reject=mutant.should_reject,
                report=report,
            )
        )

    disjoint_seeds = ensemble_seeds(
        derive_seed(root_seed, "disjoint"), ensemble_size
    )
    disjoint = run_reference_ensemble(
        config, policy, day_type, disjoint_seeds, runner=runner
    )
    disjoint_report = compare_fingerprints(
        reference,
        disjoint,
        config=battery_config,
        label_a="reference",
        label_b="reference-disjoint-seeds",
    )

    first = reference[0]
    return SelftestReport(
        policy=first.policy,
        day_type=first.day_type,
        ensemble_size=ensemble_size,
        trials=tuple(trials),
        disjoint_report=disjoint_report,
    )


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------


def build_baseline(
    config: FarmConfig,
    policies: Sequence[PolicyLike],
    day_type: DayType,
    root_seed: int,
    ensemble_size: int = COMMITTED_ENSEMBLE_SIZE,
    runner: Optional[SweepRunner] = None,
) -> dict:
    """Capture reference ensembles for ``policies`` as a JSON payload."""
    if not policies:
        raise ConfigError("baseline needs at least one policy")
    seeds = ensemble_seeds(root_seed, ensemble_size)
    entries = {}
    for policy in policies:
        name = resolve_strategy(policy).name
        if name in entries:
            raise ConfigError(f"duplicate baseline policy {name!r}")
        fingerprints = run_reference_ensemble(
            config, policy, day_type, seeds, runner=runner
        )
        entries[name] = [fp.as_dict() for fp in fingerprints]
    return {
        "version": BASELINE_VERSION,
        "day_type": day_type.value,
        "root_seed": root_seed,
        "ensemble_size": ensemble_size,
        "seeds": seeds,
        "policies": entries,
    }


def load_baseline(payload: Mapping) -> Dict[str, List[RunFingerprint]]:
    """Decode a baseline payload into fingerprint ensembles per policy."""
    try:
        version = payload["version"]
        if version != BASELINE_VERSION:
            raise ConfigError(
                f"unsupported baseline version {version!r}; "
                f"expected {BASELINE_VERSION}"
            )
        return {
            name: [fingerprint_from_dict(entry) for entry in entries]
            for name, entries in payload["policies"].items()
        }
    except KeyError as missing:
        raise ConfigError(f"baseline payload missing {missing}") from None


def baseline_seeds(payload: Mapping) -> List[int]:
    """The pinned member seeds a baseline's ensembles were run at."""
    try:
        return [int(seed) for seed in payload["seeds"]]
    except KeyError as missing:
        raise ConfigError(f"baseline payload missing {missing}") from None


def compare_to_baseline(
    payload: Mapping,
    config: FarmConfig,
    policy: PolicyLike,
    battery_config: Optional[BatteryConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> EquivalenceReport:
    """Certify the current engine against a committed baseline.

    Re-runs the engine at the baseline's pinned seeds and compares
    *paired* — the highest-power configuration, since any systematic
    per-seed drift trips the sign tests.
    """
    name = resolve_strategy(policy).name
    ensembles = load_baseline(payload)
    baseline = ensembles.get(name)
    if baseline is None:
        raise ConfigError(
            f"baseline has no policy {name!r}; it covers "
            f"{sorted(ensembles)}"
        )
    day_type = DayType(payload["day_type"])
    seeds = baseline_seeds(payload)
    current = run_reference_ensemble(
        config, policy, day_type, seeds, runner=runner
    )
    return compare_fingerprints(
        baseline,
        current,
        config=battery_config,
        label_a="baseline",
        label_b="current-engine",
    )


def write_baseline(path: str, payload: Mapping) -> None:
    """Write a baseline payload with stable formatting (golden-friendly)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_baseline(path: str) -> dict:
    """Read a baseline payload written by :func:`write_baseline`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
