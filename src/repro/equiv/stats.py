"""Pure-stdlib two-sample tests for the equivalence battery.

Nothing here draws randomness or reads clocks: every function is a
deterministic map from samples to a ``(statistic, p_value)`` pair, so a
battery run at pinned seeds is reproducible bit-for-bit.

The test inventory matches the fingerprint families:

* :func:`ks_two_sample` — two-sample Kolmogorov–Smirnov with the
  Stephens small-sample correction of the asymptotic Kolmogorov
  distribution; the workhorse for continuous fingerprint metrics.
* :func:`count_split_p_value` — an exact (Fisher-style) conditional
  binomial test on event totals: conditioned on the pooled total, two
  equal-rate engines split it ``n_a : n_b``; large totals fall back to
  the one-degree chi-square.
* :func:`sign_test_p_value` — the exact paired sign test; when both
  ensembles share a seed list this is what gives the battery its power
  against small *systematic* biases (an off-by-one watt moves every
  seed the same way, while a legitimately reordered engine produces
  mixed signs).
* :func:`chi_square_homogeneity` — pooled-histogram homogeneity for the
  sleep-duration histogram, with the general-dof survival function
  computed from the regularized incomplete gamma.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "TestResult",
    "ks_statistic",
    "ks_p_value",
    "ks_two_sample",
    "binom_two_sided_p",
    "pooled_dispersion",
    "count_split_p_value",
    "sign_test_p_value",
    "chi_square_p_value",
    "chi_square_homogeneity",
]


@dataclass(frozen=True)
class TestResult:
    """One two-sample test outcome."""

    statistic: float
    p_value: float


# ----------------------------------------------------------------------
# Kolmogorov–Smirnov
# ----------------------------------------------------------------------


def ks_statistic(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample KS statistic: sup |F_a - F_b| over the pooled support."""
    if not sample_a or not sample_b:
        raise ConfigError("KS test needs non-empty samples on both sides")
    a = sorted(sample_a)
    b = sorted(sample_b)
    n_a, n_b = len(a), len(b)
    i = j = 0
    d = 0.0
    while i < n_a and j < n_b:
        value = a[i] if a[i] <= b[j] else b[j]
        while i < n_a and a[i] <= value:
            i += 1
        while j < n_b and b[j] <= value:
            j += 1
        gap = abs(i / n_a - j / n_b)
        if gap > d:
            d = gap
    return d


def ks_p_value(statistic: float, n_a: int, n_b: int) -> float:
    """Asymptotic two-sample KS p-value (Stephens-corrected).

    Kolmogorov's series ``Q(x) = 2 * sum (-1)^(k-1) exp(-2 k^2 x^2)``
    evaluated at ``x = (sqrt(en) + 0.12 + 0.11/sqrt(en)) * D`` with
    ``en = n_a * n_b / (n_a + n_b)`` — the classic Numerical Recipes
    form, accurate enough for acceptance gating at ensemble sizes >= 8.
    """
    if n_a < 1 or n_b < 1:
        raise ConfigError("KS p-value needs positive sample sizes")
    if statistic <= 0.0:
        return 1.0
    root_en = math.sqrt(n_a * n_b / (n_a + n_b))
    x = (root_en + 0.12 + 0.11 / root_en) * statistic
    total = 0.0
    sign = 1.0
    for k in range(1, 101):
        term = sign * math.exp(-2.0 * (k * x) ** 2)
        total += term
        if abs(term) < 1e-12 * abs(total) or abs(term) < 1e-300:
            break
        sign = -sign
    return max(0.0, min(1.0, 2.0 * total))


def ks_two_sample(
    sample_a: Sequence[float], sample_b: Sequence[float]
) -> TestResult:
    """Two-sample KS test: ``TestResult(D, p)``."""
    d = ks_statistic(sample_a, sample_b)
    return TestResult(d, ks_p_value(d, len(sample_a), len(sample_b)))


# ----------------------------------------------------------------------
# exact binomial (Fisher-style conditional counts, paired signs)
# ----------------------------------------------------------------------


def _binom_log_pmf(k: int, n: int, p: float) -> float:
    return (
        math.lgamma(n + 1)
        - math.lgamma(k + 1)
        - math.lgamma(n - k + 1)
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )


#: Above this pooled total the exact two-sided binomial enumeration is
#: replaced by the one-degree chi-square (both agree to ~1e-3 there).
_EXACT_BINOM_MAX_N = 2000


def binom_two_sided_p(k: int, n: int, p: float = 0.5) -> float:
    """Exact two-sided binomial test (minimum-likelihood method).

    Sums the probability of every outcome no more likely than the
    observed one — the same convention SciPy's ``binomtest`` uses — so
    thresholds calibrated here transfer to external reimplementations.
    """
    if n < 0 or k < 0 or k > n:
        raise ConfigError(f"invalid binomial observation k={k} n={n}")
    if not 0.0 < p < 1.0:
        raise ConfigError(f"binomial p must be in (0, 1), got {p}")
    if n == 0:
        return 1.0
    observed = _binom_log_pmf(k, n, p)
    cutoff = observed + 1e-7  # relative tolerance against float ties
    total = 0.0
    for i in range(n + 1):
        if _binom_log_pmf(i, n, p) <= cutoff:
            total += math.exp(_binom_log_pmf(i, n, p))
    return max(0.0, min(1.0, total))


def pooled_dispersion(
    counts_a: Sequence[float], counts_b: Sequence[float]
) -> float:
    """Variance-to-mean ratio of per-run counts, pooled, clamped to >= 1.

    Simulation counters are over-dispersed relative to Poisson: each
    seed draws its own day of traces, so per-run counts carry
    seed-to-seed workload variance on top of within-run event noise.
    The conditional binomial split test assumes Poisson totals, so
    feeding it raw sums falsely rejects two honest ensembles.  Dividing
    both totals by this ratio (the standard quasi-likelihood
    correction) deflates the effective event count to what the split
    test's variance assumption can honestly claim.
    """
    if not counts_a or not counts_b:
        raise ConfigError("dispersion needs non-empty count columns")
    pooled = list(counts_a) + list(counts_b)
    if len(pooled) < 3:
        return 1.0
    mean_a = sum(counts_a) / len(counts_a)
    mean_b = sum(counts_b) / len(counts_b)
    ss = sum((x - mean_a) ** 2 for x in counts_a)
    ss += sum((x - mean_b) ** 2 for x in counts_b)
    variance = ss / (len(pooled) - 2)
    mean_pooled = sum(pooled) / len(pooled)
    if mean_pooled <= 0.0:
        return 1.0
    return max(1.0, variance / mean_pooled)


def count_split_p_value(
    count_a: float,
    count_b: float,
    n_a: int = 1,
    n_b: int = 1,
    dispersion: float = 1.0,
) -> TestResult:
    """Do two event totals split like equal-rate engines would?

    Conditioned on the pooled total ``count_a + count_b``, equal-rate
    engines observed for ``n_a`` and ``n_b`` runs split it binomially
    with success probability ``n_a / (n_a + n_b)`` — the conditional
    (Fisher-style) comparison of two Poisson rates.  Fractional totals
    (expected-value counters) are rounded to the nearest event.  Small
    pooled totals use the exact enumeration; large ones the one-degree
    chi-square on the same split.

    ``dispersion`` (see :func:`pooled_dispersion`) divides both totals
    before testing — the quasi-binomial correction for counts that are
    over-dispersed relative to Poisson.
    """
    if n_a < 1 or n_b < 1:
        raise ConfigError("count test needs positive run counts")
    if count_a < 0.0 or count_b < 0.0:
        raise ConfigError("event totals cannot be negative")
    if dispersion < 1.0:
        raise ConfigError(f"dispersion must be >= 1, got {dispersion}")
    k = int(round(count_a / dispersion))
    n = k + int(round(count_b / dispersion))
    if n == 0:
        return TestResult(0.0, 1.0)
    share = n_a / (n_a + n_b)
    if n <= _EXACT_BINOM_MAX_N:
        return TestResult(float(k), binom_two_sided_p(k, n, share))
    expected_a = n * share
    expected_b = n - expected_a
    statistic = (k - expected_a) ** 2 / expected_a + (
        (n - k) - expected_b
    ) ** 2 / expected_b
    return TestResult(float(k), chi_square_p_value(statistic, 1))


def sign_test_p_value(positive: int, negative: int) -> TestResult:
    """Exact paired sign test; ties must already be dropped.

    Under the null (no systematic bias between paired engines) each
    nonzero per-seed difference is positive with probability 1/2; the
    statistic is the positive count.
    """
    if positive < 0 or negative < 0:
        raise ConfigError("sign counts cannot be negative")
    n = positive + negative
    if n == 0:
        return TestResult(0.0, 1.0)
    return TestResult(float(positive), binom_two_sided_p(positive, n, 0.5))


# ----------------------------------------------------------------------
# chi-square (general dof, via the regularized incomplete gamma)
# ----------------------------------------------------------------------


def _regularized_gamma_q(a: float, x: float) -> float:
    """Upper regularized incomplete gamma ``Q(a, x)``.

    Series for ``x < a + 1``, Lentz continued fraction otherwise — the
    standard pair of complementary expansions.
    """
    if x < 0.0 or a <= 0.0:
        raise ConfigError(f"invalid gamma args a={a} x={x}")
    if x == 0.0:
        return 1.0
    if x < a + 1.0:
        # P(a, x) by series; Q = 1 - P.
        term = 1.0 / a
        total = term
        denom = a
        for _ in range(500):
            denom += 1.0
            term *= x / denom
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        p = total * math.exp(-x + a * math.log(x) - math.lgamma(a))
        return max(0.0, min(1.0, 1.0 - p))
    # Q(a, x) by continued fraction (modified Lentz).
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    q = h * math.exp(-x + a * math.log(x) - math.lgamma(a))
    return max(0.0, min(1.0, q))


def chi_square_p_value(statistic: float, dof: int) -> float:
    """Survival function of the chi-square distribution."""
    if dof < 1:
        raise ConfigError(f"chi-square dof must be >= 1, got {dof}")
    if statistic <= 0.0:
        return 1.0
    return _regularized_gamma_q(dof / 2.0, statistic / 2.0)


def chi_square_homogeneity(
    counts_a: Sequence[float], counts_b: Sequence[float]
) -> Tuple[TestResult, int]:
    """Pooled-histogram homogeneity test.

    Bins empty on both sides are dropped; remaining sparse bins
    (pooled expectation < 5) are merged into their left neighbour so
    the chi-square approximation holds.  Returns the test plus the
    effective degrees of freedom (0 when fewer than two usable bins
    remain, in which case the test trivially passes).
    """
    if len(counts_a) != len(counts_b):
        raise ConfigError("histograms must share their binning")
    merged: list = []
    for a, b in zip(counts_a, counts_b):
        if a < 0.0 or b < 0.0:
            raise ConfigError("histogram counts cannot be negative")
        if a == 0.0 and b == 0.0:
            continue
        if merged and (merged[-1][0] + merged[-1][1]) < 5.0:
            merged[-1][0] += a
            merged[-1][1] += b
        else:
            merged.append([a, b])
    while len(merged) > 1 and (merged[-1][0] + merged[-1][1]) < 5.0:
        tail = merged.pop()
        merged[-1][0] += tail[0]
        merged[-1][1] += tail[1]
    if len(merged) < 2:
        return TestResult(0.0, 1.0), 0
    total_a = sum(pair[0] for pair in merged)
    total_b = sum(pair[1] for pair in merged)
    if total_a == 0.0 or total_b == 0.0:
        # One engine produced no events at all: a pure split test is
        # better posed than a homogeneity chi-square here.
        return TestResult(0.0, count_split_p_value(total_a, total_b).p_value), 1
    grand = total_a + total_b
    statistic = 0.0
    for a, b in merged:
        row = a + b
        expected_a = row * total_a / grand
        expected_b = row * total_b / grand
        statistic += (a - expected_a) ** 2 / expected_a
        statistic += (b - expected_b) ** 2 / expected_b
    dof = len(merged) - 1
    return TestResult(statistic, chi_square_p_value(statistic, dof)), dof
