"""Deliberately defective engines: the battery's power regression tests.

A statistical-equivalence harness is only trustworthy if it *rejects
broken engines* — acceptance alone could mean the tests are vacuous.
Each :class:`Mutant` here perturbs a reference
:class:`~repro.farm.simulation.FarmSimulation` through the two plane
seams (a wrapped :class:`~repro.farm.planes.AccountingLedger`, a wrapped
:class:`~repro.farm.planes.DecisionPlane`, or a biased RNG substream)
into a specific class of defect a columnar reimplementation could
plausibly introduce: miscalibrated power, dropped operations, skipped
charges, biased draws.  ``tests/test_equiv_power.py`` asserts every
registered mutant is rejected — and the identity mutant accepted — at
the committed ensemble size.

Mutants perturb only via public engine attributes (``sim.ledger``,
``sim.decisions``, the jitter/traffic streams), so they double as a
living catalogue of what the plane seams can intercept.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.plan import (
    ActivationAction,
    ActivationDecision,
    ConsolidationPlan,
    ExchangePlan,
)
from repro.errors import ConfigError
from repro.farm.planes import AccountingLedger, DecisionPlane
from repro.farm.simulation import FarmSimulation
from repro.migration.traffic import TrafficCategory
from repro.simulator.randomness import derive_seed
from repro.vm.machine import VirtualMachine

__all__ = [
    "Mutant",
    "MUTANTS",
    "mutant_names",
    "mutant_by_name",
    "apply_mutant",
    "IDENTITY",
]


@dataclass(frozen=True)
class Mutant:
    """One registered engine perturbation.

    ``apply`` mutates a constructed-but-unrun simulation in place;
    ``should_reject`` is what the battery must conclude about it.
    """

    name: str
    description: str
    apply: Callable[[FarmSimulation], None]
    should_reject: bool = True
    #: Policy whose decision path the perturbation lives on (``None`` =
    #: any).  ``rehoming-refused`` is a no-op unless the policy sets
    #: ``rehome_on_exhaustion``, so its self-test must run under NewHome.
    policy: Optional[str] = None


# ----------------------------------------------------------------------
# plane wrappers
# ----------------------------------------------------------------------


class _LedgerTap(AccountingLedger):
    """Transparent accounting-plane wrapper; subclasses break one write.

    Shares the inner ledger's traffic/counter/fault objects so hot-path
    local bindings (``self.ledger.traffic.add``) keep flowing through
    whatever ``traffic`` attribute the tap exposes.
    """

    def __init__(self, inner: AccountingLedger) -> None:
        self.inner = inner
        self.traffic = inner.traffic
        self.counters = inner.counters
        self.faults = inner.faults

    def set_power(self, entity: Hashable, watts: float, now: float) -> None:
        self.inner.set_power(entity, watts, now)

    def add_energy(self, entity: Hashable, joules: float) -> None:
        self.inner.add_energy(entity, joules)

    def set_state(self, entity: Hashable, state: str, now: float) -> None:
        self.inner.set_state(entity, state, now)

    def record_partial_migration(
        self, descriptor_mib: float, upload_mib: float
    ) -> None:
        self.inner.record_partial_migration(descriptor_mib, upload_mib)

    def record_on_demand(self, demand_mib: float) -> None:
        self.inner.record_on_demand(demand_mib)

    def finish(self, horizon: float) -> None:
        self.inner.finish(horizon)

    def total_joules(self) -> float:
        return self.inner.total_joules()

    def energy_joules(self, entity: Hashable) -> float:
        return self.inner.energy_joules(entity)

    def state_duration(self, entity: Hashable, state: str) -> float:
        return self.inner.state_duration(entity, state)

    def state_time_s(self) -> Dict[str, float]:
        return self.inner.state_time_s()

    def state_energy_j(self) -> Dict[str, float]:
        return self.inner.state_energy_j()


class _DecisionTap(DecisionPlane):
    """Transparent decision-plane wrapper; subclasses bias one query."""

    def __init__(self, inner: DecisionPlane) -> None:
        self.inner = inner

    def plan_exchanges(self) -> List[ExchangePlan]:
        return self.inner.plan_exchanges()

    def plan_consolidation(
        self, compact_consolidation: bool = True
    ) -> ConsolidationPlan:
        return self.inner.plan_consolidation(
            compact_consolidation=compact_consolidation
        )

    def decide_activation(self, vm: VirtualMachine) -> ActivationDecision:
        return self.inner.decide_activation(vm)

    def reroute_activation(self, vm: VirtualMachine) -> Optional[int]:
        return self.inner.reroute_activation(vm)


# ----------------------------------------------------------------------
# the perturbations
# ----------------------------------------------------------------------


class _WattsPlusOne(_LedgerTap):
    """Every piecewise power segment is billed one watt high."""

    def set_power(self, entity: Hashable, watts: float, now: float) -> None:
        self.inner.set_power(entity, watts + 1.0, now)


class _SleepStateDropped(_LedgerTap):
    """Sleeping hosts are recorded as powered in the state ledger."""

    def set_state(self, entity: Hashable, state: str, now: float) -> None:
        self.inner.set_state(
            entity, "powered" if state == "sleeping" else state, now
        )


class _DemandTrafficSkipped(_LedgerTap):
    """Consolidation episodes never charge their demand-fault bytes."""

    def record_on_demand(self, demand_mib: float) -> None:
        pass


class _SasUploadHalved(_LedgerTap):
    """Partial migrations charge half of the SAS memory upload."""

    def record_partial_migration(
        self, descriptor_mib: float, upload_mib: float
    ) -> None:
        self.inner.record_partial_migration(descriptor_mib, upload_mib * 0.5)


class _DroppedVacationMigration(_DecisionTap):
    """The last migration of every vacation plan is silently dropped."""

    def plan_consolidation(
        self, compact_consolidation: bool = True
    ) -> ConsolidationPlan:
        plan = self.inner.plan_consolidation(
            compact_consolidation=compact_consolidation
        )
        vacations = [
            dataclasses.replace(
                vacation, migrations=vacation.migrations[:-1]
            )
            for vacation in plan.vacations
            if len(vacation.migrations) > 1
        ]
        return dataclasses.replace(plan, vacations=vacations)


class _RehomingRefused(_DecisionTap):
    """NewHome-style re-homings degrade into waking the home host."""

    def decide_activation(self, vm: VirtualMachine) -> ActivationDecision:
        decision = self.inner.decide_activation(vm)
        if decision.action is ActivationAction.MIGRATE_NEW_HOME:
            return ActivationDecision(
                vm_id=decision.vm_id,
                action=ActivationAction.WAKE_HOME_RETURN_ALL,
                target_host_id=vm.home_id,
            )
        return decision


class _BiasedUniform(random.Random):
    """A traffic stream whose uniform draws are warped toward 0.

    The traffic samplers inline Box–Muller over ``rng.random()``; the
    warp ``u -> u*u`` concentrates the phase draw near 0, where the
    cosine is positive, so the synthesized gaussians acquire a
    systematic +0.22-sigma mean shift and every sampled traffic volume
    runs hot.  Seeded at construction from the engine's own derived
    substream, so the defect is a pure function of the run seed.
    """

    def random(self) -> float:
        # The receiver *is* a seeded Random (constructed from a derived
        # substream below); flow cannot attribute draws through super().
        u = super().random()  # repro: noqa[FLOW101]
        return u * u


def _apply_watts_plus_one(sim: FarmSimulation) -> None:
    sim.ledger = _WattsPlusOne(sim.ledger)


def _apply_sleep_state_dropped(sim: FarmSimulation) -> None:
    sim.ledger = _SleepStateDropped(sim.ledger)


def _apply_demand_traffic_skipped(sim: FarmSimulation) -> None:
    sim.ledger = _DemandTrafficSkipped(sim.ledger)


def _apply_sas_upload_halved(sim: FarmSimulation) -> None:
    sim.ledger = _SasUploadHalved(sim.ledger)


def _apply_dropped_vacation_migration(sim: FarmSimulation) -> None:
    sim.decisions = _DroppedVacationMigration(sim.decisions)


def _apply_rehoming_refused(sim: FarmSimulation) -> None:
    sim.decisions = _RehomingRefused(sim.decisions)


def _apply_traffic_draw_biased(sim: FarmSimulation) -> None:
    # Same derivation the engine itself uses for the "traffic" stream,
    # so the mutant stays a pure function of the run seed — only the
    # gaussian scale is defective.
    sim._traffic_rng = _BiasedUniform(derive_seed(sim.seed, "traffic"))


def _apply_identity(sim: FarmSimulation) -> None:
    pass


#: Registration order is presentation order in reports and self-tests.
_REGISTRY: Tuple[Mutant, ...] = (
    Mutant(
        name="identity",
        description="no perturbation (the battery must accept this)",
        apply=_apply_identity,
        should_reject=False,
    ),
    Mutant(
        name="watts-plus-one",
        description="all piecewise power billed +1 W (calibration bias)",
        apply=_apply_watts_plus_one,
    ),
    Mutant(
        name="sleep-state-dropped",
        description="sleeping hosts logged as powered in the state ledger",
        apply=_apply_sleep_state_dropped,
    ),
    Mutant(
        name="demand-traffic-skipped",
        description="on-demand page traffic never charged",
        apply=_apply_demand_traffic_skipped,
    ),
    Mutant(
        name="sas-upload-halved",
        description="partial migrations charge half the SAS upload",
        apply=_apply_sas_upload_halved,
    ),
    Mutant(
        name="dropped-vacation-migration",
        description="each vacation plan silently loses its last migration",
        apply=_apply_dropped_vacation_migration,
    ),
    Mutant(
        name="rehoming-refused",
        description="MIGRATE_NEW_HOME decisions degrade into home wakes",
        apply=_apply_rehoming_refused,
        policy="NewHome",
    ),
    Mutant(
        name="traffic-draw-biased",
        description="traffic-volume draws systematically biased high",
        apply=_apply_traffic_draw_biased,
    ),
)

MUTANTS: Dict[str, Mutant] = {mutant.name: mutant for mutant in _REGISTRY}

IDENTITY = MUTANTS["identity"]

#: Referenced so a refactor dropping a traffic category the mutants
#: depend on fails loudly at import time, not at battery time.
_REQUIRED_CATEGORIES = (
    TrafficCategory.ON_DEMAND_PAGES,
    TrafficCategory.MEMORY_UPLOAD_SAS,
)


def mutant_names() -> List[str]:
    """Registered mutant names, in registration order."""
    return [mutant.name for mutant in _REGISTRY]


def mutant_by_name(name: str) -> Mutant:
    """Look up one registered mutant."""
    mutant = MUTANTS.get(name)
    if mutant is None:
        raise ConfigError(
            f"unknown mutant {name!r}; choose from {mutant_names()}"
        )
    return mutant


def apply_mutant(sim: FarmSimulation, mutant: Mutant) -> FarmSimulation:
    """Perturb a constructed, unrun simulation; returns it for chaining."""
    mutant.apply(sim)
    return sim
