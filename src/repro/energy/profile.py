"""Power profiles (Table 1 of the paper).

Table 1 measured the custom host at 102.2 W idle and 137.9 W while running
20 VMs, which yields a linear per-resident-VM increment of 1.785 W.  The
paper's simulator (§5.1) gives every host this same profile.  Partial VMs
hold only their idle working set, so they are charged the same increment
scaled by the fraction of their full allocation that is resident — a few
percent, i.e. nearly free, which is exactly why dense partial
consolidation pays off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class HostPowerProfile:
    """Power model of one server (watts, seconds)."""

    #: Power with zero VMs resident, fully powered.
    idle_w: float = 102.2
    #: Additional power per fully-resident VM (from the 20-VM point).
    per_vm_w: float = 1.785
    #: Optional extra power per *active* VM (CPU load); the paper's Table 1
    #: does not separate this, so the default is zero.
    per_active_vm_extra_w: float = 0.0
    #: Power draw while suspending to RAM, and its duration.
    suspend_w: float = 138.2
    suspend_s: float = 3.1
    #: Power draw while resuming from RAM, and its duration.
    resume_w: float = 149.2
    resume_s: float = 2.3
    #: ACPI S3 sleep power (host alone, memory in self-refresh).
    sleep_w: float = 12.9

    def __post_init__(self) -> None:
        for name in ("idle_w", "suspend_w", "resume_w", "sleep_w"):
            if getattr(self, name) <= 0.0:
                raise ConfigError(f"{name} must be positive")
        for name in ("per_vm_w", "per_active_vm_extra_w", "suspend_s", "resume_s"):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be non-negative")

    def powered_watts(
        self,
        full_vms: int = 0,
        active_vms: int = 0,
        partial_resident_fraction: float = 0.0,
    ) -> float:
        """Power of a fully-powered host.

        ``full_vms`` counts VMs whose complete memory image is resident;
        ``active_vms`` of those are actively loaded; and
        ``partial_resident_fraction`` is the sum over partial VMs of the
        fraction of their allocation that is resident (e.g. three partial
        VMs each holding 4% of their memory contribute 0.12).
        """
        if full_vms < 0 or active_vms < 0 or partial_resident_fraction < 0.0:
            raise ConfigError("VM counts must be non-negative")
        return (
            self.idle_w
            + self.per_vm_w * (full_vms + partial_resident_fraction)
            + self.per_active_vm_extra_w * active_vms
        )

    @property
    def transition_round_trip_s(self) -> float:
        """Suspend + resume duration — the minimum useful sleep gap."""
        return self.suspend_s + self.resume_s


@dataclass(frozen=True)
class MemoryServerProfile:
    """Power model of the per-host low-power memory server."""

    #: Low-power compute platform (ASUS AT5IONT-I with an Atom D525).
    platform_w: float = 27.8
    #: Shared hot-swappable SAS drive.
    drive_w: float = 14.4

    def __post_init__(self) -> None:
        if self.platform_w < 0.0 or self.drive_w < 0.0:
            raise ConfigError("memory-server power components must be >= 0")

    @property
    def total_w(self) -> float:
        """Combined draw while serving pages for a sleeping host."""
        return self.platform_w + self.drive_w

    @classmethod
    def prototype(cls) -> "MemoryServerProfile":
        """The paper's prototype: Atom platform + SAS drive = 42.2 W."""
        return cls()

    @classmethod
    def alternative(cls, watts: float) -> "MemoryServerProfile":
        """A hypothetical implementation with the given total draw.

        Used for Table 3's 16/8/4/2/1 W design points (e.g. an embedded
        service processor reusing host DRAM, with no SAS drive).
        """
        if watts < 0.0:
            raise ConfigError(f"memory-server power must be >= 0, got {watts}")
        return cls(platform_w=watts, drive_w=0.0)


#: The exact Table 1 profiles.
TABLE1_HOST = HostPowerProfile()
TABLE1_MEMORY_SERVER = MemoryServerProfile.prototype()
