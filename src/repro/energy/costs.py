"""Electricity cost and carbon accounting on top of energy reports.

The paper motivates Oasis with datacenter electricity bills (91 billion
kWh across US datacenters in 2013, §1); this module converts measured
joules into the quantities an operator budgets: dollars and kilograms
of CO2, per day and per year.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.report import EnergyReport
from repro.errors import ConfigError
from repro.units import joules_to_wh


@dataclass(frozen=True)
class ElectricityTariff:
    """Price and carbon intensity of one kWh."""

    usd_per_kwh: float = 0.10
    #: Grid carbon intensity; ~0.4 kg CO2/kWh is a US-average figure.
    kg_co2_per_kwh: float = 0.4
    #: Power-usage effectiveness: facility overhead (cooling, UPS) per
    #: unit of IT energy.  1.0 counts IT load only.
    pue: float = 1.5

    def __post_init__(self) -> None:
        if self.usd_per_kwh < 0.0 or self.kg_co2_per_kwh < 0.0:
            raise ConfigError("tariff terms must be non-negative")
        if self.pue < 1.0:
            raise ConfigError("PUE cannot be below 1.0")

    def facility_kwh(self, joules: float) -> float:
        """IT joules scaled to facility kWh by the PUE."""
        if joules < 0.0:
            raise ConfigError("energy must be non-negative")
        return joules_to_wh(joules) / 1000.0 * self.pue

    def cost_usd(self, joules: float) -> float:
        return self.facility_kwh(joules) * self.usd_per_kwh

    def carbon_kg(self, joules: float) -> float:
        return self.facility_kwh(joules) * self.kg_co2_per_kwh


@dataclass(frozen=True)
class SavingsStatement:
    """What one day's consolidation is worth under a tariff."""

    report: EnergyReport
    tariff: ElectricityTariff
    #: How many days per year this day represents (365 for an average
    #: day; use 261/104 to weight weekday/weekend days separately).
    days_per_year: float = 365.0

    def __post_init__(self) -> None:
        if self.days_per_year <= 0.0:
            raise ConfigError("days_per_year must be positive")

    @property
    def saved_joules(self) -> float:
        return self.report.baseline_joules - self.report.managed_joules

    @property
    def daily_kwh(self) -> float:
        return self.tariff.facility_kwh(self.saved_joules)

    @property
    def daily_usd(self) -> float:
        return self.tariff.cost_usd(self.saved_joules)

    @property
    def daily_carbon_kg(self) -> float:
        return self.tariff.carbon_kg(self.saved_joules)

    @property
    def annual_usd(self) -> float:
        return self.daily_usd * self.days_per_year

    @property
    def annual_carbon_kg(self) -> float:
        return self.daily_carbon_kg * self.days_per_year

    def __str__(self) -> str:
        return (
            f"saves {self.daily_kwh:.1f} kWh/day "
            f"(${self.daily_usd:.2f}, {self.daily_carbon_kg:.1f} kg CO2) "
            f"-> ~${self.annual_usd:,.0f} and "
            f"{self.annual_carbon_kg / 1000.0:.1f} t CO2 per year"
        )
