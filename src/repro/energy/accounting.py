"""Piecewise-constant power integration and state-time tracking."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

from repro.errors import SimulationError


@dataclass
class _Meter:
    watts: float
    since: float
    joules: float = 0.0


class EnergyAccountant:
    """Integrates energy for a set of entities with piecewise power.

    Each entity (host, memory server, switch, ...) reports power changes
    through :meth:`set_power`; the accountant accumulates
    ``watts x elapsed-seconds`` into per-entity joules.  Call
    :meth:`finish` once at the simulation horizon to close open segments.
    """

    def __init__(self) -> None:
        self._meters: Dict[Hashable, _Meter] = {}
        self._finished_at = None

    def set_power(self, entity: Hashable, watts: float, now: float) -> None:
        """Record that ``entity`` draws ``watts`` from time ``now`` on."""
        if watts < 0.0:
            raise SimulationError(f"negative power {watts} W for {entity!r}")
        meter = self._meters.get(entity)
        if meter is None:
            self._meters[entity] = _Meter(watts=watts, since=now)
            return
        if now < meter.since:
            raise SimulationError(
                f"power update for {entity!r} at {now} precedes {meter.since}"
            )
        meter.joules += meter.watts * (now - meter.since)
        meter.watts = watts
        meter.since = now

    def add_energy(self, entity: Hashable, joules: float) -> None:
        """Add a lump of energy outside the piecewise-power model.

        Used for analytically-computed surcharges (e.g. the wake-up tax
        a sleeping host pays to serve page requests when it lacks a
        memory server) that would be wasteful to express as thousands of
        tiny power segments.
        """
        if joules < 0.0:
            raise SimulationError(f"negative energy {joules} J for {entity!r}")
        meter = self._meters.get(entity)
        if meter is None:
            self._meters[entity] = _Meter(watts=0.0, since=0.0, joules=joules)
        else:
            meter.joules += joules

    def finish(self, now: float) -> None:
        """Close all open segments at the simulation horizon ``now``."""
        for meter in self._meters.values():
            if now < meter.since:
                raise SimulationError("finish time precedes an open segment")
            meter.joules += meter.watts * (now - meter.since)
            meter.since = now
        self._finished_at = now

    def energy_joules(self, entity: Hashable) -> float:
        """Accumulated energy for one entity (closed segments only)."""
        meter = self._meters.get(entity)
        return 0.0 if meter is None else meter.joules

    def total_joules(self) -> float:
        """Accumulated energy over all entities."""
        return sum(meter.joules for meter in self._meters.values())

    def entities(self):
        """All entities that ever reported power."""
        return list(self._meters)


class StateTimeTracker:
    """Tracks how long each entity spends in each named state.

    Used for the home-host sleep-fraction metric and for validating power
    accounting (sleep time x sleep watts should match the meter).
    """

    def __init__(self) -> None:
        self._current: Dict[Hashable, Tuple[str, float]] = {}
        self._durations: Dict[Tuple[Hashable, str], float] = {}

    def set_state(self, entity: Hashable, state: str, now: float) -> None:
        """Record that ``entity`` enters ``state`` at time ``now``."""
        previous = self._current.get(entity)
        if previous is not None:
            old_state, since = previous
            if now < since:
                raise SimulationError(
                    f"state update for {entity!r} at {now} precedes {since}"
                )
            key = (entity, old_state)
            self._durations[key] = self._durations.get(key, 0.0) + (now - since)
        self._current[entity] = (state, now)

    def finish(self, now: float) -> None:
        """Close all open states at the simulation horizon."""
        for entity in list(self._current):
            state, _since = self._current[entity]
            self.set_state(entity, state, now)

    def duration(self, entity: Hashable, state: str) -> float:
        """Seconds ``entity`` spent in ``state`` (closed spans only)."""
        return self._durations.get((entity, state), 0.0)

    def total_duration(self, state: str) -> float:
        """Seconds spent in ``state`` summed over all entities."""
        return sum(
            seconds
            for (_entity, tracked_state), seconds in self._durations.items()
            if tracked_state == state
        )

    def fraction(self, entity: Hashable, state: str, horizon: float) -> float:
        """Fraction of ``horizon`` that ``entity`` spent in ``state``."""
        if horizon <= 0.0:
            raise SimulationError("horizon must be positive")
        return self.duration(entity, state) / horizon
