"""Energy profiles and accounting.

Power constants come from the paper's Table 1 (measured on the authors'
custom Supermicro host and ASUS Atom memory server); energy is integrated
over piecewise-constant power segments as hosts change power state and VM
load over the simulated day.
"""

from repro.energy.profile import (
    HostPowerProfile,
    MemoryServerProfile,
    TABLE1_HOST,
    TABLE1_MEMORY_SERVER,
)
from repro.energy.accounting import EnergyAccountant, StateTimeTracker
from repro.energy.report import EnergyReport, baseline_energy_joules
from repro.energy.costs import ElectricityTariff, SavingsStatement

__all__ = [
    "HostPowerProfile",
    "MemoryServerProfile",
    "TABLE1_HOST",
    "TABLE1_MEMORY_SERVER",
    "EnergyAccountant",
    "StateTimeTracker",
    "EnergyReport",
    "baseline_energy_joules",
    "ElectricityTariff",
    "SavingsStatement",
]
