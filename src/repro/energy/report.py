"""Energy reports and the paper's savings normalization.

The paper normalizes savings "over the energy consumed by the home hosts
if left powered for the duration of the simulation" (§5.3) — i.e. the
counterfactual in which every home host stays fully powered all day with
its full complement of VMs resident.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.profile import HostPowerProfile
from repro.errors import ConfigError
from repro.units import joules_to_wh


def baseline_energy_joules(
    profile: HostPowerProfile,
    home_hosts: int,
    vms_per_host: int,
    duration_s: float,
    mean_active_vms_per_host: float = 0.0,
) -> float:
    """Energy of the no-consolidation counterfactual.

    Every home host stays powered for ``duration_s`` with ``vms_per_host``
    fully-resident VMs; ``mean_active_vms_per_host`` only matters when the
    profile charges an active-VM premium (zero by default, as in Table 1).
    """
    if home_hosts <= 0 or vms_per_host < 0 or duration_s <= 0.0:
        raise ConfigError("baseline needs positive hosts and duration")
    watts = profile.powered_watts(full_vms=vms_per_host)
    watts += profile.per_active_vm_extra_w * mean_active_vms_per_host
    return home_hosts * watts * duration_s


@dataclass(frozen=True)
class EnergyReport:
    """Measured energy of one simulated day, with the savings metric."""

    #: Energy of the Oasis-managed cluster (home + consolidation hosts,
    #: memory servers, and power-state transitions), joules.
    managed_joules: float
    #: Energy of the always-powered home-host counterfactual, joules.
    baseline_joules: float
    #: Injected faults the run absorbed (aborts, failed wakes, crashes,
    #: timeouts); zero on a fault-free run.
    fault_events: int = 0
    #: Retries performed in response to those faults.
    fault_retries: int = 0
    #: Operations rolled back in response to those faults.
    fault_rollbacks: int = 0

    def __post_init__(self) -> None:
        if self.baseline_joules <= 0.0:
            raise ConfigError("baseline energy must be positive")
        if self.managed_joules < 0.0:
            raise ConfigError("managed energy must be non-negative")
        for name in ("fault_events", "fault_retries", "fault_rollbacks"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")

    @property
    def savings_fraction(self) -> float:
        """The paper's headline metric: 1 - managed / baseline."""
        return 1.0 - self.managed_joules / self.baseline_joules

    @property
    def managed_wh(self) -> float:
        return joules_to_wh(self.managed_joules)

    @property
    def baseline_wh(self) -> float:
        return joules_to_wh(self.baseline_joules)

    def __str__(self) -> str:
        text = (
            f"managed={self.managed_wh:.0f} Wh "
            f"baseline={self.baseline_wh:.0f} Wh "
            f"savings={self.savings_fraction:.1%}"
        )
        if self.fault_events:
            text += (
                f" faults={self.fault_events}"
                f" retries={self.fault_retries}"
                f" rollbacks={self.fault_rollbacks}"
            )
        return text
