"""Discrete-event simulation kernel.

The kernel is deliberately small: a monotonic clock, a binary-heap event
queue with stable FIFO ordering for simultaneous events, cancellable event
handles, and named deterministic random-number streams.  Both the VDI farm
simulation (:mod:`repro.farm`) and the page-level prototype models
(:mod:`repro.prototype`, :mod:`repro.pagesim`) run on this kernel.
"""

from repro.simulator.engine import Simulator
from repro.simulator.events import EventHandle
from repro.simulator.randomness import RngStreams

__all__ = ["Simulator", "EventHandle", "RngStreams"]
