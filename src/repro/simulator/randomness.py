"""Deterministic named random-number streams.

Every stochastic component in the library draws from its own named stream
derived from a single root seed.  This keeps experiments reproducible and
— more importantly — *decoupled*: adding draws to one component does not
perturb the sequence seen by any other component, so ablations compare
like with like.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (unlike ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A family of independent :class:`random.Random` streams.

    Example
    -------
    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("traces")
    >>> b = streams.get("placement")
    >>> a is streams.get("traces")
    True
    >>> a is b
    False
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this family was created from."""
        return self._seed

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self._seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngStreams":
        """Create a child family whose root seed is derived from ``name``.

        Useful for giving each of several repeated runs its own fully
        independent stream family.
        """
        return RngStreams(derive_seed(self._seed, name))

    def __repr__(self) -> str:
        return f"<RngStreams seed={self._seed} streams={sorted(self._streams)}>"
