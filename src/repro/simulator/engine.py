"""The discrete-event simulation engine."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.events import CAT_SIM
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulator.events import EventHandle, LabelLike, ScheduledEvent


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Time starts at zero and only moves forward.  Callbacks scheduled for
    the same instant run in the order they were scheduled.  Callbacks may
    schedule further events (including at the current instant).

    An optional :class:`~repro.obs.Tracer` wraps every fired callback in
    a ``sim.event`` span (labelled with the event's schedule label), so
    a recorded trace shows the kernel's dispatch timeline with each
    component's own events nested inside.  The default null tracer
    reduces the hook to one attribute test per event.  Labels may be
    given as zero-argument callables, which are only invoked when a
    tracer actually consumes them — hot paths can schedule millions of
    events without formatting a single label string.

    The heap stores ``(time, seq, event)`` tuples so event ordering is
    decided by C tuple comparison rather than a Python ``__lt__``.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._fired = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled events that have not fired or been cancelled."""
        return sum(1 for _, _, event in self._heap if not event.cancelled)

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._fired

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: LabelLike = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback when
        the simulator next drains the queue, after events already scheduled
        for the current instant.
        """
        if delay < 0.0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: LabelLike = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f} s; clock is at {self._now:.6f} s"
            )
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(
            time=time, seq=seq, callback=callback, args=args, label=label
        )
        heapq.heappush(self._heap, (time, seq, event))
        return EventHandle(event)

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (cancelled events are discarded silently).
        """
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = time
            self._fired += 1
            if self.tracer.enabled:
                with self.tracer.span(
                    "sim.event", CAT_SIM, label=event.resolved_label()
                ):
                    event.callback(*event.args)
            else:
                event.callback(*event.args)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains.

        ``max_events`` bounds the number of callbacks executed and guards
        against runaway self-rescheduling loops: at most ``max_events``
        callbacks run, and if events are still pending once the bound is
        reached a :class:`~repro.errors.SimulationError` is raised.
        Returns the number of events fired by this call.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events and self.pending:
                raise SimulationError(
                    f"reached max_events={max_events} with events still "
                    "pending; runaway event loop?"
                )
        return fired

    def run_until(self, time: float) -> int:
        """Run all events scheduled strictly up to and including ``time``.

        The clock is left at ``time`` even if the last event fired earlier,
        so power-accounting code can close intervals at the horizon.
        Returns the number of events fired by this call.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run until {time:.6f} s; clock is at {self._now:.6f} s"
            )
        fired = 0
        while self._heap:
            head_time, _, head_event = self._heap[0]
            if head_event.cancelled:
                heapq.heappop(self._heap)
                continue
            if head_time > time:
                break
            self.step()
            fired += 1
        self._now = time
        return fired

    def advance(self, delay: float) -> int:
        """Run events for the next ``delay`` seconds (see :meth:`run_until`)."""
        return self.run_until(self._now + delay)

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.3f} pending={self.pending}>"
