"""Event records and handles for the discrete-event kernel."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at an absolute simulation time.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    tie-breaker so that events scheduled for the same instant fire in FIFO
    order.  The callback and its arguments do not participate in ordering.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")


class EventHandle:
    """Opaque handle returned by :meth:`repro.simulator.Simulator.schedule`.

    Holding a handle allows the caller to cancel the event before it fires
    and to query whether it is still pending.
    """

    __slots__ = ("_event",)

    def __init__(self, event: ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time the event is scheduled for."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label given at scheduling time (may be empty)."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an event that already fired (or was already cancelled)
        is a no-op; the kernel skips cancelled entries lazily when they
        reach the top of the heap.
        """
        self._event.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        label = f" {self.label!r}" if self.label else ""
        return f"<EventHandle t={self.time:.3f}{label} {state}>"
