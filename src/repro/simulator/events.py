"""Event records and handles for the discrete-event kernel."""

from __future__ import annotations

from typing import Any, Callable, Tuple, Union

#: A schedule label: a plain string, or a zero-argument callable that
#: builds one.  Callables let hot paths defer (or entirely skip, when no
#: tracer is attached) the cost of formatting per-event label strings.
LabelLike = Union[str, Callable[[], str]]


class ScheduledEvent:
    """A callback scheduled at an absolute simulation time.

    Events order by ``(time, seq)``; ``seq`` is a monotonically increasing
    tie-breaker so that events scheduled for the same instant fire in FIFO
    order.  The callback and its arguments do not participate in ordering.
    (The kernel's heap stores ``(time, seq, event)`` tuples so ordering is
    resolved by C tuple comparison; the ``__lt__`` here keeps direct
    comparisons working for tests and external users.)
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        cancelled: bool = False,
        label: LabelLike = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self.label = label

    def resolved_label(self) -> str:
        """The label string, building it now if it was given lazily."""
        label = self.label
        return label() if callable(label) else label

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduledEvent):
            return NotImplemented
        return (self.time, self.seq) == (other.time, other.seq)

    def __repr__(self) -> str:
        return (
            f"ScheduledEvent(time={self.time!r}, seq={self.seq!r}, "
            f"callback={self.callback!r}, args={self.args!r}, "
            f"cancelled={self.cancelled!r}, label={self.resolved_label()!r})"
        )


class EventHandle:
    """Opaque handle returned by :meth:`repro.simulator.Simulator.schedule`.

    Holding a handle allows the caller to cancel the event before it fires
    and to query whether it is still pending.
    """

    __slots__ = ("_event",)

    def __init__(self, event: ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time the event is scheduled for."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label given at scheduling time (may be empty)."""
        return self._event.resolved_label()

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an event that already fired (or was already cancelled)
        is a no-op; the kernel skips cancelled entries lazily when they
        reach the top of the heap.
        """
        self._event.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        label = f" {self.label!r}" if self.label else ""
        return f"<EventHandle t={self.time:.3f}{label} {state}>"
