"""Idle working-set sampling.

The paper's simulator samples each partial VM's memory consumption from
the distribution measured by Jettison: idle desktop VMs with 4 GiB of RAM
had working sets of 165.63 +/- 91.38 MiB, under 4% of the allocation
(§5.1).  We model this as a normal distribution truncated to a sane
range (a working set is at least a few MiB of kernel-resident state and
never exceeds the allocation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError

#: Moments reported in §5.1 (from the Jettison trace analysis).
JETTISON_MEAN_MIB = 165.63
JETTISON_STD_MIB = 91.38


@dataclass(frozen=True)
class WorkingSetSampler:
    """Truncated-normal sampler for idle working-set sizes (MiB)."""

    mean_mib: float = JETTISON_MEAN_MIB
    std_mib: float = JETTISON_STD_MIB
    min_mib: float = 16.0
    max_mib: float = 1024.0

    def __post_init__(self) -> None:
        if self.mean_mib <= 0.0 or self.std_mib < 0.0:
            raise ConfigError("working-set mean must be positive, std >= 0")
        if not self.min_mib <= self.mean_mib <= self.max_mib:
            raise ConfigError("working-set mean must lie within [min, max]")

    def sample(self, rng: random.Random) -> float:
        """Draw one working-set size, MiB.

        Uses rejection against the truncation bounds; with the default
        parameters fewer than ~4% of draws are rejected, so this
        terminates fast.  Falls back to clamping after a bounded number
        of rejections to stay total even for pathological configs.
        """
        for _ in range(64):
            value = rng.gauss(self.mean_mib, self.std_mib)
            if self.min_mib <= value <= self.max_mib:
                return value
        return min(max(rng.gauss(self.mean_mib, self.std_mib), self.min_mib),
                   self.max_mib)

    def expected_mib(self) -> float:
        """The (approximate) mean of the truncated distribution.

        With the default parameters truncation is mild, so the untruncated
        mean is an adequate expectation for capacity planning.
        """
        return self.mean_mib
