"""Idle working-set sampling.

The paper's simulator samples each partial VM's memory consumption from
the distribution measured by Jettison: idle desktop VMs with 4 GiB of RAM
had working sets of 165.63 +/- 91.38 MiB, under 4% of the allocation
(§5.1).  We model this as a normal distribution truncated to a sane
range (a working set is at least a few MiB of kernel-resident state and
never exceeds the allocation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError

#: Moments reported in §5.1 (from the Jettison trace analysis).
JETTISON_MEAN_MIB = 165.63
JETTISON_STD_MIB = 91.38


@dataclass(frozen=True)
class WorkingSetSampler:
    """Truncated-normal sampler for idle working-set sizes (MiB)."""

    mean_mib: float = JETTISON_MEAN_MIB
    std_mib: float = JETTISON_STD_MIB
    min_mib: float = 16.0
    max_mib: float = 1024.0

    def __post_init__(self) -> None:
        if self.mean_mib <= 0.0 or self.std_mib < 0.0:
            raise ConfigError("working-set mean must be positive, std >= 0")
        if not self.min_mib <= self.mean_mib <= self.max_mib:
            raise ConfigError("working-set mean must lie within [min, max]")

    def sample(self, rng: random.Random) -> float:
        """Draw one working-set size, MiB.

        Uses rejection against the truncation bounds; with the default
        parameters fewer than ~4% of draws are rejected, so this
        terminates fast.  Falls back to clamping after a bounded number
        of rejections to stay total even for pathological configs.
        """
        for _ in range(64):
            value = rng.gauss(self.mean_mib, self.std_mib)
            if self.min_mib <= value <= self.max_mib:
                return value
        return min(max(rng.gauss(self.mean_mib, self.std_mib), self.min_mib),
                   self.max_mib)

    def expected_mib(self) -> float:
        """The (approximate) mean of the truncated distribution.

        With the default parameters truncation is mild, so the untruncated
        mean is an adequate expectation for capacity planning.
        """
        return self.mean_mib


class LazyWorkingSet:
    """Closed-form lazy working-set growth with exact eager replay.

    The eager model bumps a partial VM's resident size once per trace
    interval: ``size = min(size + delta, cap)``.  This class stores only
    ``(anchor interval, size at anchor, delta, cap)`` and materializes
    the size at any later interval on demand — no per-interval sweep.

    Materialization **replays the float recurrence step by step** rather
    than evaluating ``size + n * delta``: repeated float addition and
    the closed-form product differ in the last ulp, and the simulator's
    determinism contract is bit-for-bit.  The replay is still closed
    form in cost: ``min(size + delta, cap)`` pins at ``cap``, so at most
    ``ceil((cap - size) / delta)`` steps ever run no matter how far the
    clock jumped — quiet VMs cost O(steps-to-cap) once, not O(elapsed
    intervals).
    """

    __slots__ = ("delta_mib", "cap_mib", "_size_mib", "_anchor")

    def __init__(
        self,
        initial_mib: float,
        delta_mib: float,
        cap_mib: float,
        anchor_index: int = 0,
    ) -> None:
        if not 0.0 <= initial_mib <= cap_mib:
            raise ConfigError(
                f"initial working set {initial_mib} MiB outside "
                f"[0, {cap_mib}]"
            )
        if delta_mib < 0.0:
            raise ConfigError("working-set growth must be non-negative")
        self.delta_mib = delta_mib
        self.cap_mib = cap_mib
        self._size_mib = initial_mib
        self._anchor = anchor_index

    @property
    def anchor_index(self) -> int:
        """Interval index of the last materialization."""
        return self._anchor

    def size_at(self, index: int) -> float:
        """Size after ``index`` (MiB) without re-anchoring."""
        return self._replay(index)

    def advance_to(self, index: int) -> float:
        """Materialize at ``index``, re-anchor there, return the size."""
        size = self._replay(index)
        self._size_mib = size
        self._anchor = index
        return size

    def _replay(self, index: int) -> float:
        anchor = self._anchor
        if index < anchor:
            raise ConfigError(
                f"cannot materialize interval {index}: already anchored "
                f"at {anchor}"
            )
        size = self._size_mib
        delta = self.delta_mib
        if delta <= 0.0:
            return size
        cap = self.cap_mib
        for _ in range(index - anchor):
            if size >= cap:
                break
            size += delta
            if size > cap:
                size = cap
        return size
