"""Virtual machine substrate.

Models VM activity (active vs idle, §3.1), residency (full vs partial,
§2), idle working-set sampling (the Jettison distribution the paper's
simulator draws from, §5.1), and the Table 2 desktop workload catalog
used by the prototype micro-benchmarks.
"""

from repro.vm.state import Residency, VmActivity
from repro.vm.machine import IntervalClock, VirtualMachine
from repro.vm.workingset import LazyWorkingSet, WorkingSetSampler
from repro.vm.workload import (
    Application,
    Workload,
    WORKLOAD_1,
    WORKLOAD_2,
    APPLICATION_CATALOG,
)

__all__ = [
    "Residency",
    "VmActivity",
    "IntervalClock",
    "VirtualMachine",
    "WorkingSetSampler",
    "LazyWorkingSet",
    "Application",
    "Workload",
    "WORKLOAD_1",
    "WORKLOAD_2",
    "APPLICATION_CATALOG",
]
