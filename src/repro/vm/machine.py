"""The VM object used by the cluster simulation.

A :class:`VirtualMachine` tracks three orthogonal pieces of state:

* **activity** — active or idle, driven by the user trace;
* **residency** — full (complete image where it runs) or partial (only
  the idle working set resident, faulting from the home's memory server);
* **placement** — ``host_id`` (where it runs), ``home_id`` (which host
  owns its full memory image), and ``origin_home_id`` (the compute host
  it was created on, used by the FulltoPartial return path).

Invariants (enforced on every mutation):

* a FULL VM runs on its home (``host_id == home_id``);
* a PARTIAL VM runs away from its home and its working set never exceeds
  its allocation.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MigrationError
from repro.units import DEFAULT_VM_MEMORY_MIB
from repro.vm.state import Residency, VmActivity


class IntervalClock:
    """A shared trace-interval counter for lazy idle-streak tracking.

    One clock is shared by every VM in a simulation; the interval driver
    bumps ``index`` once per trace interval instead of touching every
    VM.  ``index`` starts at ``-1`` ("before the first interval") so a
    VM anchored at creation reads an idle streak of 0 until the first
    interval is processed.
    """

    __slots__ = ("index",)

    def __init__(self) -> None:
        self.index = -1

    def __repr__(self) -> str:
        return f"<IntervalClock index={self.index}>"


class VirtualMachine:
    """One virtual machine in the simulated cluster."""

    __slots__ = (
        "vm_id",
        "memory_mib",
        "origin_home_id",
        "home_id",
        "host_id",
        "residency",
        "activity",
        "working_set_mib",
        "_idle_base",
        "_idle_anchor",
        "_interval_clock",
    )

    def __init__(
        self,
        vm_id: int,
        origin_home_id: int,
        memory_mib: float = DEFAULT_VM_MEMORY_MIB,
    ) -> None:
        if memory_mib <= 0.0:
            raise MigrationError(f"VM memory must be positive, got {memory_mib}")
        self.vm_id = vm_id
        self.memory_mib = memory_mib
        self.origin_home_id = origin_home_id
        self.home_id = origin_home_id
        self.host_id = origin_home_id
        self.residency = Residency.FULL
        self.activity = VmActivity.IDLE
        self.working_set_mib: Optional[float] = None
        self._idle_base = 0
        self._idle_anchor: Optional[int] = None
        self._interval_clock: Optional[IntervalClock] = None

    # -- queries --------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self.activity is VmActivity.ACTIVE

    @property
    def is_partial(self) -> bool:
        return self.residency is Residency.PARTIAL

    @property
    def resident_mib(self) -> float:
        """Memory the VM occupies on the host where it runs."""
        if self.residency is Residency.FULL:
            return self.memory_mib
        if self.working_set_mib is None:
            raise MigrationError(f"partial VM {self.vm_id} has no working set")
        return self.working_set_mib

    @property
    def resident_fraction(self) -> float:
        """Fraction of the allocation resident where the VM runs."""
        return self.resident_mib / self.memory_mib

    # -- activity ----------------------------------------------------------

    @property
    def idle_intervals(self) -> int:
        """Consecutive trace intervals this VM has been idle (scheduler
        hysteresis input).

        Clock-anchored VMs (see :meth:`track_idle_with`) derive the
        streak from the shared interval clock, so a quiet VM's streak
        grows without any per-interval work; otherwise the eagerly
        maintained count is returned.
        """
        anchor = self._idle_anchor
        if anchor is None:
            return self._idle_base
        return self._interval_clock.index - anchor + 1

    @idle_intervals.setter
    def idle_intervals(self, value: int) -> None:
        self._idle_base = value
        self._idle_anchor = None

    def track_idle_with(self, clock: IntervalClock) -> None:
        """Bind this (idle) VM's streak to a shared interval clock.

        The streak becomes 1 at the clock's next interval and grows with
        it — identical to calling ``set_activity(IDLE)`` once per
        interval, without the per-interval call.
        """
        if self.activity is not VmActivity.IDLE:
            raise MigrationError(
                f"VM {self.vm_id} must be idle to anchor its idle streak"
            )
        self._interval_clock = clock
        self._idle_anchor = clock.index + 1

    def apply_activity_edge(self, active: bool) -> None:
        """Apply one compiled activity flip at the clock's current interval.

        Requires a bound clock (:meth:`track_idle_with`).  An idle flip
        anchors the streak at the current interval (streak 1 now, +1 per
        subsequent interval); an active flip zeroes it — byte-equivalent
        to the eager :meth:`set_activity` sequence the flip replaces.
        """
        if active:
            self.activity = VmActivity.ACTIVE
            self._idle_anchor = None
            self._idle_base = 0
        else:
            self.activity = VmActivity.IDLE
            self._idle_anchor = self._interval_clock.index

    def set_activity(self, activity: VmActivity) -> None:
        """Update activity from the trace; maintains the idle-streak count."""
        if activity is VmActivity.IDLE:
            if self.activity is VmActivity.IDLE:
                self.idle_intervals = self.idle_intervals + 1
            else:
                self.idle_intervals = 1
        else:
            self.idle_intervals = 0
        self.activity = activity

    # -- residency / placement transitions ---------------------------------

    def become_partial(self, destination_id: int, working_set_mib: float) -> None:
        """Partial-migrate: run on ``destination_id`` with only the working set.

        The full image stays behind with the current home, whose memory
        server will service page faults.
        """
        if self.residency is Residency.PARTIAL:
            raise MigrationError(f"VM {self.vm_id} is already partial")
        if destination_id == self.home_id:
            raise MigrationError(
                f"VM {self.vm_id}: partial destination equals home "
                f"{self.home_id}"
            )
        if not 0.0 < working_set_mib <= self.memory_mib:
            raise MigrationError(
                f"VM {self.vm_id}: working set {working_set_mib} MiB outside "
                f"(0, {self.memory_mib}]"
            )
        self.residency = Residency.PARTIAL
        self.host_id = destination_id
        self.working_set_mib = working_set_mib

    def relocate_partial(self, destination_id: int) -> None:
        """Move a partial VM to another consolidation host (same home)."""
        if self.residency is not Residency.PARTIAL:
            raise MigrationError(f"VM {self.vm_id} is not partial")
        if destination_id == self.home_id:
            raise MigrationError(
                f"VM {self.vm_id}: use reintegrate() to return home"
            )
        self.host_id = destination_id

    def reintegrate(self) -> None:
        """Return a partial VM to its home; dirty state merges into the
        full image and the VM becomes full again."""
        if self.residency is not Residency.PARTIAL:
            raise MigrationError(f"VM {self.vm_id} is not partial")
        self.residency = Residency.FULL
        self.host_id = self.home_id
        self.working_set_mib = None

    def become_full_in_place(self) -> None:
        """Convert a partial VM to full where it runs (Default policy when
        the consolidation host has capacity, §3.2): the remaining image is
        pulled from the old home, which relinquishes ownership."""
        self.become_full_at(self.host_id)

    def become_full_at(self, destination_id: int) -> None:
        """Convert a partial VM to a full VM on ``destination_id`` (the
        NewHome policy, §3.2): the working set moves from the current
        host and the remainder streams from the old home's memory
        server; the destination becomes the new home."""
        if self.residency is not Residency.PARTIAL:
            raise MigrationError(f"VM {self.vm_id} is not partial")
        self.residency = Residency.FULL
        self.host_id = destination_id
        self.home_id = destination_id
        self.working_set_mib = None

    def full_migrate(self, destination_id: int) -> None:
        """Live-migrate the full VM; the destination becomes the new home."""
        if self.residency is not Residency.FULL:
            raise MigrationError(
                f"VM {self.vm_id} must be full to live-migrate"
            )
        self.host_id = destination_id
        self.home_id = destination_id

    def grow_working_set(self, delta_mib: float) -> None:
        """Grow a partial VM's resident working set (demand faults), capped
        at the full allocation."""
        if self.residency is not Residency.PARTIAL:
            raise MigrationError(f"VM {self.vm_id} is not partial")
        if delta_mib < 0.0:
            raise MigrationError("working-set growth must be non-negative")
        assert self.working_set_mib is not None
        self.working_set_mib = min(
            self.working_set_mib + delta_mib, self.memory_mib
        )

    def __repr__(self) -> str:
        return (
            f"<VM {self.vm_id} {self.activity.value}/{self.residency.value} "
            f"host={self.host_id} home={self.home_id} "
            f"resident={self.resident_mib:.0f} MiB>"
        )
