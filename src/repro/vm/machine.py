"""The VM object used by the cluster simulation.

A :class:`VirtualMachine` tracks three orthogonal pieces of state:

* **activity** — active or idle, driven by the user trace;
* **residency** — full (complete image where it runs) or partial (only
  the idle working set resident, faulting from the home's memory server);
* **placement** — ``host_id`` (where it runs), ``home_id`` (which host
  owns its full memory image), and ``origin_home_id`` (the compute host
  it was created on, used by the FulltoPartial return path).

Invariants (enforced on every mutation):

* a FULL VM runs on its home (``host_id == home_id``);
* a PARTIAL VM runs away from its home and its working set never exceeds
  its allocation.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MigrationError
from repro.units import DEFAULT_VM_MEMORY_MIB
from repro.vm.state import Residency, VmActivity


class VirtualMachine:
    """One virtual machine in the simulated cluster."""

    __slots__ = (
        "vm_id",
        "memory_mib",
        "origin_home_id",
        "home_id",
        "host_id",
        "residency",
        "activity",
        "working_set_mib",
        "idle_intervals",
    )

    def __init__(
        self,
        vm_id: int,
        origin_home_id: int,
        memory_mib: float = DEFAULT_VM_MEMORY_MIB,
    ) -> None:
        if memory_mib <= 0.0:
            raise MigrationError(f"VM memory must be positive, got {memory_mib}")
        self.vm_id = vm_id
        self.memory_mib = memory_mib
        self.origin_home_id = origin_home_id
        self.home_id = origin_home_id
        self.host_id = origin_home_id
        self.residency = Residency.FULL
        self.activity = VmActivity.IDLE
        self.working_set_mib: Optional[float] = None
        #: Consecutive trace intervals this VM has been idle (scheduler
        #: hysteresis input).
        self.idle_intervals = 0

    # -- queries --------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self.activity is VmActivity.ACTIVE

    @property
    def is_partial(self) -> bool:
        return self.residency is Residency.PARTIAL

    @property
    def resident_mib(self) -> float:
        """Memory the VM occupies on the host where it runs."""
        if self.residency is Residency.FULL:
            return self.memory_mib
        if self.working_set_mib is None:
            raise MigrationError(f"partial VM {self.vm_id} has no working set")
        return self.working_set_mib

    @property
    def resident_fraction(self) -> float:
        """Fraction of the allocation resident where the VM runs."""
        return self.resident_mib / self.memory_mib

    # -- activity ----------------------------------------------------------

    def set_activity(self, activity: VmActivity) -> None:
        """Update activity from the trace; maintains the idle-streak count."""
        if activity is VmActivity.IDLE:
            if self.activity is VmActivity.IDLE:
                self.idle_intervals += 1
            else:
                self.idle_intervals = 1
        else:
            self.idle_intervals = 0
        self.activity = activity

    # -- residency / placement transitions ---------------------------------

    def become_partial(self, destination_id: int, working_set_mib: float) -> None:
        """Partial-migrate: run on ``destination_id`` with only the working set.

        The full image stays behind with the current home, whose memory
        server will service page faults.
        """
        if self.residency is Residency.PARTIAL:
            raise MigrationError(f"VM {self.vm_id} is already partial")
        if destination_id == self.home_id:
            raise MigrationError(
                f"VM {self.vm_id}: partial destination equals home "
                f"{self.home_id}"
            )
        if not 0.0 < working_set_mib <= self.memory_mib:
            raise MigrationError(
                f"VM {self.vm_id}: working set {working_set_mib} MiB outside "
                f"(0, {self.memory_mib}]"
            )
        self.residency = Residency.PARTIAL
        self.host_id = destination_id
        self.working_set_mib = working_set_mib

    def relocate_partial(self, destination_id: int) -> None:
        """Move a partial VM to another consolidation host (same home)."""
        if self.residency is not Residency.PARTIAL:
            raise MigrationError(f"VM {self.vm_id} is not partial")
        if destination_id == self.home_id:
            raise MigrationError(
                f"VM {self.vm_id}: use reintegrate() to return home"
            )
        self.host_id = destination_id

    def reintegrate(self) -> None:
        """Return a partial VM to its home; dirty state merges into the
        full image and the VM becomes full again."""
        if self.residency is not Residency.PARTIAL:
            raise MigrationError(f"VM {self.vm_id} is not partial")
        self.residency = Residency.FULL
        self.host_id = self.home_id
        self.working_set_mib = None

    def become_full_in_place(self) -> None:
        """Convert a partial VM to full where it runs (Default policy when
        the consolidation host has capacity, §3.2): the remaining image is
        pulled from the old home, which relinquishes ownership."""
        self.become_full_at(self.host_id)

    def become_full_at(self, destination_id: int) -> None:
        """Convert a partial VM to a full VM on ``destination_id`` (the
        NewHome policy, §3.2): the working set moves from the current
        host and the remainder streams from the old home's memory
        server; the destination becomes the new home."""
        if self.residency is not Residency.PARTIAL:
            raise MigrationError(f"VM {self.vm_id} is not partial")
        self.residency = Residency.FULL
        self.host_id = destination_id
        self.home_id = destination_id
        self.working_set_mib = None

    def full_migrate(self, destination_id: int) -> None:
        """Live-migrate the full VM; the destination becomes the new home."""
        if self.residency is not Residency.FULL:
            raise MigrationError(
                f"VM {self.vm_id} must be full to live-migrate"
            )
        self.host_id = destination_id
        self.home_id = destination_id

    def grow_working_set(self, delta_mib: float) -> None:
        """Grow a partial VM's resident working set (demand faults), capped
        at the full allocation."""
        if self.residency is not Residency.PARTIAL:
            raise MigrationError(f"VM {self.vm_id} is not partial")
        if delta_mib < 0.0:
            raise MigrationError("working-set growth must be non-negative")
        assert self.working_set_mib is not None
        self.working_set_mib = min(
            self.working_set_mib + delta_mib, self.memory_mib
        )

    def __repr__(self) -> str:
        return (
            f"<VM {self.vm_id} {self.activity.value}/{self.residency.value} "
            f"host={self.host_id} home={self.home_id} "
            f"resident={self.resident_mib:.0f} MiB>"
        )
