"""VM activity and residency state enums."""

from __future__ import annotations

import enum


class VmActivity(enum.Enum):
    """Whether a VM currently needs its full resource allocation (§3.1).

    A VM is *active* when it accesses a large fraction of its assigned
    resources (e.g. a user at the keyboard, a cluster member processing
    queries) and *idle* when it only runs background tasks (heartbeats,
    periodic mail fetches).  In the VDI evaluation, activity follows the
    user's keyboard/mouse trace.
    """

    ACTIVE = "active"
    IDLE = "idle"


class Residency(enum.Enum):
    """How much of the VM's memory is resident where it runs (§2).

    * ``FULL`` — the complete memory image is on the host running the VM.
    * ``PARTIAL`` — only the idle working set is resident; missing pages
      fault in on demand from the home host's memory server.
    """

    FULL = "full"
    PARTIAL = "partial"
