"""Desktop workload catalog (Table 2 of the paper).

The prototype micro-benchmarks primed VMs with *Workload 1* (a heavily
multitasking desktop: mail, IM, three office documents, a PDF, five
browser tabs) and later executed *Workload 2* (four more sites, three
more documents, one more PDF) to emulate a user becoming active.

Each application carries two calibrated numbers used by the Figure 6
model (:mod:`repro.prototype.apps`):

* ``full_start_s`` — start-up latency with all memory resident;
* ``startup_footprint_mib`` — unique memory the start-up path touches,
  which a partial VM must fault in page by page.

The footprints were fitted so the demand-fetch model reproduces the
paper's reported extremes (LibreOffice: 168 s in a partial VM, ~111x its
full-VM latency; pre-fetching the whole VM instead takes 41 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class Application:
    """One desktop application as used in the Table 2 workloads."""

    name: str
    #: Start-up latency with the full memory image resident, seconds.
    full_start_s: float
    #: Unique memory touched by the start-up path, MiB.
    startup_footprint_mib: float
    #: Memory the application keeps resident once started, MiB.  Used to
    #: compose the primed VM image for the Figure 5 micro-benchmark.
    resident_mib: float

    def __post_init__(self) -> None:
        if self.full_start_s <= 0.0:
            raise ConfigError(f"{self.name}: full_start_s must be positive")
        if self.startup_footprint_mib <= 0.0 or self.resident_mib <= 0.0:
            raise ConfigError(f"{self.name}: footprints must be positive")


#: Applications referenced by Table 2, keyed by a short identifier.
APPLICATION_CATALOG: Dict[str, Application] = {
    "thunderbird": Application("Thunderbird mail", 1.2, 62.0, 180.0),
    "pidgin": Application("Pidgin IM", 0.5, 14.0, 40.0),
    "libreoffice-doc": Application("LibreOffice document", 1.5, 164.0, 210.0),
    "evince-pdf": Application("Evince PDF", 0.8, 30.0, 70.0),
    "firefox-cnn": Application("Firefox: CNN.com", 2.1, 88.0, 130.0),
    "firefox-slashdot": Application("Firefox: Slashdot.com", 1.8, 72.0, 110.0),
    "firefox-maps": Application("Firefox: Maps.Google.com", 2.4, 104.0, 150.0),
    "firefox-sunspider": Application("Firefox: SunSpider", 1.6, 58.0, 90.0),
    "firefox-acid3": Application("Firefox: Acid3", 1.4, 46.0, 70.0),
    "firefox-hp": Application("Firefox: Shopping.HP.com", 1.9, 76.0, 115.0),
    "firefox-cdw": Application("Firefox: CDW.com", 1.8, 70.0, 105.0),
    "firefox-bbc": Application("Firefox: BBC.co.uk/news", 1.7, 66.0, 100.0),
    "firefox-globeandmail": Application(
        "Firefox: TheGlobeAndMail.com", 1.9, 74.0, 110.0
    ),
    "gnome-desktop": Application("GNOME desktop session", 4.0, 120.0, 600.0),
}


@dataclass(frozen=True)
class Workload:
    """An ordered list of applications to load into a desktop VM."""

    name: str
    application_keys: Tuple[str, ...]

    def __post_init__(self) -> None:
        missing = [key for key in self.application_keys
                   if key not in APPLICATION_CATALOG]
        if missing:
            raise ConfigError(f"unknown applications: {missing}")

    @property
    def applications(self) -> Tuple[Application, ...]:
        return tuple(APPLICATION_CATALOG[key] for key in self.application_keys)

    @property
    def resident_mib(self) -> float:
        """Memory this workload keeps resident once loaded."""
        return sum(app.resident_mib for app in self.applications)


#: Workload 1 (Table 2): the initial heavily-multitasking priming load.
WORKLOAD_1 = Workload(
    "Workload 1",
    (
        "gnome-desktop",
        "thunderbird",
        "pidgin",
        "libreoffice-doc",
        "libreoffice-doc",
        "libreoffice-doc",
        "evince-pdf",
        "firefox-cnn",
        "firefox-slashdot",
        "firefox-maps",
        "firefox-sunspider",
        "firefox-acid3",
    ),
)

#: Workload 2 (Table 2): what the user does upon returning.
WORKLOAD_2 = Workload(
    "Workload 2",
    (
        "firefox-hp",
        "firefox-cdw",
        "firefox-bbc",
        "firefox-globeandmail",
        "libreoffice-doc",
        "libreoffice-doc",
        "libreoffice-doc",
        "evince-pdf",
    ),
)
