"""repro — a reproduction of *Oasis: Energy Proportionality with Hybrid
Server Consolidation* (EuroSys 2016).

Quick start::

    from repro import FarmConfig, FULL_TO_PARTIAL, DayType, simulate_day

    result = simulate_day(FarmConfig(), FULL_TO_PARTIAL, DayType.WEEKDAY)
    print(f"energy savings: {result.savings_fraction:.1%}")

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the Oasis cluster manager and policies;
* :mod:`repro.farm` — the trace-driven VDI farm simulation (§5);
* :mod:`repro.cluster`, :mod:`repro.vm`, :mod:`repro.migration`,
  :mod:`repro.memserver`, :mod:`repro.energy`, :mod:`repro.traces` —
  the substrates;
* :mod:`repro.prototype`, :mod:`repro.pagesim` — the page-level
  prototype models behind the micro-benchmarks (§2, §4.4);
* :mod:`repro.analysis` — CDFs/series/tables for the benches;
* :mod:`repro.checkers` — the AST invariant linter
  (``python -m repro.checkers``) enforcing determinism, unit-suffix
  safety, state machines, and the export surface.
"""

from repro.core import (
    ALL_POLICIES,
    DEFAULT,
    FULL_TO_PARTIAL,
    NEW_HOME,
    ONLY_PARTIAL,
    ClusterManager,
    PolicySpec,
    policy_by_name,
)
from repro.energy import HostPowerProfile, MemoryServerProfile
from repro.farm import FarmConfig, FarmResult, FarmSimulation, simulate_day
from repro.traces import DayType, TraceGeneratorConfig, generate_ensemble

__version__ = "1.0.0"

__all__ = [
    "ALL_POLICIES",
    "DEFAULT",
    "FULL_TO_PARTIAL",
    "NEW_HOME",
    "ONLY_PARTIAL",
    "ClusterManager",
    "PolicySpec",
    "policy_by_name",
    "HostPowerProfile",
    "MemoryServerProfile",
    "FarmConfig",
    "FarmResult",
    "FarmSimulation",
    "simulate_day",
    "DayType",
    "TraceGeneratorConfig",
    "generate_ensemble",
    "__version__",
]
