"""Command-line interface: ``oasis-sim`` / ``python -m repro``.

Subcommands:

* ``simulate`` — run one trace-driven day (or ``--runs`` repetitions,
  optionally in parallel with ``--workers``) and print the summary;
* ``sweep``    — run a Figure-8-shaped consolidation-host sweep, with
  ``--workers`` fanning the runs out over processes;
* ``micro``    — print a micro-benchmark table (table1, fig1, fig2,
  fig5, fig6, traffic);
* ``traces``   — generate or summarize trace CSV files;
* ``trace``    — summarize or validate an event trace recorded with
  ``simulate --trace`` (JSONL, or Chrome ``trace_event`` JSON that
  Perfetto / ``chrome://tracing`` can open);
* ``perfbench`` — time ``simulate_day`` and sweep throughput across
  policies/scales, write ``BENCH_hotpath.json``, print a cProfile
  table, and optionally gate against a committed baseline;
* ``equiv``    — the statistical engine-equivalence battery: ``selftest``
  (mutation power proof), ``baseline`` (capture reference ensembles),
  ``compare`` (certify the current engine against a committed baseline).

The full evaluation sweeps live in ``benchmarks/`` (one per paper table
or figure); the CLI covers interactive exploration and smoke-testing
the parallel sweep runner.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.analysis import Cdf, format_percent, format_table
from repro.core import ALL_POLICIES, strategy_by_name, strategy_names
from repro.errors import ConfigError
from repro.farm import FarmConfig, SweepRunner, simulate_day
from repro.faults import FAULT_PROFILE_NAMES, fault_profile_by_name
from repro.traces import (
    DayType,
    compute_ensemble_stats,
    generate_ensemble,
    read_traces_csv,
    write_traces_csv,
)
from repro.traces.sampler import TraceEnsemble


def _day_type(value: str) -> DayType:
    return DayType(value.lower())


def _make_runner(workers: int) -> SweepRunner:
    """A process-backed runner when >1 worker is requested, else serial."""
    if workers > 1:
        return SweepRunner(backend="process", workers=workers)
    return SweepRunner()


def _print_day_summary(result, config: FarmConfig, chart: bool) -> None:
    """The single-day report block; shared by the unsharded and the
    zoned path, whose 1-zone aggregate must print byte-identically."""
    print(f"policy:           {result.policy_name} ({result.day_type})")
    print(f"energy savings:   {format_percent(result.savings_fraction)}")
    print(f"baseline:         {result.energy.baseline_wh:.0f} Wh")
    print(f"managed:          {result.energy.managed_wh:.0f} Wh")
    print(
        f"home-host sleep:  "
        f"{format_percent(result.mean_home_sleep_fraction())} of the day"
    )
    print(f"peak active VMs:  {result.peak_active_vms}")
    print(f"min powered:      {result.min_powered_hosts} hosts")
    print(
        f"transitions:      {len(result.delays)} "
        f"({format_percent(result.zero_delay_fraction())} zero-delay)"
    )
    delays = result.delay_values()
    if delays:
        cdf = Cdf(delays)
        print(
            f"delay p50/p99:    {cdf.median():.1f} s / "
            f"{cdf.percentile(99):.1f} s"
        )
    print(f"network traffic:  {result.traffic.network_total_mib():,.0f} MiB")
    print(f"migrations:       {result.counters}")
    if not config.faults.is_null:
        print(f"fault profile:    {config.faults.name}")
        print(f"faults:           {result.faults}")
    if chart:
        from repro.analysis import sparkline

        print()
        print("active VMs   ", sparkline(result.active_vms, width=72))
        print("powered hosts", sparkline(
            [float(count) for count in result.powered_hosts], width=72
        ))
        print("              00:00" + " " * 28 + "12:00" + " " * 29 + "24:00")


def _print_zone_table(zoned) -> None:
    """Per-zone shares and shard outcomes (``--zones`` > 1 only).

    Deliberately omits worker attribution (``RunOutcome.worker`` is a
    pid): which process ran which shard is scheduling-dependent, and the
    report must stay byte-identical for a given seed.
    """
    partition = zoned.partition
    rows = []
    for budget, outcome in zip(zoned.budgets, zoned.zone_outcomes):
        homes = len(partition.home_host_ids[budget.zone])
        cons = len(partition.consolidation_host_ids[budget.zone])
        if outcome is None:
            rows.append((budget.zone, homes, cons, 0, "-", "-",
                         f"{budget.share_w:.0f}", "-", "empty"))
            continue
        result = outcome.result
        rows.append((
            budget.zone, homes, cons, homes * partition.vms_per_host,
            format_percent(result.savings_fraction),
            f"{result.energy.managed_wh:.0f}",
            f"{budget.share_w:.0f}",
            f"{budget.mean_power_w:.0f}",
            f"{budget.utilization:.0%}",
        ))
    print()
    print(format_table(
        ["zone", "homes", "cons", "VMs", "savings", "managed Wh",
         "share W", "mean W", "util"],
        rows,
    ))
    if zoned.budget_w is not None:
        over = [b.zone for b in zoned.budgets if not b.within_budget]
        status = (
            "all zones within budget" if not over
            else f"over budget: zones {over}"
        )
        print(f"budget:           {zoned.budget_w:.0f} W across "
              f"{zoned.zones} zones ({status})")


def _resolve_cli_policy(args: argparse.Namespace):
    """The strategy named by ``--policy`` (plus ``--gamma``, if given)."""
    name = args.policy
    gamma = getattr(args, "gamma", None)
    if gamma is not None:
        if name.lower() != "gammarobust":
            raise ConfigError("--gamma only applies to --policy GammaRobust")
        name = f"GammaRobust@{gamma}"
    return strategy_by_name(name)


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = FarmConfig(
        home_hosts=args.home_hosts,
        consolidation_hosts=args.consolidation_hosts,
        vms_per_host=args.vms_per_host,
        faults=fault_profile_by_name(args.fault_profile),
    )
    try:
        policy = _resolve_cli_policy(args)
    except ConfigError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.zones < 1:
        print("--zones must be >= 1", file=sys.stderr)
        return 2
    if args.zones > 1 and (args.week or args.runs > 1):
        print("--zones shards a single day: drop --week and --runs",
              file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        if args.week or args.runs > 1:
            print("--trace records a single day: drop --week and --runs",
                  file=sys.stderr)
            return 2
        from repro.obs import RecordingTracer

        tracer = RecordingTracer()
    if args.week:
        from repro.farm import simulate_week

        week = simulate_week(config, policy, seed=args.seed)
        print(f"policy:           {policy.name} (calendar week)")
        print(f"weekly savings:   {format_percent(week.savings_fraction)}")
        print(f"energy saved:     {week.saved_kwh:.1f} kWh "
              f"(~{week.projected_annual_kwh():.0f} kWh/year)")
        for label, results in (
            ("weekday", week.weekday_results),
            ("weekend", week.weekend_results),
        ):
            mean = sum(r.savings_fraction for r in results) / len(results)
            print(f"  {label} days:   {format_percent(mean)} mean savings "
                  f"over {len(results)} days")
        return 0
    if args.runs > 1:
        return _simulate_repetitions(config, policy, args)
    zoned = None
    if tracer is not None and args.zones == 1:
        # Full-fidelity trace: the unsharded simulator streams every
        # simulation event into the tracer in-process.
        result = simulate_day(
            config, policy, _day_type(args.day), seed=args.seed,
            tracer=tracer,
        )
    else:
        # The sharded pipeline; a 1-zone partition is the identity
        # transform, so this prints byte-identically to the unsharded
        # simulator (golden-tested).  With a tracer and > 1 zone only
        # the controller's zone-tagged events are recorded — shards run
        # in worker processes.
        from repro.farm import simulate_zoned_day

        zoned = simulate_zoned_day(
            config, policy, _day_type(args.day),
            zones=args.zones, seed=args.seed,
            runner=_make_runner(args.workers),
            budget_w=args.budget_w, tracer=tracer,
        )
        result = zoned.aggregate
    _print_day_summary(result, config, args.chart)
    if zoned is not None and args.zones > 1:
        _print_zone_table(zoned)
    if tracer is not None:
        from repro.obs import write_chrome_trace, write_jsonl

        if args.trace_format == "chrome":
            count = write_chrome_trace(tracer.events, args.trace)
        else:
            count = write_jsonl(tracer.events, args.trace)
        print(f"trace:            {count} events -> {args.trace} "
              f"({args.trace_format})")
    return 0


def _simulate_repetitions(
    config: FarmConfig, policy, args: argparse.Namespace
) -> int:
    from statistics import mean, pstdev

    from repro.farm import repetition_specs

    runner = _make_runner(args.workers)
    specs = repetition_specs(
        config, policy, _day_type(args.day), runs=args.runs,
        base_seed=args.seed,
    )
    outcomes = runner.run(specs)
    rows = [
        (outcome.spec.seed,
         format_percent(outcome.result.savings_fraction),
         f"{outcome.wall_time_s:.2f}",
         outcome.worker,
         "hit" if outcome.ensemble_cached else "miss")
        for outcome in outcomes
    ]
    print(format_table(
        ["seed", "savings", "wall (s)", "worker", "ensemble cache"], rows
    ))
    savings = [outcome.result.savings_fraction for outcome in outcomes]
    spread = pstdev(savings) if len(savings) > 1 else 0.0
    print(f"\nmean savings:     {format_percent(mean(savings))} "
          f"(+/- {format_percent(spread)}, n={len(savings)})")
    print(f"timing:           {runner.last_summary}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.farm import consolidation_host_sweep, gamma_sweep

    try:
        counts = tuple(
            int(part) for part in args.consolidation_counts.split(",") if part
        )
    except ValueError:
        print(f"bad --consolidation-counts {args.consolidation_counts!r}; "
              "expected e.g. 2,4,6", file=sys.stderr)
        return 2
    if not counts:
        print("--consolidation-counts must name at least one count",
              file=sys.stderr)
        return 2
    config = FarmConfig(
        home_hosts=args.home_hosts,
        consolidation_hosts=counts[0],
        vms_per_host=args.vms_per_host,
        faults=fault_profile_by_name(args.fault_profile),
    )
    policies = (
        list(ALL_POLICIES) if args.policy == "all"
        else [strategy_by_name(args.policy)]
    )
    runner = _make_runner(args.workers)
    if args.gamma is not None:
        try:
            gammas = tuple(
                int(part) for part in args.gamma.split(",") if part
            )
        except ValueError:
            print(f"bad --gamma {args.gamma!r}; expected e.g. 0,1,2",
                  file=sys.stderr)
            return 2
        if not gammas:
            print("--gamma must name at least one Γ value", file=sys.stderr)
            return 2
        try:
            rows_by_name = gamma_sweep(
                config, gammas, _day_type(args.day), baselines=policies,
                runs=args.runs, base_seed=args.seed, runner=runner,
            )
        except ConfigError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(format_table(
            ["policy", f"savings ({counts[0]} cons hosts)"],
            [(name, f"{format_percent(point.mean_savings)}"
                    f"±{format_percent(point.std_savings)}")
             for name, point in rows_by_name],
        ))
        print(f"\ntiming: {runner.last_summary}")
        return 0
    sweep = consolidation_host_sweep(
        config, policies, _day_type(args.day),
        consolidation_counts=counts, runs=args.runs, base_seed=args.seed,
        runner=runner,
    )
    rows = []
    for policy_name, series in sweep.items():
        row = [policy_name]
        for _count, point in series:
            row.append(f"{format_percent(point.mean_savings)}"
                       f"±{format_percent(point.std_savings)}")
        rows.append(row)
    headers = ["policy"] + [f"{count} cons" for count in counts]
    print(format_table(headers, rows))
    print(f"\ntiming: {runner.last_summary}")
    return 0


def _cmd_micro(args: argparse.Namespace) -> int:
    name = args.table
    if name == "table1":
        from repro.prototype import measure_energy_profiles

        rows = [
            (r.device, r.state,
             f"{r.time_s:.1f}" if r.time_s else "N/A", f"{r.power_w:.1f}")
            for r in measure_energy_profiles()
        ]
        print(format_table(["Device", "State", "Time (s)", "Power (W)"], rows))
    elif name == "fig1":
        from repro.pagesim import (
            DESKTOP_PROFILE, WEB_PROFILE, DATABASE_PROFILE,
        )

        rows = []
        for minutes in (5, 15, 30, 45, 60):
            t = minutes * 60.0
            rows.append(
                (minutes,) + tuple(
                    f"{p.unique_mib(t):.1f}"
                    for p in (DESKTOP_PROFILE, WEB_PROFILE, DATABASE_PROFILE)
                )
            )
        print(format_table(
            ["Idle minutes", "Desktop MiB", "Web MiB", "Database MiB"], rows
        ))
    elif name == "fig2":
        from repro.pagesim import (
            DATABASE_PROFILE, WEB_PROFILE, IdleAccessModel,
            analyze_sleep, merge_request_streams,
        )

        rng = random.Random(args.seed)
        horizon = 6 * 3600.0
        single = IdleAccessModel(DATABASE_PROFILE, rng).request_times(horizon)
        many = merge_request_streams(
            [IdleAccessModel(DATABASE_PROFILE, rng).request_times(horizon)
             for _ in range(5)]
            + [IdleAccessModel(WEB_PROFILE, rng).request_times(horizon)
               for _ in range(5)]
        )
        print("1 VM :", analyze_sleep(single, horizon))
        print("10 VM:", analyze_sleep(many, horizon))
    elif name in ("fig5", "traffic"):
        from repro.prototype import ConsolidationMicrobench

        report = ConsolidationMicrobench().run()
        if name == "fig5":
            rows = [(label, f"{value:.1f}")
                    for label, value in report.rows().items()]
            print(format_table(["Operation", "Latency (s)"], rows))
        else:
            rows = [
                ("full migration", f"{report.full_migration_traffic_mib:.0f}"),
                ("partial descriptor", f"{report.descriptor_mib:.1f}"),
                ("on-demand pages", f"{report.on_demand_mib:.1f}"),
                ("reintegration dirty", f"{report.reintegration_mib:.1f}"),
            ]
            print(format_table(["Transfer", "Volume (MiB)"], rows))
    elif name == "fig6":
        from repro.prototype import startup_latency_table
        from repro.prototype.apps import prefetch_alternative_s

        rows = [
            (entry.application, f"{entry.full_vm_s:.1f}",
             f"{entry.partial_vm_s:.1f}", f"{entry.slowdown:.0f}x")
            for entry in startup_latency_table().values()
        ]
        print(format_table(
            ["Application", "Full VM (s)", "Partial VM (s)", "Slowdown"], rows
        ))
        print(f"\npre-fetching the whole VM instead: "
              f"{prefetch_alternative_s():.1f} s")
    elif name == "gamma":
        from repro.policies import oracle_gap_report, render_gap_report

        print(render_gap_report(oracle_gap_report()))
    else:
        print(f"unknown micro table {name!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_perfbench(args: argparse.Namespace) -> int:
    import time

    from repro.perfbench import (
        attach_baseline,
        check_regression,
        load_report,
        render_case_table,
        run_perfbench,
        validate_report,
        write_report,
    )

    # The perfbench package sits inside the DET checker scope, so it
    # never reads the wall clock itself; the CLI injects it here.
    clock = time.perf_counter
    profile_top = 0 if (args.quick or args.no_profile) else args.profile_top
    report, profile_text = run_perfbench(
        clock, quick=args.quick, profile_top=profile_top
    )
    if args.baseline:
        try:
            report = attach_baseline(report, load_report(args.baseline))
        except OSError as error:
            print(f"cannot read baseline: {error}", file=sys.stderr)
            return 2
    validate_report(report)
    write_report(report, args.out)
    print(render_case_table(report))
    print(f"\nwrote {args.out}")
    if profile_text:
        print()
        print(profile_text, end="")
    if args.check:
        try:
            committed = load_report(args.check)
            validate_report(committed)
        except OSError as error:
            print(f"cannot read committed baseline: {error}", file=sys.stderr)
            return 2
        failures = check_regression(report, committed, limit=args.check_limit)
        if failures:
            for failure in failures:
                print(f"perf regression: {failure}", file=sys.stderr)
            return 1
        print(f"regression gate vs {args.check}: OK "
              f"(limit {args.check_limit}x)")
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    from repro.traces import read_traces_json, write_traces_json

    if args.action == "generate":
        ensemble = generate_ensemble(
            args.count, _day_type(args.day), seed=args.seed
        )
        writer = (
            write_traces_json if args.out.endswith(".json")
            else write_traces_csv
        )
        writer(args.out, list(ensemble))
        print(f"wrote {len(ensemble)} user-days to {args.out}")
    else:
        reader = (
            read_traces_json if args.file.endswith(".json")
            else read_traces_csv
        )
        traces = reader(args.file)
        ensemble = TraceEnsemble(traces[0].day_type, tuple(traces))
        print(compute_ensemble_stats(ensemble))
    return 0


def _equiv_config(args: argparse.Namespace) -> FarmConfig:
    return FarmConfig(
        home_hosts=args.home_hosts,
        consolidation_hosts=args.consolidation_hosts,
        vms_per_host=args.vms_per_host,
    )


def _cmd_equiv(args: argparse.Namespace) -> int:
    """``equiv selftest|baseline|compare`` — the equivalence battery."""
    import json

    from repro.equiv import (
        BatteryConfig,
        build_baseline,
        compare_to_baseline,
        read_baseline,
        run_selftest,
        write_baseline,
    )

    config = _equiv_config(args)
    runner = _make_runner(args.workers)
    battery = BatteryConfig(family_alpha=args.alpha)
    try:
        if args.action == "selftest":
            mutants = args.mutants.split(",") if args.mutants else None
            report = run_selftest(
                config,
                args.policy,
                _day_type(args.day),
                root_seed=args.seed,
                ensemble_size=args.ensemble_size,
                battery_config=battery,
                mutants=mutants,
                runner=runner,
            )
            print(report.render())
            if args.report:
                with open(args.report, "w", encoding="utf-8") as handle:
                    json.dump(report.as_dict(), handle, indent=2,
                              sort_keys=True)
                    handle.write("\n")
                print(f"wrote {args.report}")
            return 0 if report.passed else 1
        if args.action == "baseline":
            payload = build_baseline(
                config,
                args.policies.split(","),
                _day_type(args.day),
                root_seed=args.seed,
                ensemble_size=args.ensemble_size,
                runner=runner,
            )
            write_baseline(args.out, payload)
            print(
                f"wrote baseline for {len(payload['policies'])} policies "
                f"x {payload['ensemble_size']} seeds to {args.out}"
            )
            return 0
        # compare: certify the current engine against a committed baseline.
        report = compare_to_baseline(
            read_baseline(args.baseline),
            config,
            args.policy,
            battery_config=battery,
            runner=runner,
        )
        print(report.render(verbose=args.verbose))
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.report}")
        return 0 if report.equivalent else 1
    except ConfigError as error:
        print(str(error), file=sys.stderr)
        return 2


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.errors import TraceFormatError
    from repro.obs import read_jsonl, timeline_summary, validate_chrome_trace

    try:
        if args.action == "summarize":
            report = timeline_summary(read_jsonl(args.file))
        elif args.file.endswith(".jsonl"):
            events = read_jsonl(args.file)
            report = f"OK: {len(events)} JSONL trace events in {args.file}"
        else:
            with open(args.file, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            count = validate_chrome_trace(document)
            report = f"OK: {count} Chrome trace events in {args.file}"
    except (TraceFormatError, json.JSONDecodeError, OSError) as error:
        print(f"invalid trace: {error}", file=sys.stderr)
        return 1
    try:
        print(report)
    except BrokenPipeError:
        pass  # downstream pager closed early (e.g. `| head`)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oasis-sim",
        description="Oasis (EuroSys 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one trace-driven day")
    simulate.add_argument(
        "--policy", default="FulltoPartial", choices=strategy_names(),
    )
    simulate.add_argument(
        "--gamma", type=int, default=None, metavar="N",
        help="Γ for --policy GammaRobust: plan each host as if its N "
             "spikiest consolidated VMs hit their demand-interval "
             "maximum simultaneously",
    )
    simulate.add_argument(
        "--day", default="weekday", choices=["weekday", "weekend"]
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--runs", type=int, default=1,
        help="independent repetitions (fresh trace draw per run)",
    )
    simulate.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for --runs > 1 or --zones > 1 (1 = serial)",
    )
    simulate.add_argument(
        "--zones", type=int, default=1,
        help="shard the farm into this many availability zones "
             "(1 = byte-identical to the unsharded simulator)",
    )
    simulate.add_argument(
        "--budget-w", type=float, default=None, metavar="WATTS",
        help="farm power budget carved into per-zone shares "
             "(proportional to peak demand; reported per zone)",
    )
    simulate.add_argument(
        "--week", action="store_true",
        help="simulate a calendar week (5 weekdays + 2 weekend days)",
    )
    simulate.add_argument(
        "--chart", action="store_true",
        help="render Figure 7-style sparklines of the day",
    )
    simulate.add_argument("--home-hosts", type=int, default=30)
    simulate.add_argument("--consolidation-hosts", type=int, default=4)
    simulate.add_argument("--vms-per-host", type=int, default=30)
    simulate.add_argument(
        "--fault-profile", default="none", choices=list(FAULT_PROFILE_NAMES),
        help="inject failures (migration aborts, failed wakes, memory-server "
             "crashes, page timeouts) at the named rates",
    )
    simulate.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a structured event trace of the day to PATH",
    )
    simulate.add_argument(
        "--trace-format", default="jsonl", choices=["jsonl", "chrome"],
        help="trace file format: line-delimited JSON records, or Chrome "
             "trace_event JSON for Perfetto / chrome://tracing",
    )
    simulate.set_defaults(handler=_cmd_simulate)

    sweep = sub.add_parser(
        "sweep",
        help="consolidation-host sweep (Figure 8 shape), optionally parallel",
    )
    sweep.add_argument(
        "--policy", default="all",
        choices=["all"] + strategy_names(),
        help="baseline policy (or 'all' for the paper's four)",
    )
    sweep.add_argument(
        "--gamma", default=None, metavar="G1,G2",
        help="comma-separated Γ values: run GammaRobust@Γ for each, "
             "next to the --policy baselines, at the first "
             "--consolidation-counts shape",
    )
    sweep.add_argument(
        "--fault-profile", default="none", choices=list(FAULT_PROFILE_NAMES),
        help="inject failures at the named rates in every sweep run",
    )
    sweep.add_argument(
        "--day", default="weekday", choices=["weekday", "weekend"]
    )
    sweep.add_argument("--runs", type=int, default=2)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep (1 = serial)",
    )
    sweep.add_argument(
        "--consolidation-counts", default="2,4",
        help="comma-separated consolidation-host counts to sweep",
    )
    sweep.add_argument("--home-hosts", type=int, default=30)
    sweep.add_argument("--vms-per-host", type=int, default=30)
    sweep.set_defaults(handler=_cmd_sweep)

    micro = sub.add_parser("micro", help="print a micro-benchmark table")
    micro.add_argument(
        "table",
        choices=["table1", "fig1", "fig2", "fig5", "fig6", "traffic",
                 "gamma"],
    )
    micro.add_argument("--seed", type=int, default=0)
    micro.set_defaults(handler=_cmd_micro)

    perfbench = sub.add_parser(
        "perfbench",
        help="time simulate_day and sweep throughput; write BENCH JSON",
    )
    perfbench.add_argument(
        "--quick", action="store_true",
        help="tiny CI subset of cases (seconds instead of minutes)",
    )
    perfbench.add_argument(
        "--out", default="BENCH_hotpath.json",
        help="where to write the sorted-key JSON report",
    )
    perfbench.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="earlier perfbench report to embed as the 'before' section "
             "(adds per-case speedup ratios)",
    )
    perfbench.add_argument(
        "--check", default=None, metavar="PATH",
        help="committed report to gate against; exit 1 if any shared "
             "case regressed more than --check-limit",
    )
    perfbench.add_argument(
        "--check-limit", type=float, default=2.5,
        help="slowdown factor tolerated by --check (default 2.5)",
    )
    perfbench.add_argument(
        "--profile-top", type=int, default=15,
        help="rows in the cProfile tottime table (full mode only)",
    )
    perfbench.add_argument(
        "--no-profile", action="store_true",
        help="skip the cProfile pass",
    )
    perfbench.set_defaults(handler=_cmd_perfbench)

    traces = sub.add_parser("traces", help="generate or inspect trace files")
    traces_sub = traces.add_subparsers(dest="action", required=True)
    generate = traces_sub.add_parser("generate")
    generate.add_argument("--count", type=int, default=900)
    generate.add_argument("--day", default="weekday",
                          choices=["weekday", "weekend"])
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_cmd_traces)
    stats = traces_sub.add_parser("stats")
    stats.add_argument("--file", required=True)
    stats.set_defaults(handler=_cmd_traces)

    trace = sub.add_parser(
        "trace", help="summarize or validate a recorded event trace"
    )
    trace_sub = trace.add_subparsers(dest="action", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="print a text timeline summary of a JSONL trace"
    )
    summarize.add_argument("file")
    summarize.set_defaults(handler=_cmd_trace)
    validate = trace_sub.add_parser(
        "validate",
        help="check a trace file (JSONL, or Chrome trace_event JSON)",
    )
    validate.add_argument("file")
    validate.set_defaults(handler=_cmd_trace)

    equiv = sub.add_parser(
        "equiv",
        help="statistical engine-equivalence battery (DESIGN.md §16)",
    )
    equiv_sub = equiv.add_subparsers(dest="action", required=True)

    def _equiv_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--day", default="weekday",
                       choices=["weekday", "weekend"])
        p.add_argument("--seed", type=int, default=2016,
                       help="root seed; member seeds are derived from it")
        p.add_argument("--ensemble-size", type=int, default=20)
        p.add_argument("--alpha", type=float, default=0.05,
                       help="family-wise false-rejection budget")
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes for reference ensembles")
        p.add_argument("--home-hosts", type=int, default=4)
        p.add_argument("--consolidation-hosts", type=int, default=2)
        p.add_argument("--vms-per-host", type=int, default=4)

    selftest = equiv_sub.add_parser(
        "selftest",
        help="prove the battery rejects every registered mutant and "
             "accepts the reference across disjoint seeds",
    )
    _equiv_common(selftest)
    selftest.add_argument("--policy", default="FulltoPartial")
    selftest.add_argument(
        "--mutants", default=None,
        help="comma-separated mutant names (default: all registered)",
    )
    selftest.add_argument("--report", default=None, metavar="PATH",
                          help="also write the full JSON report here")
    selftest.set_defaults(handler=_cmd_equiv)

    baseline = equiv_sub.add_parser(
        "baseline",
        help="capture reference ensembles as a committed baseline JSON",
    )
    _equiv_common(baseline)
    baseline.add_argument(
        "--policies",
        default="OnlyPartial,Default,FulltoPartial,NewHome,GammaRobust@1",
        help="comma-separated policy names to capture",
    )
    baseline.add_argument("--out", required=True)
    baseline.set_defaults(handler=_cmd_equiv)

    compare = equiv_sub.add_parser(
        "compare",
        help="certify the current engine against a committed baseline "
             "(paired at the baseline's pinned seeds)",
    )
    _equiv_common(compare)
    compare.add_argument("--baseline", required=True)
    compare.add_argument("--policy", default="FulltoPartial")
    compare.add_argument("--verbose", action="store_true",
                         help="print every metric verdict, not just failures")
    compare.add_argument("--report", default=None, metavar="PATH",
                         help="also write the full JSON report here")
    compare.set_defaults(handler=_cmd_equiv)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
