"""Application start-up latency in partial vs full VMs (Figure 6).

A full VM starts an application from memory-resident state; a partial VM
must demand-fault every page the start-up path touches, paying the
memory server's per-fault budget (~4 ms: network round trip, a random
read from the prototype's spinning SAS drive, Atom-class decompression).
With start-up footprints of tens to hundreds of MiB, applications start
one to two orders of magnitude slower — LibreOffice's 164 MiB footprint
takes ~168 s, 111x its memory-resident latency, while pre-fetching the
*entire* remaining VM image takes only the 41 s of a full migration.
This asymmetry is why every policy converts activating partial VMs to
full ones (§4.4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memserver.server import PageServiceModel
from repro.prototype.microbench import ConsolidationMicrobench
from repro.vm.workload import APPLICATION_CATALOG, Application


@dataclass(frozen=True)
class StartupLatency:
    """Figure 6 data for one application."""

    application: str
    full_vm_s: float
    partial_vm_s: float

    @property
    def slowdown(self) -> float:
        return self.partial_vm_s / self.full_vm_s


def startup_latency(
    app: Application, service: Optional[PageServiceModel] = None
) -> StartupLatency:
    """Model one application's start-up in a full vs a partial VM.

    In the partial VM, the start-up path's footprint faults in page by
    page on top of the CPU-bound work the full VM also does.
    """
    if service is None:
        service = PageServiceModel()
    fetch_s = service.fetch_time_for_mib(app.startup_footprint_mib)
    return StartupLatency(
        application=app.name,
        full_vm_s=app.full_start_s,
        partial_vm_s=app.full_start_s + fetch_s,
    )


def startup_latency_table(
    service: Optional[PageServiceModel] = None,
    application_keys: Optional[List[str]] = None,
) -> Dict[str, StartupLatency]:
    """Figure 6: start-up latencies for the Table 2 applications."""
    keys = (
        application_keys
        if application_keys is not None
        else sorted(APPLICATION_CATALOG)
    )
    return {
        key: startup_latency(APPLICATION_CATALOG[key], service)
        for key in keys
    }


def prefetch_alternative_s() -> float:
    """The comparison point Figure 6 quotes: pre-fetching the VM's whole
    remaining state (a full migration) instead of demand-faulting."""
    return ConsolidationMicrobench().run().full_migration_s
