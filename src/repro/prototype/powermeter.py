"""Table 1 reproduction: a power-meter harness over the hardware models.

The paper measured its custom host and memory server with a power meter;
our "meter" drives the host model through the same phases — fully idle,
running 20 VMs, suspending, sleeping, resuming — on the discrete-event
kernel, integrates energy with the production accounting code, and
derives each phase's mean power from measured energy over measured time.
This is circular with respect to the Table 1 *constants* (they are
inputs), but it validates end to end that the state machine, the event
scheduling, and the energy integration reproduce them exactly — the same
machinery the cluster simulation's results rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cluster.host import Host, HostRole
from repro.energy.accounting import EnergyAccountant
from repro.energy.profile import HostPowerProfile, MemoryServerProfile
from repro.simulator.engine import Simulator
from repro.units import DEFAULT_VM_MEMORY_MIB
from repro.vm.machine import VirtualMachine
from repro.vm.state import VmActivity


@dataclass(frozen=True)
class PowerReading:
    """One Table 1 row."""

    device: str
    state: str
    time_s: float
    power_w: float

    def __str__(self) -> str:
        time = f"{self.time_s:.1f}" if self.time_s > 0.0 else "N/A"
        return f"{self.device:13s} {self.state:10s} {time:>5s} s {self.power_w:7.1f} W"


def _metered_phase(
    accountant: EnergyAccountant,
    sim: Simulator,
    entity: str,
    watts: float,
    duration_s: float,
) -> float:
    """Run one constant-power phase; return its measured mean power."""
    start = sim.now
    before = accountant.energy_joules(entity)
    accountant.set_power(entity, watts, start)
    sim.run_until(start + duration_s)
    accountant.set_power(entity, watts, sim.now)  # close the segment
    energy = accountant.energy_joules(entity) - before
    return energy / duration_s


def measure_energy_profiles(
    host_profile: HostPowerProfile = HostPowerProfile(),
    memory_server: MemoryServerProfile = MemoryServerProfile.prototype(),
    vms: int = 20,
    dwell_s: float = 60.0,
) -> List[PowerReading]:
    """Produce Table 1 by metering the hardware models phase by phase."""
    sim = Simulator()
    accountant = EnergyAccountant()
    host = Host(0, HostRole.COMPUTE, capacity_mib=vms * DEFAULT_VM_MEMORY_MIB)
    readings: List[PowerReading] = []

    # Fully idle host.
    idle_w = _metered_phase(
        accountant, sim, "host", host_profile.powered_watts(), dwell_s
    )
    readings.append(PowerReading("Custom host", "Idle", 0.0, idle_w))

    # Running VMs.
    for vm_id in range(vms):
        vm = VirtualMachine(vm_id, 0)
        vm.set_activity(VmActivity.ACTIVE)
        host.attach(vm)
    loaded_w = _metered_phase(
        accountant,
        sim,
        "host",
        host_profile.powered_watts(full_vms=host.full_vm_count),
        dwell_s,
    )
    readings.append(PowerReading("Custom host", f"{vms} VMs", 0.0, loaded_w))
    for vm_id in list(host.vm_ids):
        host.detach(vm_id)

    # Suspend transition.
    host.begin_suspend()
    suspend_w = _metered_phase(
        accountant, sim, "host", host_profile.suspend_w, host_profile.suspend_s
    )
    host.complete_suspend()
    readings.append(
        PowerReading(
            "Custom host", "Suspend", host_profile.suspend_s, suspend_w
        )
    )

    # S3 sleep.
    sleep_w = _metered_phase(
        accountant, sim, "host", host_profile.sleep_w, dwell_s
    )
    readings.append(PowerReading("Custom host", "Sleep (S3)", 0.0, sleep_w))

    # Resume transition.
    host.begin_resume()
    resume_w = _metered_phase(
        accountant, sim, "host", host_profile.resume_w, host_profile.resume_s
    )
    host.complete_resume()
    readings.append(
        PowerReading("Custom host", "Resume", host_profile.resume_s, resume_w)
    )

    # Memory server components.
    platform_w = _metered_phase(
        accountant, sim, "memserver", memory_server.platform_w, dwell_s
    )
    readings.append(PowerReading("Memory server", "Idle", 0.0, platform_w))
    drive_w = _metered_phase(
        accountant, sim, "sas-drive", memory_server.drive_w, dwell_s
    )
    readings.append(PowerReading("SAS drive", "Idle", 0.0, drive_w))

    return readings
