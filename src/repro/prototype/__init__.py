"""The prototype layer: page-granular models behind §4's micro-benchmarks.

Where :mod:`repro.farm` consumes scalar migration costs, this package
derives those costs from first principles — page counts, link rates,
compression ratios, per-fault latency budgets — mirroring the paper's
two-server prototype:

* :mod:`repro.prototype.image` — statistical model of a primed desktop
  VM's memory image (what gets uploaded, what is dirty);
* :mod:`repro.prototype.memtap` — the real page-fault service path at
  small scale: absent page tables, fault, fetch, decompress, install;
* :mod:`repro.prototype.microbench` — Figure 5 consolidation latencies
  and §4.4.3 network traffic;
* :mod:`repro.prototype.apps` — Figure 6 application start-up latency;
* :mod:`repro.prototype.powermeter` — Table 1 energy profiles.
"""

from repro.prototype.image import VmImageModel
from repro.prototype.memtap import Memtap, PartialVmMemory
from repro.prototype.microbench import (
    ConsolidationMicrobench,
    MicrobenchConfig,
    MicrobenchReport,
)
from repro.prototype.apps import startup_latency_table, StartupLatency
from repro.prototype.powermeter import measure_energy_profiles, PowerReading

__all__ = [
    "VmImageModel",
    "Memtap",
    "PartialVmMemory",
    "ConsolidationMicrobench",
    "MicrobenchConfig",
    "MicrobenchReport",
    "startup_latency_table",
    "StartupLatency",
    "measure_energy_profiles",
    "PowerReading",
]
