"""Statistical model of a primed desktop VM's memory image.

Materializing 4 GiB of page bytes in pure Python is wasteful when only
sizes matter, so this model tracks the image as *used* memory (OS base
plus each loaded application's resident set, with the measured desktop
page-class mix) and *untouched* memory (zero pages).  Per-class
compression ratios come from the real LZ77 codec, measured on synthetic
pages and asserted by the test suite, so the statistical path and the
byte-level path (:mod:`repro.prototype.memtap`) stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigError
from repro.memserver.pages import DESKTOP_USED_MIX, PageClassMix
from repro.units import DEFAULT_VM_MEMORY_MIB, PAGES_PER_MIB
from repro.vm.workload import Workload


@dataclass
class VmImageModel:
    """One VM memory image as upload-relevant statistics."""

    total_mib: float = DEFAULT_VM_MEMORY_MIB
    #: Guest OS, daemons, and page-cache floor, before any workload.
    os_base_mib: float = 500.0
    used_mix: PageClassMix = field(default_factory=lambda: DESKTOP_USED_MIX)
    workloads: List[Workload] = field(default_factory=list)
    #: Memory dirtied since the last upload to the memory server, raw MiB.
    dirty_mib: float = 0.0

    def __post_init__(self) -> None:
        if self.total_mib <= 0.0 or self.os_base_mib < 0.0:
            raise ConfigError("image sizes must be positive")
        if self.used_mib > self.total_mib:
            raise ConfigError("used memory exceeds the allocation")
        # A fresh image has never been uploaded: everything used is dirty.
        self.dirty_mib = self.used_mib

    # -- composition ------------------------------------------------------

    @property
    def used_mib(self) -> float:
        """Touched (non-zero) memory: OS base plus loaded workloads."""
        return self.os_base_mib + sum(
            workload.resident_mib for workload in self.workloads
        )

    @property
    def zero_mib(self) -> float:
        """Untouched pages (compress to almost nothing)."""
        return self.total_mib - self.used_mib

    @property
    def total_pages(self) -> int:
        return int(self.total_mib * PAGES_PER_MIB)

    def load_workload(self, workload: Workload, dirty_fraction: float = 1.0):
        """Run a workload in the VM: its resident set becomes used memory
        and ``dirty_fraction`` of it is newly dirty versus the last
        upload (some pages land on recycled buffers already uploaded)."""
        if not 0.0 <= dirty_fraction <= 1.0:
            raise ConfigError("dirty_fraction must be in [0, 1]")
        if self.used_mib + workload.resident_mib > self.total_mib:
            raise ConfigError(
                f"loading {workload.name} would exceed the allocation"
            )
        self.workloads.append(workload)
        self.dirty_mib += workload.resident_mib * dirty_fraction

    def dirty(self, mib: float) -> None:
        """Mark ``mib`` of already-used memory dirty (e.g. reintegrated
        state from a consolidation episode)."""
        if mib < 0.0:
            raise ConfigError("dirty amount must be >= 0")
        self.dirty_mib = min(self.dirty_mib + mib, self.used_mib)

    # -- upload sizes ---------------------------------------------------------

    def compressed_used_mib(self) -> float:
        """Compressed size of the full used image (first upload)."""
        return self.used_mix.compressed_mib(self.used_mib)

    def compressed_dirty_mib(self) -> float:
        """Compressed size of a differential upload (dirty pages only)."""
        return self.used_mix.compressed_mib(self.dirty_mib)

    def mark_uploaded(self) -> None:
        """The memory server now holds a clean copy: nothing is dirty."""
        self.dirty_mib = 0.0

    def descriptor_mib(self) -> float:
        """VM descriptor pushed at partial migration: page tables (8 bytes
        per page entry over the whole allocation) plus execution context,
        device state, and configuration (~8 MiB)."""
        page_tables = self.total_pages * 8.0 / (1024.0 * 1024.0)
        return page_tables + 8.0
