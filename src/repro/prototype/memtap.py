"""The memtap page-fault service path, end to end and for real (§4.2).

A partial VM starts with page-table entries marked *absent*; touching an
absent page traps into the hypervisor, which notifies the VM's memtap
process; memtap requests the compressed page from the memory server,
decompresses it, installs it into a frame (frames are allocated in 2 MiB
chunks to limit heap fragmentation), and reschedules the vCPU.

This module implements that pipeline with real bytes over the real
:class:`~repro.memserver.store.PageStore` so tests can exercise the full
compress → upload → fault → fetch → decompress → install loop at small
VM sizes, and it accounts the same latency budget the analytical models
use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.errors import MigrationError
from repro.memserver.compression import Lz77Codec
from repro.memserver.pages import PAGE_BYTES
from repro.memserver.server import MemoryServer, PageServiceModel
from repro.units import CHUNK_SIZE_MIB, PAGE_SIZE_KIB

#: Pages per 2 MiB allocation chunk.
PAGES_PER_CHUNK = int(CHUNK_SIZE_MIB * 1024.0 / PAGE_SIZE_KIB)


@dataclass
class PartialVmMemory:
    """Guest-visible memory of a partial VM: mostly absent pages."""

    vm_id: int
    total_pages: int
    present: Dict[int, bytes] = field(default_factory=dict)
    dirty: Set[int] = field(default_factory=set)

    def is_present(self, pfn: int) -> bool:
        self._check_pfn(pfn)
        return pfn in self.present

    def read(self, pfn: int) -> Optional[bytes]:
        """Read a page; None signals a fault the caller must service."""
        self._check_pfn(pfn)
        return self.present.get(pfn)

    def install(self, pfn: int, data: bytes) -> None:
        """Install a fetched page (memtap writes the decompressed frame)."""
        self._check_pfn(pfn)
        if len(data) != PAGE_BYTES:
            raise MigrationError(
                f"page {pfn}: expected {PAGE_BYTES} bytes, got {len(data)}"
            )
        self.present[pfn] = data

    def write(self, pfn: int, data: bytes) -> None:
        """Guest write: page must be present; marks it dirty."""
        self._check_pfn(pfn)
        if pfn not in self.present:
            raise MigrationError(f"write to absent page {pfn}")
        if len(data) != PAGE_BYTES:
            raise MigrationError(
                f"page {pfn}: expected {PAGE_BYTES} bytes, got {len(data)}"
            )
        self.present[pfn] = data
        self.dirty.add(pfn)

    @property
    def resident_pages(self) -> int:
        return len(self.present)

    @property
    def allocated_chunks(self) -> int:
        """2 MiB frame chunks backing the resident pages (§4.2)."""
        chunks = {pfn // PAGES_PER_CHUNK for pfn in self.present}
        return len(chunks)

    def _check_pfn(self, pfn: int) -> None:
        if not 0 <= pfn < self.total_pages:
            raise MigrationError(
                f"pfn {pfn} outside [0, {self.total_pages})"
            )


class Memtap:
    """Per-VM fault handler fetching pages from one memory server."""

    def __init__(
        self,
        memory: PartialVmMemory,
        server: MemoryServer,
        service: Optional[PageServiceModel] = None,
    ) -> None:
        self.memory = memory
        self.server = server
        self.service = service if service is not None else server.service
        self.faults_served = 0
        self.bytes_fetched = 0
        self.time_spent_s = 0.0

    def access(self, pfn: int) -> bytes:
        """Guest read access: service a fault if the page is absent.

        Returns the page contents; accumulates modeled fault latency in
        :attr:`time_spent_s`.
        """
        data = self.memory.read(pfn)
        if data is not None:
            return data
        blob = self.server.serve_page(self.memory.vm_id, pfn)
        page = Lz77Codec.decompress(blob)
        self.memory.install(pfn, page)
        self.faults_served += 1
        self.bytes_fetched += len(blob)
        self.time_spent_s += self.service.per_fault_s
        return page

    def prefetch(self, pfns) -> int:
        """Fault in a set of pages (e.g. converting to a full VM).

        Returns the number of pages actually fetched.
        """
        fetched = 0
        for pfn in pfns:
            if not self.memory.is_present(pfn):
                self.access(pfn)
                fetched += 1
        return fetched
