"""The §4.4 consolidation micro-benchmark (Figure 5 and §4.4.3 traffic).

Reproduces the prototype experiment end to end on the analytical image
model: prime a 4 GiB desktop VM with Workload 1, let it idle, partially
migrate it (upload memory to the memory server over the SAS link, push
the descriptor over GigE), run it consolidated for twenty minutes,
reintegrate it, run Workload 2, and partially migrate it again — the
second time benefiting from the differential upload optimization.  A
pre-copy full migration of the same VM is measured for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.memserver.link import GIGE_LINK, SAS_LINK, TransferLink
from repro.migration.precopy import PreCopyModel
from repro.prototype.image import VmImageModel
from repro.vm.workload import WORKLOAD_1, WORKLOAD_2


@dataclass(frozen=True)
class MicrobenchConfig:
    """Parameters of the §4.4 experiment."""

    network: TransferLink = GIGE_LINK
    sas: TransferLink = SAS_LINK
    precopy: PreCopyModel = field(default_factory=PreCopyModel)
    #: Dirty rate of the idle-but-primed VM during live migration,
    #: MiB/s (background daemons keep writing).
    idle_dirty_rate_mib_s: float = 10.0
    #: Destination-side cost of creating the partial VM: building page
    #: tables with absent entries, initializing vCPUs, starting memtap.
    partial_create_s: float = 5.0
    #: Destination-side cost of merging dirty state and resuming at
    #: reintegration.
    reintegration_overhead_s: float = 2.1
    #: Memory demand-faulted over the 20-minute consolidation episode,
    #: raw MiB (measured: 56.9 +/- 7.9, §4.4.3).
    on_demand_mib: float = 56.9
    #: Dirty state pushed back at reintegration, raw MiB (175.3 +/- 49.3;
    #: exceeds the fetched state because wholly-overwritten pages are
    #: never fetched, only written).
    reintegration_dirty_mib: float = 175.3
    #: Fraction of Workload 2's resident set that lands on pages not
    #: already covered by the previous upload (fresh allocations over
    #: recycled, already-uploaded buffers dirty less than they touch).
    w2_dirty_fraction: float = 0.22

    def __post_init__(self) -> None:
        for name in (
            "idle_dirty_rate_mib_s",
            "partial_create_s",
            "reintegration_overhead_s",
            "on_demand_mib",
            "reintegration_dirty_mib",
        ):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be non-negative")
        if not 0.0 <= self.w2_dirty_fraction <= 1.0:
            raise ConfigError("w2_dirty_fraction must be in [0, 1]")


@dataclass(frozen=True)
class MicrobenchReport:
    """Everything Figure 5 and §4.4.3 report, in seconds and MiB."""

    # -- Figure 5 latencies ----------------------------------------------
    full_migration_s: float
    partial_migration_1_s: float
    memory_upload_1_s: float
    partial_migration_2_s: float
    memory_upload_2_s: float
    descriptor_push_s: float
    reintegration_s: float

    # -- §4.4.3 network traffic -------------------------------------------
    full_migration_traffic_mib: float
    descriptor_mib: float
    on_demand_mib: float
    reintegration_mib: float

    def rows(self) -> Dict[str, float]:
        """Figure 5's bars, keyed by label."""
        return {
            "full migration": self.full_migration_s,
            "partial migration #1": self.partial_migration_1_s,
            "partial migration #2": self.partial_migration_2_s,
            "reintegration": self.reintegration_s,
            "descriptor push (lower bound)": self.descriptor_push_s,
        }


class ConsolidationMicrobench:
    """Runs the §4.4 experiment on the image model."""

    def __init__(self, config: MicrobenchConfig = MicrobenchConfig()) -> None:
        self.config = config

    def run(self) -> MicrobenchReport:
        config = self.config
        image = VmImageModel()

        # Prime with Workload 1; everything used is dirty vs. the
        # (empty) memory server.
        image.load_workload(WORKLOAD_1)

        # Comparison point: pre-copy live migration of the primed VM.
        precopy = config.precopy.migrate(
            image.total_mib, config.idle_dirty_rate_mib_s
        )

        # Partial migration #1: upload the used image (compressed) over
        # SAS, push the descriptor over the network, create the partial
        # VM at the destination.
        upload_1_s = config.sas.transfer_s(image.compressed_used_mib())
        image.mark_uploaded()
        descriptor_mib = image.descriptor_mib()
        descriptor_push_s = (
            config.network.transfer_s(descriptor_mib) + config.partial_create_s
        )
        partial_1_s = upload_1_s + descriptor_push_s

        # Twenty consolidated minutes: the partial VM demand-faults its
        # idle working set, then reintegrates its dirty state.
        reintegration_s = (
            config.network.transfer_s(config.reintegration_dirty_mib)
            + config.reintegration_overhead_s
        )
        image.dirty(config.reintegration_dirty_mib)

        # Workload 2 runs at home, dirtying part of its resident set.
        image.load_workload(WORKLOAD_2, dirty_fraction=config.w2_dirty_fraction)

        # Partial migration #2: the differential upload sends only the
        # dirty pages.
        upload_2_s = config.sas.transfer_s(image.compressed_dirty_mib())
        image.mark_uploaded()
        partial_2_s = upload_2_s + descriptor_push_s

        return MicrobenchReport(
            full_migration_s=precopy.total_s,
            partial_migration_1_s=partial_1_s,
            memory_upload_1_s=upload_1_s,
            partial_migration_2_s=partial_2_s,
            memory_upload_2_s=upload_2_s,
            descriptor_push_s=descriptor_push_s,
            reintegration_s=reintegration_s,
            full_migration_traffic_mib=precopy.transferred_mib,
            descriptor_mib=descriptor_mib,
            on_demand_mib=config.on_demand_mib,
            reintegration_mib=config.reintegration_dirty_mib,
        )
