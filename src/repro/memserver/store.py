"""The memory server's page store with dirty tracking.

Before a host sleeps it uploads its partial VMs' memory images to the
store (compressed page by page); the differential-upload optimization
(§4.3) resends only pages dirtied since the previous upload.  The store
here is *real*: it keeps compressed page bytes keyed by guest
pseudo-physical frame number, so tests exercise the actual
compress/upload/serve/decompress pipeline at small VM sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from repro.errors import MigrationError
from repro.memserver.compression import Lz77Codec
from repro.memserver.link import SAS_LINK, TransferLink
from repro.memserver.pages import PAGE_BYTES
from repro.units import KIB_PER_MIB, PAGE_SIZE_KIB


@dataclass(frozen=True)
class UploadReceipt:
    """Outcome of one memory upload to the store."""

    vm_id: int
    pages_sent: int
    raw_mib: float
    compressed_mib: float
    upload_s: float
    differential: bool

    @property
    def compression_ratio(self) -> float:
        """Compressed/raw ratio of this upload (1.0 for empty uploads)."""
        if self.raw_mib == 0.0:
            return 1.0
        return self.compressed_mib / self.raw_mib


class PageStore:
    """Compressed page images for the VMs a memory server owns."""

    def __init__(
        self,
        codec: Optional[Lz77Codec] = None,
        link: TransferLink = SAS_LINK,
    ) -> None:
        self._codec = codec if codec is not None else Lz77Codec()
        self._link = link
        self._images: Dict[int, Dict[int, bytes]] = {}

    # -- queries --------------------------------------------------------

    def has_image(self, vm_id: int) -> bool:
        return vm_id in self._images

    def image_page_count(self, vm_id: int) -> int:
        return len(self._image(vm_id))

    def image_compressed_mib(self, vm_id: int) -> float:
        image = self._image(vm_id)
        total_bytes = sum(len(blob) for blob in image.values())
        return total_bytes / (KIB_PER_MIB * 1024.0)

    def vm_ids(self) -> Set[int]:
        return set(self._images)

    # -- uploads ------------------------------------------------------------

    def upload(
        self,
        vm_id: int,
        pages: Dict[int, bytes],
        dirty_pfns: Optional[Iterable[int]] = None,
    ) -> UploadReceipt:
        """Upload a VM's pages, compressing each before the SAS write.

        ``pages`` maps pseudo-physical frame numbers to raw 4 KiB page
        contents.  When ``dirty_pfns`` is given and an image already
        exists, only those pages are (re)sent — the differential upload.
        Returns a receipt with sizes and the modeled upload time.
        """
        image = self._images.get(vm_id)
        if dirty_pfns is not None and image is not None:
            to_send = {}
            for pfn in dirty_pfns:
                if pfn not in pages:
                    raise MigrationError(
                        f"VM {vm_id}: dirty pfn {pfn} not present in pages"
                    )
                to_send[pfn] = pages[pfn]
            differential = True
        else:
            to_send = dict(pages)
            image = {}
            self._images[vm_id] = image
            differential = False

        compressed_bytes = 0
        for pfn, raw in to_send.items():
            if len(raw) != PAGE_BYTES:
                raise MigrationError(
                    f"VM {vm_id}: page {pfn} is {len(raw)} bytes, "
                    f"expected {PAGE_BYTES}"
                )
            blob = self._codec.compress(raw)
            image[pfn] = blob
            compressed_bytes += len(blob)

        raw_mib = len(to_send) * PAGE_SIZE_KIB / KIB_PER_MIB
        compressed_mib = compressed_bytes / (KIB_PER_MIB * 1024.0)
        upload_s = self._link.transfer_s(compressed_mib) if to_send else 0.0
        return UploadReceipt(
            vm_id=vm_id,
            pages_sent=len(to_send),
            raw_mib=raw_mib,
            compressed_mib=compressed_mib,
            upload_s=upload_s,
            differential=differential,
        )

    # -- page service -----------------------------------------------------------

    def fetch_page(self, vm_id: int, pfn: int) -> bytes:
        """Fetch and decompress one page, as the memtap process would."""
        image = self._image(vm_id)
        try:
            blob = image[pfn]
        except KeyError:
            raise MigrationError(f"VM {vm_id}: no page {pfn} in store")
        return Lz77Codec.decompress(blob)

    def fetch_compressed(self, vm_id: int, pfn: int) -> bytes:
        """Fetch the compressed page as transmitted on the wire (§4.3:
        the memory server sends compressed pages; memtap decompresses)."""
        image = self._image(vm_id)
        try:
            return image[pfn]
        except KeyError:
            raise MigrationError(f"VM {vm_id}: no page {pfn} in store")

    def release(self, vm_id: int) -> None:
        """Free a VM's image (reintegration complete or VM re-homed)."""
        self._images.pop(vm_id, None)

    def _image(self, vm_id: int) -> Dict[int, bytes]:
        try:
            return self._images[vm_id]
        except KeyError:
            raise MigrationError(f"no image stored for VM {vm_id}")
