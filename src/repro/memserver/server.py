"""The page-service daemon and its latency budget.

While a home host sleeps, its memory server answers network page requests
by guest pseudo-physical frame number (§4.3).  The prototype's service
path per fault is:

1. request over Gigabit Ethernet (network RTT),
2. random read of the compressed page from the SAS drive (the prototype
   stores images on a spinning disk, so seek time dominates),
3. decompression by the requesting memtap process,
4. page transfer back over the network.

The defaults below total ~4 ms per 4 KiB fault, which is what makes
demand-started applications ~two orders of magnitude slower than
memory-resident ones (Figure 6).  A commercial memory server with direct
DRAM access (§4.5) would skip the disk read; model that by setting
``disk_read_s`` to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.energy.profile import MemoryServerProfile
from repro.errors import ConfigError, PageFetchTimeout
from repro.memserver.store import PageStore
from repro.obs.events import CAT_MEMSERVER
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.units import KIB_PER_MIB, PAGE_SIZE_KIB


@dataclass(frozen=True)
class PageServiceModel:
    """Per-request latency budget of the page service path (seconds)."""

    #: One network round trip on the page channel (GigE LAN).
    network_rtt_s: float = 0.00025
    #: Random read of one compressed page from the SAS drive.
    disk_read_s: float = 0.0033
    #: Decompression + memtap handling on the Atom-class processor.
    cpu_s: float = 0.0004
    #: Wire time for the compressed page payload (≈2 KiB over GigE).
    payload_s: float = 0.00002
    #: Optional per-request TLS authentication/encryption overhead (§4.3
    #: Security); zero by default, as the paper does not measure it.
    tls_s: float = 0.0

    def __post_init__(self) -> None:
        for name in ("network_rtt_s", "disk_read_s", "cpu_s", "payload_s", "tls_s"):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be non-negative")

    @property
    def per_fault_s(self) -> float:
        """End-to-end latency of one demand page fault."""
        return (
            self.network_rtt_s
            + self.disk_read_s
            + self.cpu_s
            + self.payload_s
            + self.tls_s
        )

    def fetch_time_s(self, pages: int) -> float:
        """Time to demand-fetch ``pages`` pages one fault at a time."""
        if pages < 0:
            raise ConfigError("page count must be non-negative")
        return pages * self.per_fault_s

    def fetch_time_for_mib(self, mib: float) -> float:
        """Time to demand-fetch ``mib`` MiB of memory page by page."""
        if mib < 0.0:
            raise ConfigError("size must be non-negative")
        pages = mib * KIB_PER_MIB / PAGE_SIZE_KIB
        return pages * self.per_fault_s

    @classmethod
    def dram_backed(cls) -> "PageServiceModel":
        """A commercial design with direct access to host DRAM (§4.5)."""
        return cls(disk_read_s=0.0)


@dataclass
class MemoryServer:
    """One per-host memory server: store + service model + power profile.

    The farm simulation only consumes :attr:`profile` (for sleeping-host
    power) and the service/latency constants; the prototype layer also
    exercises the real :attr:`store`.
    """

    host_id: int
    profile: MemoryServerProfile = field(
        default_factory=MemoryServerProfile.prototype
    )
    service: PageServiceModel = field(default_factory=PageServiceModel)
    store: Optional[PageStore] = None
    serving: bool = False
    #: Set by fault injection when the server crashes; requests then
    #: raise :class:`PageFetchTimeout` until :meth:`repair` is called.
    failed: bool = False
    requests_served: int = 0
    #: Timed-out fetch attempts absorbed by :meth:`serve_page_with_retries`.
    requests_timed_out: int = 0
    #: Observation only — never consulted for behaviour.
    tracer: Tracer = field(default=NULL_TRACER, repr=False, compare=False)

    def start_serving(self) -> None:
        """Activate the daemon (host has detached the shared drive)."""
        self.serving = True
        if self.tracer.enabled:
            self.tracer.event(
                "memserver.start_serving", CAT_MEMSERVER, host=self.host_id
            )

    def stop_serving(self) -> None:
        """Deactivate (host woke up and reclaimed the drive)."""
        self.serving = False
        if self.tracer.enabled:
            self.tracer.event(
                "memserver.stop_serving", CAT_MEMSERVER, host=self.host_id
            )

    def fail(self) -> None:
        """Crash the server (fault injection)."""
        self.failed = True
        if self.tracer.enabled:
            self.tracer.event(
                "memserver.fail", CAT_MEMSERVER, host=self.host_id
            )

    def repair(self) -> None:
        """Bring a crashed server back (host woke, operator swapped it)."""
        self.failed = False
        if self.tracer.enabled:
            self.tracer.event(
                "memserver.repair", CAT_MEMSERVER, host=self.host_id
            )

    def serve_page(self, vm_id: int, pfn: int) -> bytes:
        """Serve one compressed page from the real store (prototype path)."""
        if self.failed:
            raise PageFetchTimeout(
                f"memory server {self.host_id} is down; page request for "
                f"VM {vm_id} pfn {pfn} timed out"
            )
        if not self.serving:
            raise ConfigError(
                f"memory server {self.host_id} is not serving"
            )
        if self.store is None:
            raise ConfigError(
                f"memory server {self.host_id} has no page store attached"
            )
        blob = self.store.fetch_compressed(vm_id, pfn)
        self.requests_served += 1
        if self.tracer.enabled:
            self.tracer.event(
                "memserver.serve_page", CAT_MEMSERVER,
                host=self.host_id, vm=vm_id, pfn=pfn,
            )
        return blob

    def serve_page_with_retries(
        self, vm_id: int, pfn: int, injector=None
    ) -> bytes:
        """Serve one page, absorbing injected transient timeouts.

        ``injector`` is a :class:`repro.faults.FaultInjector` (or any
        object with a ``page_timeouts()`` method); each injected timeout
        models one lost request/response that the memtap client re-sends
        after its timeout window.  A *failed* server still raises — only
        transient losses are retried here.
        """
        timeouts = injector.page_timeouts() if injector is not None else 0
        self.requests_timed_out += timeouts
        if timeouts and self.tracer.enabled:
            self.tracer.event(
                "memserver.fetch_timeouts", CAT_MEMSERVER,
                host=self.host_id, vm=vm_id, pfn=pfn, timeouts=timeouts,
            )
        return self.serve_page(vm_id, pfn)

    def fetch_time_with_timeouts_s(
        self, pages: int, timeouts: int, timeout_window_s: float = 1.0
    ) -> float:
        """Latency of a ``pages``-page burst that hit ``timeouts`` losses."""
        if timeouts < 0:
            raise ConfigError("timeout count must be non-negative")
        return self.service.fetch_time_s(pages) + timeouts * timeout_window_s

    @property
    def power_w(self) -> float:
        """Draw while powered alongside a sleeping host."""
        return self.profile.total_w
