"""The low-power memory page server (§3.3, §4.3).

Oasis pairs each compute host with a low-power memory server (the
prototype: an Atom platform plus a dual-mounted SAS drive) so the host
can sleep while its consolidated partial VMs keep faulting pages in.

This package provides:

* a from-scratch LZ77/RLE page codec standing in for LZO (§4.3 compresses
  every page before it is written to the memory image);
* synthetic page-content generation with controllable compressibility;
* a real page store (compressed pages keyed by pseudo-physical frame
  number) plus dirty tracking for differential uploads;
* link models for the SAS upload path and the Ethernet page channel;
* the page-service daemon model with its request latency budget.
"""

from repro.memserver.compression import Lz77Codec, compress, decompress
from repro.memserver.pages import PageKind, SyntheticPageFactory, PageClassMix
from repro.memserver.store import PageStore, UploadReceipt
from repro.memserver.link import TransferLink, SAS_LINK, GIGE_LINK, TEN_GIGE_LINK
from repro.memserver.server import MemoryServer, PageServiceModel

__all__ = [
    "Lz77Codec",
    "compress",
    "decompress",
    "PageKind",
    "SyntheticPageFactory",
    "PageClassMix",
    "PageStore",
    "UploadReceipt",
    "TransferLink",
    "SAS_LINK",
    "GIGE_LINK",
    "TEN_GIGE_LINK",
    "MemoryServer",
    "PageServiceModel",
]
