"""Transfer link models: the SAS upload path and the Ethernet fabric."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import GIGE_MIB_PER_S, SAS_MIB_PER_S, TEN_GIGE_MIB_PER_S


@dataclass(frozen=True)
class TransferLink:
    """A point-to-point link with bandwidth and fixed per-use overhead.

    ``setup_s`` models per-transfer fixed costs (SAS drive attach/detach
    and filesystem sync for the shared drive; connection setup for the
    network paths); ``per_op_s`` models per-request overhead (used for
    page-granular traffic such as demand faults).
    """

    name: str
    bandwidth_mib_per_s: float
    setup_s: float = 0.0
    per_op_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mib_per_s <= 0.0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")
        if self.setup_s < 0.0 or self.per_op_s < 0.0:
            raise ConfigError(f"{self.name}: overheads must be non-negative")

    def transfer_s(self, size_mib: float, operations: int = 1) -> float:
        """Time to move ``size_mib`` in ``operations`` requests."""
        if size_mib < 0.0:
            raise ConfigError("transfer size must be non-negative")
        if operations < 0:
            raise ConfigError("operation count must be non-negative")
        if size_mib == 0.0 and operations == 0:
            return 0.0
        return (
            self.setup_s
            + self.per_op_s * operations
            + size_mib / self.bandwidth_mib_per_s
        )


#: The dual-mounted SAS drive between host and memory server (§4.3):
#: 128 MiB/s sequential writes; attach + detach + sync adds ~0.5 s.
SAS_LINK = TransferLink("sas", SAS_MIB_PER_S, setup_s=0.5)

#: Prototype network (§4.4.1): Gigabit Ethernet.
GIGE_LINK = TransferLink("gige", GIGE_MIB_PER_S, setup_s=0.1)

#: Simulated rack fabric (§5.1): top-of-rack 10 GigE.
TEN_GIGE_LINK = TransferLink("10gige", TEN_GIGE_MIB_PER_S, setup_s=0.1)
