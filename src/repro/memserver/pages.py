"""Synthetic page contents with controllable compressibility.

Real guest memory is a mix of zero pages, text-like data (page cache,
heaps full of strings), code/structured data, and incompressible content
(encrypted or already-compressed buffers).  The page factory below
produces 4 KiB pages of each class deterministically from a seeded RNG,
and :class:`PageClassMix` describes the composition of a whole VM image
so upload sizes can be derived from per-class compression ratios.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterable

from repro.errors import ConfigError
from repro.units import KIB_PER_MIB, PAGE_SIZE_KIB

PAGE_BYTES = int(PAGE_SIZE_KIB * 1024)

_WORDS = (
    b"the", b"of", b"memory", b"page", b"server", b"energy", b"cluster",
    b"virtual", b"machine", b"idle", b"active", b"consolidation", b"host",
    b"migration", b"partial", b"working", b"set", b"sleep", b"power",
)


class PageKind(enum.Enum):
    """Compressibility class of a page."""

    ZERO = "zero"          # untouched / zeroed pages: compress to ~nothing
    TEXT = "text"          # text-like: highly compressible
    CODE = "code"          # code / structured binary: moderately compressible
    RANDOM = "random"      # encrypted or compressed payloads: incompressible


class SyntheticPageFactory:
    """Deterministic generator of 4 KiB pages of each class."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def make(self, kind: PageKind) -> bytes:
        """Produce one page of the requested class."""
        if kind is PageKind.ZERO:
            return bytes(PAGE_BYTES)
        if kind is PageKind.TEXT:
            return self._text_page()
        if kind is PageKind.CODE:
            return self._code_page()
        return self._random_page()

    def make_many(self, kind: PageKind, count: int) -> Iterable[bytes]:
        for _ in range(count):
            yield self.make(kind)

    def _text_page(self) -> bytes:
        rng = self._rng
        chunks = []
        size = 0
        while size < PAGE_BYTES:
            word = rng.choice(_WORDS)
            chunks.append(word)
            chunks.append(b" ")
            size += len(word) + 1
        return b"".join(chunks)[:PAGE_BYTES]

    def _code_page(self) -> bytes:
        """Structured binary: short random motifs repeated with variation."""
        rng = self._rng
        out = bytearray()
        while len(out) < PAGE_BYTES:
            motif = bytes(rng.randrange(256) for _ in range(rng.randint(4, 12)))
            repeats = rng.randint(2, 8)
            for _ in range(repeats):
                out.extend(motif)
                out.append(rng.randrange(256))
        return bytes(out[:PAGE_BYTES])

    def _random_page(self) -> bytes:
        return bytes(self._rng.randrange(256) for _ in range(PAGE_BYTES))


#: Per-class compression ratios (compressed/raw) of :class:`Lz77Codec`
#: on synthetic pages.  Measured by ``tests/test_compression.py``, which
#: asserts the codec stays within tolerance of these constants; the
#: statistical image models consume them so that 4 GiB images need not
#: be materialized byte by byte.
MEASURED_COMPRESSION_RATIO: Dict[PageKind, float] = {
    PageKind.ZERO: 0.024,    # one 3-byte token per 130-byte match run
    PageKind.TEXT: 0.32,
    PageKind.CODE: 0.64,
    PageKind.RANDOM: 1.008,  # incompressible data pays token overhead
}


@dataclass(frozen=True)
class PageClassMix:
    """Composition of a memory region as fractions per page class."""

    zero: float
    text: float
    code: float
    random: float

    def __post_init__(self) -> None:
        total = self.zero + self.text + self.code + self.random
        if any(f < 0.0 for f in (self.zero, self.text, self.code, self.random)):
            raise ConfigError("page-class fractions must be non-negative")
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(f"page-class fractions must sum to 1, got {total}")

    def fraction(self, kind: PageKind) -> float:
        return {
            PageKind.ZERO: self.zero,
            PageKind.TEXT: self.text,
            PageKind.CODE: self.code,
            PageKind.RANDOM: self.random,
        }[kind]

    def compressed_ratio(self) -> float:
        """Expected compressed/raw ratio of a region with this mix."""
        return sum(
            self.fraction(kind) * MEASURED_COMPRESSION_RATIO[kind]
            for kind in PageKind
        )

    def compressed_mib(self, raw_mib: float) -> float:
        """Expected compressed size of ``raw_mib`` of this mix."""
        if raw_mib < 0.0:
            raise ConfigError("raw size must be non-negative")
        return raw_mib * self.compressed_ratio()


#: A primed desktop VM's *used* memory (no zero pages: those are the
#: untouched remainder of the allocation, accounted separately).  The
#: blend gives the ~0.51 compressed/raw ratio that reproduces the
#: prototype's 10.2 s initial memory upload (Figure 5).
DESKTOP_USED_MIX = PageClassMix(zero=0.0, text=0.55, code=0.33, random=0.12)


def mix_pages_to_mib(pages: int) -> float:
    """Size in MiB of ``pages`` whole pages."""
    return pages * PAGE_SIZE_KIB / KIB_PER_MIB
