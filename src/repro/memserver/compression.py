"""A from-scratch LZ77 byte codec (the LZO stand-in).

The paper compresses every page with the LZO real-time library before
writing it to the memory image (§4.3).  LZO itself is proprietaryish C;
what the system needs from it is a fast, lossless, byte-oriented
dictionary coder.  This module implements one with a deliberately simple
wire format:

* control byte ``0x00-0x7F`` — a literal run of ``control + 1`` bytes
  follows verbatim (1..128 bytes);
* control byte ``0x80-0xFF`` — a back-reference: match length is
  ``(control & 0x7F) + MIN_MATCH`` (3..130 bytes) and the next two bytes
  hold the little-endian distance (1..65535) back into the output.

Matches may overlap the output cursor (distance < length), which encodes
runs — the RLE case — for free.  Greedy parsing with a bounded hash
chain keeps compression O(n) per page.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CompressionError

#: Shortest back-reference worth encoding (a match token costs 3 bytes).
MIN_MATCH = 3
#: Longest match a single token can encode.
MAX_MATCH = MIN_MATCH + 0x7F
#: Longest literal run a single token can encode.
MAX_LITERAL_RUN = 0x80
#: Largest back-reference distance (two-byte field, zero is illegal).
MAX_DISTANCE = 0xFFFF


class Lz77Codec:
    """Greedy LZ77 with a bounded hash chain.

    ``chain_limit`` bounds how many candidate positions are tried per
    3-byte prefix; higher values trade speed for ratio.
    """

    def __init__(self, chain_limit: int = 16) -> None:
        if chain_limit < 1:
            raise CompressionError("chain_limit must be >= 1")
        self.chain_limit = chain_limit

    # -- compression -------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; round-trips exactly through :meth:`decompress`."""
        length = len(data)
        if length == 0:
            return b""
        out = bytearray()
        literals = bytearray()
        table: Dict[bytes, List[int]] = {}
        position = 0
        while position < length:
            match_length, match_distance = self._find_match(
                data, position, table
            )
            if match_length >= MIN_MATCH:
                self._flush_literals(out, literals)
                out.append(0x80 | (match_length - MIN_MATCH))
                out.append(match_distance & 0xFF)
                out.append((match_distance >> 8) & 0xFF)
                end = position + match_length
                while position < end:
                    self._index(data, position, table)
                    position += 1
            else:
                literals.append(data[position])
                self._index(data, position, table)
                position += 1
        self._flush_literals(out, literals)
        return bytes(out)

    def _find_match(self, data: bytes, position: int, table):
        """Best (length, distance) match at ``position``; (0, 0) if none."""
        if position + MIN_MATCH > len(data):
            return 0, 0
        key = data[position : position + MIN_MATCH]
        candidates = table.get(key)
        if not candidates:
            return 0, 0
        best_length = 0
        best_distance = 0
        limit = min(len(data) - position, MAX_MATCH)
        for candidate in reversed(candidates):
            distance = position - candidate
            if distance > MAX_DISTANCE:
                break
            match_length = 0
            while (
                match_length < limit
                and data[candidate + match_length] == data[position + match_length]
            ):
                match_length += 1
            if match_length > best_length:
                best_length = match_length
                best_distance = distance
                if best_length == limit:
                    break
        return best_length, best_distance

    def _index(self, data: bytes, position: int, table) -> None:
        if position + MIN_MATCH > len(data):
            return
        key = data[position : position + MIN_MATCH]
        chain = table.get(key)
        if chain is None:
            table[key] = [position]
        else:
            chain.append(position)
            if len(chain) > self.chain_limit:
                del chain[0]

    @staticmethod
    def _flush_literals(out: bytearray, literals: bytearray) -> None:
        offset = 0
        while offset < len(literals):
            run = literals[offset : offset + MAX_LITERAL_RUN]
            out.append(len(run) - 1)
            out.extend(run)
            offset += len(run)
        literals.clear()

    # -- decompression --------------------------------------------------------

    @staticmethod
    def decompress(blob: bytes) -> bytes:
        """Inverse of :meth:`compress`; validates the token stream."""
        out = bytearray()
        position = 0
        length = len(blob)
        while position < length:
            control = blob[position]
            position += 1
            if control < 0x80:
                run = control + 1
                if position + run > length:
                    raise CompressionError("truncated literal run")
                out.extend(blob[position : position + run])
                position += run
            else:
                if position + 2 > length:
                    raise CompressionError("truncated match token")
                match_length = (control & 0x7F) + MIN_MATCH
                distance = blob[position] | (blob[position + 1] << 8)
                position += 2
                if distance == 0 or distance > len(out):
                    raise CompressionError(
                        f"match distance {distance} outside output "
                        f"({len(out)} bytes so far)"
                    )
                start = len(out) - distance
                for offset in range(match_length):
                    out.append(out[start + offset])
        return bytes(out)


_DEFAULT_CODEC = Lz77Codec()


def compress(data: bytes) -> bytes:
    """Compress with the default codec."""
    return _DEFAULT_CODEC.compress(data)


def decompress(blob: bytes) -> bytes:
    """Decompress with the default codec."""
    return Lz77Codec.decompress(blob)
