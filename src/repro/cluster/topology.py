"""Cluster topology: the rack of home and consolidation hosts (§5.1).

The evaluation simulates a standard 42U rack behind a top-of-rack
10 GigE switch: 30 hosts designated as homes (each assigned 30 VMs) and
a varied number of consolidation hosts.  Every host has the same
hardware; only the role differs, and only compute hosts ever power
their memory servers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.cluster.host import Host, HostRole
from repro.cluster.power import PowerState
from repro.errors import ConfigError
from repro.vm.state import Residency


class Cluster:
    """A rack of identical hosts split into home and consolidation roles.

    Host ids are assigned densely: homes first (``0 .. home_hosts-1``),
    then consolidation hosts.
    """

    def __init__(
        self,
        home_hosts: int,
        consolidation_hosts: int,
        host_capacity_mib: float,
    ) -> None:
        if home_hosts <= 0:
            raise ConfigError("need at least one home host")
        if consolidation_hosts <= 0:
            raise ConfigError("need at least one consolidation host")
        self._hosts: Dict[int, Host] = {}
        next_id = 0
        for _ in range(home_hosts):
            self._hosts[next_id] = Host(
                next_id, HostRole.COMPUTE, host_capacity_mib,
                memory_server_enabled=True,
            )
            next_id += 1
        for _ in range(consolidation_hosts):
            self._hosts[next_id] = Host(
                next_id, HostRole.CONSOLIDATION, host_capacity_mib,
                memory_server_enabled=False,
            )
            next_id += 1
        self.home_host_count = home_hosts
        self.consolidation_host_count = consolidation_hosts
        # Role membership never changes after construction; cache the
        # per-role lists and keep powered counts current through each
        # host's power-state listener so the per-interval aggregate
        # queries are O(1) instead of O(hosts).
        self._home_hosts: List[Host] = [
            h for h in self._hosts.values() if h.role is HostRole.COMPUTE
        ]
        self._consolidation_hosts: List[Host] = [
            h for h in self._hosts.values()
            if h.role is HostRole.CONSOLIDATION
        ]
        self._powered_home = home_hosts
        self._powered_consolidation = consolidation_hosts
        for host in self._hosts.values():
            host.set_power_listener(self._on_power_edge)

    def _on_power_edge(self, host: Host, previous, state) -> None:
        """Host power-state listener: maintain the powered-count index."""
        was_powered = previous is PowerState.POWERED
        now_powered = host.is_powered
        if was_powered == now_powered:
            return
        delta = 1 if now_powered else -1
        if host.role is HostRole.COMPUTE:
            self._powered_home += delta
        else:
            self._powered_consolidation += delta

    # -- lookup -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self) -> Iterator[Host]:
        return iter(self._hosts.values())

    def host(self, host_id: int) -> Host:
        try:
            return self._hosts[host_id]
        except KeyError:
            raise ConfigError(f"no host with id {host_id}")

    @property
    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    @property
    def home_hosts(self) -> List[Host]:
        return list(self._home_hosts)

    @property
    def consolidation_hosts(self) -> List[Host]:
        return list(self._consolidation_hosts)

    # -- aggregate queries ---------------------------------------------------

    def powered_host_count(self) -> int:
        """Hosts currently fully powered (Figure 7's y-axis)."""
        return self._powered_home + self._powered_consolidation

    def powered_home_count(self) -> int:
        return self._powered_home

    def powered_consolidation_count(self) -> int:
        return self._powered_consolidation

    def total_running_vms(self) -> int:
        return sum(host.vm_count for host in self._hosts.values())

    def verify_indexes(self) -> None:
        """Cross-check the powered-count index against a full rescan.

        Used by the debug mode (``REPRO_DEBUG_INDEXES``) and the index
        property battery; raises ``AssertionError`` on drift.
        """
        home = sum(
            1 for host in self._home_hosts if host.is_powered
        )
        consolidation = sum(
            1 for host in self._consolidation_hosts if host.is_powered
        )
        assert home == self._powered_home, (
            f"powered home index drifted: {self._powered_home} vs "
            f"rescanned {home}"
        )
        assert consolidation == self._powered_consolidation, (
            f"powered consolidation index drifted: "
            f"{self._powered_consolidation} vs rescanned {consolidation}"
        )

    def check_invariants(self) -> None:
        """Verify incremental memory accounting against recomputation.

        Called by tests after simulation steps; raises ``AssertionError``
        on drift.
        """
        for host in self._hosts.values():
            recomputed = host.recompute_used_mib()
            drift = abs(recomputed - host.used_mib)
            assert drift < 1e-6 * max(1.0, recomputed) + 1e-6, (
                f"host {host.host_id}: accounted {host.used_mib:.6f} MiB, "
                f"recomputed {recomputed:.6f} MiB"
            )
            full = sum(
                1 for vm in host.vms() if vm.residency is Residency.FULL
            )
            assert full == host.full_vm_count, (
                f"host {host.host_id}: accounted {host.full_vm_count} full "
                f"VMs, recomputed {full}"
            )
            fraction = sum(
                vm.resident_fraction
                for vm in host.vms()
                if vm.residency is Residency.PARTIAL
            )
            assert abs(fraction - host.partial_resident_fraction) < 1e-6, (
                f"host {host.host_id}: partial fraction drifted "
                f"({host.partial_resident_fraction:.9f} vs {fraction:.9f})"
            )

    def __repr__(self) -> str:
        return (
            f"<Cluster {self.home_host_count}+{self.consolidation_host_count} "
            f"hosts, {self.total_running_vms()} VMs, "
            f"{self.powered_host_count()} powered>"
        )
