"""Cluster substrate: hosts, power states, and rack topology.

An Oasis cluster (Figure 3) consists of *compute hosts* — every VM's
original home — and *consolidation hosts* that receive migrated VMs.
Hosts move between powered, suspending, sleeping, and resuming states;
a sleeping compute host keeps serving page requests through its
low-power memory server.
"""

from repro.cluster.power import PowerState
from repro.cluster.host import Host, HostRole
from repro.cluster.topology import Cluster

__all__ = ["PowerState", "Host", "HostRole", "Cluster"]
