"""Host power-state machine.

The paper (§3.1) distinguishes powered, low-power/sleep and in-transit
modes.  We split "in-transit" into its two directions because they have
different durations and power draws (Table 1: suspend 3.1 s at 138.2 W,
resume 2.3 s at 149.2 W).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet

from repro.errors import PowerStateError


class PowerState(enum.Enum):
    """Power mode of a host."""

    POWERED = "powered"
    SUSPENDING = "suspending"
    SLEEPING = "sleeping"
    RESUMING = "resuming"

    @property
    def is_transitional(self) -> bool:
        """True for the in-transit states (§3.1)."""
        return self in (PowerState.SUSPENDING, PowerState.RESUMING)

    @property
    def can_run_vms(self) -> bool:
        """Only a fully powered host can run VMs."""
        return self is PowerState.POWERED


_LEGAL_TRANSITIONS: Dict[PowerState, FrozenSet[PowerState]] = {
    PowerState.POWERED: frozenset({PowerState.SUSPENDING}),
    PowerState.SUSPENDING: frozenset({PowerState.SLEEPING}),
    PowerState.SLEEPING: frozenset({PowerState.RESUMING}),
    # RESUMING -> SLEEPING models a failed wake attempt (the Wake-on-LAN
    # packet is lost or the host hangs and is watchdogged back down);
    # the attempt still pays resume power for its full duration.
    PowerState.RESUMING: frozenset({PowerState.POWERED, PowerState.SLEEPING}),
}


def check_transition(current: PowerState, target: PowerState) -> None:
    """Raise :class:`PowerStateError` unless ``current -> target`` is legal."""
    if target not in _LEGAL_TRANSITIONS[current]:
        raise PowerStateError(
            f"illegal power transition {current.value} -> {target.value}"
        )
