"""The host model: memory accounting, power state, and hosted state.

A host tracks two distinct collections:

* **running VMs** — VMs scheduled on this host; each occupies its
  resident size (full allocation for full VMs, working set for partial
  VMs) of the host's memory capacity;
* **served images** — full memory images of partial VMs that are homed
  here but run elsewhere; these live in the host's DRAM (or on its
  memory-server store once the host sleeps) and are what the low-power
  memory server exports.

Only a host with no running VMs may suspend; served images do not block
sleep — letting the host sleep through remote page requests is exactly
the point of the memory-server design (§3.3).

VM attachment is a *logical* operation: the execution engine may attach
VMs to a host that is still completing its resume (arrivals are planned
while Wake-on-LAN is in flight, §4.1); the engine is responsible for not
scheduling VM execution before the host is powered.  Full/partial counts
and the partial-resident fraction are maintained incrementally, so the
power model can query them in O(1); residency changes of an *attached*
VM must therefore go through :meth:`convert_vm_full_in_place` /
:meth:`grow_partial_vm` rather than mutating the VM directly.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Set

from repro.cluster.power import PowerState, check_transition
from repro.errors import CapacityError, MigrationError, PowerStateError
from repro.vm.machine import VirtualMachine
from repro.vm.state import Residency


class HostRole(enum.Enum):
    """Cluster role (Figure 3)."""

    COMPUTE = "compute"
    CONSOLIDATION = "consolidation"


class Host:
    """One physical server in the cluster."""

    __slots__ = (
        "host_id",
        "role",
        "capacity_mib",
        "_power_state",
        "_power_listener",
        "_vms",
        "_used_mib",
        "_full_count",
        "_partial_fraction",
        "_served_images",
        "memory_server_enabled",
        "memory_server_failed",
    )

    def __init__(
        self,
        host_id: int,
        role: HostRole,
        capacity_mib: float,
        memory_server_enabled: bool = True,
    ) -> None:
        if capacity_mib <= 0.0:
            raise CapacityError(f"host capacity must be positive, got {capacity_mib}")
        self.host_id = host_id
        self.role = role
        self.capacity_mib = capacity_mib
        self._power_state = PowerState.POWERED
        self._power_listener = None
        self._vms: Dict[int, VirtualMachine] = {}
        self._used_mib = 0.0
        self._full_count = 0
        self._partial_fraction = 0.0
        self._served_images: Set[int] = set()
        #: Compute hosts carry a memory server; the evaluation never powers
        #: the ones attached to consolidation hosts (§5.1).
        self.memory_server_enabled = memory_server_enabled
        #: Set by fault injection when the memory server dies; a failed
        #: server draws no power and cannot serve pages, so a sleeping
        #: host with served images must be force-woken.
        self.memory_server_failed = False

    # -- memory accounting ----------------------------------------------

    @property
    def used_mib(self) -> float:
        """Memory occupied by running VMs."""
        return self._used_mib

    @property
    def free_mib(self) -> float:
        return self.capacity_mib - self._used_mib

    def can_fit(self, size_mib: float) -> bool:
        """Whether ``size_mib`` more memory fits on this host."""
        # A small epsilon absorbs float accumulation error.
        return size_mib <= self.free_mib + 1e-9

    def recompute_used_mib(self) -> float:
        """Recompute used memory from first principles (test invariant)."""
        return sum(vm.resident_mib for vm in self._vms.values())

    # -- running VMs -------------------------------------------------------

    @property
    def vm_count(self) -> int:
        return len(self._vms)

    @property
    def vm_ids(self) -> List[int]:
        return list(self._vms)

    def vms(self) -> List[VirtualMachine]:
        return list(self._vms.values())

    def has_vm(self, vm_id: int) -> bool:
        return vm_id in self._vms

    def get_vm(self, vm_id: int) -> VirtualMachine:
        try:
            return self._vms[vm_id]
        except KeyError:
            raise MigrationError(f"VM {vm_id} is not running on host {self.host_id}")

    @property
    def active_vm_count(self) -> int:
        """Recomputed on demand; activity flips between attach/detach."""
        return sum(1 for vm in self._vms.values() if vm.is_active)

    @property
    def full_vm_count(self) -> int:
        return self._full_count

    @property
    def partial_vm_count(self) -> int:
        return len(self._vms) - self._full_count

    @property
    def partial_resident_fraction(self) -> float:
        """Sum over partial VMs of resident/allocated memory (power model)."""
        return self._partial_fraction

    def attach(self, vm: VirtualMachine) -> None:
        """Place a VM on this host, reserving its resident memory.

        The resident size and fit check are computed inline rather than
        through ``vm.resident_mib`` / :meth:`can_fit` — attach/detach sit
        on the migration hot path, and the float expressions here mirror
        those helpers exactly.
        """
        vms = self._vms
        vm_id = vm.vm_id
        if vm_id in vms:
            raise MigrationError(
                f"VM {vm_id} is already on host {self.host_id}"
            )
        full = vm.residency is Residency.FULL
        if full:
            size = vm.memory_mib
        else:
            size = vm.working_set_mib
            if size is None:
                raise MigrationError(f"partial VM {vm_id} has no working set")
        if size > self.capacity_mib - self._used_mib + 1e-9:
            raise CapacityError(
                f"host {self.host_id}: {size:.0f} MiB does not fit "
                f"({self.free_mib:.0f} MiB free)"
            )
        vms[vm_id] = vm
        self._used_mib += size
        if full:
            self._full_count += 1
        else:
            self._partial_fraction += size / vm.memory_mib

    def detach(self, vm_id: int) -> VirtualMachine:
        """Remove a VM from this host, releasing its resident memory."""
        vms = self._vms
        vm = vms.get(vm_id)
        if vm is None:
            raise MigrationError(
                f"VM {vm_id} is not running on host {self.host_id}"
            )
        del vms[vm_id]
        full = vm.residency is Residency.FULL
        if full:
            size = vm.memory_mib
        else:
            size = vm.working_set_mib
            if size is None:
                raise MigrationError(f"partial VM {vm_id} has no working set")
        used = self._used_mib - size
        self._used_mib = used if used > 0.0 else 0.0
        if full:
            self._full_count -= 1
        else:
            fraction = self._partial_fraction - size / vm.memory_mib
            self._partial_fraction = fraction if fraction > 0.0 else 0.0
        return vm

    def convert_vm_full_in_place(self, vm_id: int) -> None:
        """Convert an attached partial VM to full (§3.2 Default policy
        with spare capacity): the remaining image is pulled in and this
        host becomes the VM's new home."""
        vm = self.get_vm(vm_id)
        if vm.residency is not Residency.PARTIAL:
            raise MigrationError(f"VM {vm_id} is not partial")
        old_resident = vm.resident_mib
        old_fraction = vm.resident_fraction
        growth = vm.memory_mib - old_resident
        if not self.can_fit(growth):
            raise CapacityError(
                f"host {self.host_id}: conversion of VM {vm_id} needs "
                f"{growth:.0f} MiB ({self.free_mib:.0f} MiB free)"
            )
        vm.become_full_in_place()
        self._used_mib += growth
        self._full_count += 1
        self._partial_fraction = max(0.0, self._partial_fraction - old_fraction)

    def grow_partial_vm(self, vm_id: int, delta_mib: float) -> None:
        """Grow an attached partial VM's working set (demand faults).

        Raises :class:`CapacityError` when the growth does not fit; the
        caller then falls back to the capacity-exhausted policy.
        """
        vm = self.get_vm(vm_id)
        if vm.residency is not Residency.PARTIAL:
            raise MigrationError(f"VM {vm_id} is not partial")
        if delta_mib < 0.0:
            raise MigrationError("working-set growth must be non-negative")
        if not self.can_fit(delta_mib):
            raise CapacityError(
                f"host {self.host_id}: growth of {delta_mib:.0f} MiB does "
                f"not fit ({self.free_mib:.0f} MiB free)"
            )
        old_resident = vm.resident_mib
        vm.grow_working_set(delta_mib)
        actual = vm.resident_mib - old_resident  # capped at the allocation
        self._used_mib += actual
        self._partial_fraction += actual / vm.memory_mib

    # -- served memory images ------------------------------------------------

    @property
    def served_image_count(self) -> int:
        return len(self._served_images)

    @property
    def served_image_ids(self) -> Set[int]:
        return set(self._served_images)

    def add_served_image(self, vm_id: int) -> None:
        """Record that this host serves the full image of a partial VM."""
        self._served_images.add(vm_id)

    def remove_served_image(self, vm_id: int) -> None:
        """Drop a served image (VM reintegrated, re-homed, or destroyed)."""
        self._served_images.discard(vm_id)

    # -- power state ----------------------------------------------------------

    @property
    def power_state(self) -> PowerState:
        return self._power_state

    @power_state.setter
    def power_state(self, state: PowerState) -> None:
        """Set the power state, notifying the cluster's index listener.

        Transition legality is checked by the ``begin_*``/``complete_*``
        methods, not here — direct assignment stays available for tests
        and setup code that place a host into an arbitrary state.
        """
        previous = self._power_state
        self._power_state = state
        if self._power_listener is not None and state is not previous:
            self._power_listener(self, previous, state)

    def set_power_listener(self, listener) -> None:
        """Register ``listener(host, old_state, new_state)`` for power
        edges; the cluster uses this to keep powered-count indexes hot.
        Pass ``None`` to detach."""
        self._power_listener = listener

    @property
    def is_powered(self) -> bool:
        return self._power_state is PowerState.POWERED

    @property
    def is_sleeping(self) -> bool:
        return self._power_state is PowerState.SLEEPING

    def begin_suspend(self) -> None:
        """Start suspending to RAM; illegal while any VM runs here."""
        if self._vms:
            raise PowerStateError(
                f"host {self.host_id} still runs {len(self._vms)} VM(s); "
                f"cannot suspend"
            )
        check_transition(self.power_state, PowerState.SUSPENDING)
        self.power_state = PowerState.SUSPENDING

    def complete_suspend(self) -> None:
        check_transition(self.power_state, PowerState.SLEEPING)
        self.power_state = PowerState.SLEEPING

    def begin_resume(self) -> None:
        """Start resuming (triggered by Wake-on-LAN from the manager)."""
        check_transition(self.power_state, PowerState.RESUMING)
        self.power_state = PowerState.RESUMING

    def complete_resume(self) -> None:
        check_transition(self.power_state, PowerState.POWERED)
        self.power_state = PowerState.POWERED

    def fail_resume(self) -> None:
        """A resume attempt failed: fall back to sleep (fault injection).

        The attempt paid resume power for its full duration; the caller
        owns retry scheduling and backoff.
        """
        check_transition(self.power_state, PowerState.SLEEPING)
        self.power_state = PowerState.SLEEPING

    # -- memory-server health (fault injection) --------------------------

    def fail_memory_server(self) -> None:
        """Mark this host's memory server as crashed."""
        if not self.memory_server_enabled:
            raise PowerStateError(
                f"host {self.host_id} has no memory server to fail"
            )
        self.memory_server_failed = True

    def repair_memory_server(self) -> None:
        """Repair the memory server (the host woke up; idempotent)."""
        self.memory_server_failed = False

    def __repr__(self) -> str:
        return (
            f"<Host {self.host_id} {self.role.value} {self.power_state.value} "
            f"vms={len(self._vms)} used={self._used_mib:.0f}/"
            f"{self.capacity_mib:.0f} MiB images={len(self._served_images)}>"
        )
