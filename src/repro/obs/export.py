"""Trace exporters: JSONL, Chrome ``trace_event``, and a text timeline.

The JSONL export is byte-stable for a given event list (sorted keys,
compact separators, one record per line), so pinned-seed traces can be
committed as goldens.  The Chrome export produces the subset of the
Trace Event Format that Perfetto / ``chrome://tracing`` consume — one
thread lane per event category, ``B``/``E`` pairs for spans, ``i`` for
instants — and :func:`validate_chrome_trace` checks that shape so CI can
gate exporter output without a browser.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ObservabilityError, TraceFormatError
from repro.obs.events import (
    CAT_FAULT,
    CAT_MIGRATION,
    CAT_POWER,
    PHASE_BEGIN,
    PHASE_END,
    PHASE_INSTANT,
    TraceEvent,
)
from repro.obs.metrics import MetricsRegistry

#: ``phase`` -> Chrome trace_event ``ph`` code.
_CHROME_PHASE = {PHASE_INSTANT: "i", PHASE_BEGIN: "B", PHASE_END: "E"}

#: ``ph`` codes a valid export may contain (M = thread metadata).
_VALID_CHROME_PHASES = frozenset({"i", "B", "E", "M"})


def _dump(record: Mapping[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize events as one compact JSON object per line."""
    lines = [_dump(event.to_dict()) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Write the JSONL export; returns the number of events written."""
    text = events_to_jsonl(events)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n")


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load a JSONL trace back into events (the summarizer's input)."""
    events: List[TraceEvent] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            try:
                events.append(TraceEvent.from_dict(record))
            except ObservabilityError as exc:
                raise TraceFormatError(f"{path}:{lineno}: {exc}") from None
    return events


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def events_to_chrome(events: Sequence[TraceEvent]) -> Dict[str, Any]:
    """Convert events to a Chrome/Perfetto ``trace_event`` document.

    Categories map to thread lanes in first-seen order (deterministic
    for a deterministic event stream); timestamps convert from simulated
    seconds to the format's microseconds.
    """
    lanes: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        tid = lanes.get(event.category)
        if tid is None:
            tid = lanes[event.category] = len(lanes)
            trace_events.append({
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": event.category},
            })
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.category,
            "ph": _CHROME_PHASE[event.phase],
            "ts": event.time_s * 1e6,
            "pid": 0,
            "tid": tid,
            "args": dict(event.args),
        }
        if event.phase == PHASE_INSTANT:
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[TraceEvent], path: str) -> int:
    """Write the Chrome export; returns the number of source events."""
    document = events_to_chrome(events)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_dump(document))
        handle.write("\n")
    return len(events)


def validate_chrome_trace(document: Any) -> int:
    """Check a parsed Chrome trace document against the expected shape.

    Raises :class:`~repro.errors.TraceFormatError` on the first
    violation; returns the number of trace events on success.  Checks
    the subset of the Trace Event Format this exporter emits: a
    ``traceEvents`` list whose entries carry ``name``/``ph``/``pid``/
    ``tid`` (+ non-negative numeric ``ts`` and an ``args`` object for
    non-metadata phases), with balanced ``B``/``E`` spans per lane.
    """
    if not isinstance(document, dict):
        raise TraceFormatError("chrome trace must be a JSON object")
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list):
        raise TraceFormatError("chrome trace lacks a traceEvents list")
    depth: Dict[Any, int] = {}
    for index, record in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(record, dict):
            raise TraceFormatError(f"{where}: not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in record:
                raise TraceFormatError(f"{where}: missing {key!r}")
        phase = record["ph"]
        if phase not in _VALID_CHROME_PHASES:
            raise TraceFormatError(f"{where}: unknown ph {phase!r}")
        if not isinstance(record["name"], str):
            raise TraceFormatError(f"{where}: name is not a string")
        if phase == "M":
            continue
        ts = record.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            raise TraceFormatError(f"{where}: ts is not a number")
        if ts < 0:
            raise TraceFormatError(f"{where}: negative ts {ts}")
        if not isinstance(record.get("args"), dict):
            raise TraceFormatError(f"{where}: args is not an object")
        lane = (record["pid"], record["tid"])
        if phase == "B":
            depth[lane] = depth.get(lane, 0) + 1
        elif phase == "E":
            depth[lane] = depth.get(lane, 0) - 1
            if depth[lane] < 0:
                raise TraceFormatError(
                    f"{where}: E without matching B on lane {lane}"
                )
    open_lanes = sorted(
        (repr(lane) for lane, count in depth.items() if count != 0)
    )
    if open_lanes:
        raise TraceFormatError(f"unbalanced spans on lanes {open_lanes}")
    return len(trace_events)


# ---------------------------------------------------------------------------
# text timeline summary
# ---------------------------------------------------------------------------

def timeline_summary(
    events: Sequence[TraceEvent],
    metrics: Optional[MetricsRegistry] = None,
) -> str:
    """A plain-text digest of a trace: categories, hot spots, faults.

    Deterministic for a given trace (name-sorted tables), so it can be
    asserted in tests and diffed between runs.
    """
    if not events:
        return "empty trace (0 events)"
    lines: List[str] = []
    first_s = events[0].time_s
    last_s = events[-1].time_s
    lines.append(
        f"{len(events)} events over "
        f"[{first_s:.1f} s, {last_s:.1f} s] of simulated time"
    )

    by_category: Dict[str, int] = {}
    by_name: Dict[str, int] = {}
    for event in events:
        if event.phase == PHASE_END:
            continue  # count each span once, at its begin event
        by_category[event.category] = by_category.get(event.category, 0) + 1
        by_name[event.name] = by_name.get(event.name, 0) + 1

    lines.append("")
    lines.append("events per category:")
    for category in sorted(by_category):
        lines.append(f"  {category:<12} {by_category[category]}")

    transitions: Dict[str, int] = {}
    migration_mib = 0.0
    fault_names: Dict[str, int] = {}
    for event in events:
        if event.category == CAT_POWER and event.name == "power.transition":
            edge = f"{event.args.get('from')} -> {event.args.get('to')}"
            transitions[edge] = transitions.get(edge, 0) + 1
        elif event.category == CAT_MIGRATION:
            mib = event.args.get("mib")
            if isinstance(mib, (int, float)):
                migration_mib += mib
        elif event.category == CAT_FAULT:
            fault_names[event.name] = fault_names.get(event.name, 0) + 1

    if transitions:
        lines.append("")
        lines.append("power transitions:")
        for edge in sorted(transitions):
            lines.append(f"  {edge:<24} {transitions[edge]}")
    if migration_mib > 0.0:
        lines.append("")
        lines.append(f"migration traffic: {migration_mib:,.1f} MiB")
    if fault_names:
        lines.append("")
        lines.append("injected faults:")
        for name in sorted(fault_names):
            lines.append(f"  {name:<28} {fault_names[name]}")

    busiest = sorted(by_name.items(), key=lambda item: (-item[1], item[0]))
    lines.append("")
    lines.append("busiest events:")
    for name, count in busiest[:8]:
        lines.append(f"  {name:<28} {count}")

    if metrics is not None and not metrics.is_empty:
        lines.append("")
        lines.append(metrics.render())
    return "\n".join(lines)
