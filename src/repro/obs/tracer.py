"""Tracers: the null default and the recording implementation.

:class:`Tracer` defines the full instrumentation surface as no-ops, so
it doubles as the protocol *and* the zero-overhead default — every
instrumented component accepts ``tracer: Optional[Tracer] = None`` and
substitutes the shared :data:`NULL_TRACER`.  Instrumentation sites that
would pay to *build* their payload (formatting, dict construction)
guard on :attr:`Tracer.enabled` first, so a disabled run does no work
beyond one attribute test.

The tracing contract that keeps traced runs trustworthy:

* tracers never draw randomness and never read wall clocks — a
  :class:`RecordingTracer` stamps events with *simulated* time from the
  clock callable the simulation binds via :meth:`Tracer.set_clock`;
* tracers never mutate simulation state — instrumentation is
  observation only, so enabling tracing cannot perturb a single RNG
  stream or result byte (the differential tests prove it).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.events import (
    PHASE_BEGIN,
    PHASE_END,
    PHASE_INSTANT,
    ArgValue,
    TraceEvent,
)
from repro.obs.metrics import MetricsRegistry


class Tracer:
    """The no-op tracer: the full surface, every method free.

    ``enabled`` is False; hot paths test it before building event
    payloads.  All methods intentionally ignore their arguments.
    """

    #: Whether this tracer records anything; instrumentation sites may
    #: skip payload construction entirely when False.
    enabled: bool = False

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Bind the simulated-time source (e.g. ``lambda: sim.now``)."""

    def event(self, name: str, category: str = "event",
              **args: ArgValue) -> None:
        """Record one instant event at the current simulated time."""

    @contextlib.contextmanager
    def span(self, name: str, category: str = "span",
             **args: ArgValue) -> Iterator[None]:
        """A nested span around a synchronous block (begin/end events)."""
        yield

    def counter(self, name: str, delta: float = 1.0) -> None:
        """Increment a named counter."""

    def gauge(self, name: str, value: float) -> None:
        """Sample a named gauge at the current simulated time."""

    def observe(self, name: str, value: float, weight: float = 1.0) -> None:
        """Add one weighted observation to a named histogram."""


class NullTracer(Tracer):
    """Alias of the no-op base, named for call sites' readability."""


#: The shared default; stateless, so one instance serves every component.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Captures typed events, nested spans, and metrics in memory.

    One tracer serves one simulation run; the run binds the simulated
    clock, and every instrumented layer (simulator kernel, farm, cluster
    manager, fault injector, memory servers) shares this instance, so
    the event list interleaves all of them in emission order — which,
    because simulated time is monotone, is also time order.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.events: List[TraceEvent] = []
        self.metrics = MetricsRegistry()
        self._clock = clock
        self._seq = 0
        #: Open spans as ``(name, category)``, innermost last.
        self._stack: List[Tuple[str, str]] = []

    # -- clock ------------------------------------------------------------

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def now_s(self) -> float:
        """Current simulated time (0.0 before a clock is bound)."""
        return self._clock() if self._clock is not None else 0.0

    # -- events and spans --------------------------------------------------

    def _append(self, name: str, category: str, phase: str, args) -> None:
        self.events.append(
            TraceEvent(
                seq=self._seq,
                time_s=self.now_s(),
                name=name,
                category=category,
                phase=phase,
                args=args,
            )
        )
        self._seq += 1

    def event(self, name: str, category: str = "event",
              **args: ArgValue) -> None:
        self._append(name, category, PHASE_INSTANT, args)

    @contextlib.contextmanager
    def span(self, name: str, category: str = "span",
             **args: ArgValue) -> Iterator[None]:
        self._append(name, category, PHASE_BEGIN, args)
        self._stack.append((name, category))
        try:
            yield
        finally:
            opened = self._stack.pop()
            if opened != (name, category):
                raise ObservabilityError(
                    f"span stack corrupted: closing {(name, category)} "
                    f"but {opened} is innermost"
                )
            self._append(name, category, PHASE_END, {})

    @property
    def open_span_count(self) -> int:
        """Spans entered but not yet exited (0 once a run completes)."""
        return len(self._stack)

    # -- metrics -----------------------------------------------------------

    def counter(self, name: str, delta: float = 1.0) -> None:
        self.metrics.counter(name).inc(delta)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value, self.now_s())

    def observe(self, name: str, value: float, weight: float = 1.0) -> None:
        self.metrics.histogram(name).observe(value, weight)

    def __repr__(self) -> str:
        return (
            f"<RecordingTracer events={len(self.events)} "
            f"open_spans={len(self._stack)}>"
        )
