"""Observability: structured event tracing and a metrics registry.

The simulation layers accept an optional :class:`Tracer` (default: the
zero-overhead :data:`NULL_TRACER`); a :class:`RecordingTracer` captures
typed events — power transitions, migrations with bytes moved, fault
injections, policy decisions, memory-server activity — plus nested
spans and metrics, all stamped with *simulated* time.  Exporters write
JSONL and Chrome ``trace_event`` JSON (open it in Perfetto or
``chrome://tracing``) and render a text timeline summary.

Tracing is observation only: with any tracer, every RNG stream and every
result byte is identical to an untraced run (differential-tested).
"""

from repro.obs.events import (
    CAT_FARM,
    CAT_FAULT,
    CAT_MEMSERVER,
    CAT_MIGRATION,
    CAT_POLICY,
    CAT_POWER,
    CAT_SIM,
    CAT_ZONE,
    PHASE_BEGIN,
    PHASE_END,
    PHASE_INSTANT,
    TraceEvent,
)
from repro.obs.export import (
    events_to_chrome,
    events_to_jsonl,
    read_jsonl,
    timeline_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    TimeWeightedHistogram,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, RecordingTracer, Tracer

__all__ = [
    "TraceEvent",
    "CAT_SIM",
    "CAT_POWER",
    "CAT_MIGRATION",
    "CAT_FAULT",
    "CAT_POLICY",
    "CAT_MEMSERVER",
    "CAT_FARM",
    "CAT_ZONE",
    "PHASE_INSTANT",
    "PHASE_BEGIN",
    "PHASE_END",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "Counter",
    "Gauge",
    "TimeWeightedHistogram",
    "MetricsRegistry",
    "events_to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "events_to_chrome",
    "write_chrome_trace",
    "validate_chrome_trace",
    "timeline_summary",
]
