"""The metrics registry: counters, gauges, time-weighted histograms.

Instruments are created on demand by name and never draw randomness or
wall clocks; gauge samples are stamped with *simulated* time supplied by
the caller.  A :class:`TimeWeightedHistogram` records ``(value, weight)``
observations so distributions over durations — host-sleep seconds,
migration latencies, pages fetched per episode — can be weighted by how
long (or how much) each observation represents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import ObservabilityError


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, delta: float = 1.0) -> None:
        if delta < 0.0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (delta {delta})"
            )
        self.value += delta


@dataclass
class Gauge:
    """A sampled instantaneous value with its simulated-time history."""

    name: str
    value: float = 0.0
    #: ``(time_s, value)`` samples in emission order.
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def set(self, value: float, time_s: float = 0.0) -> None:
        self.value = value
        self.samples.append((time_s, value))


@dataclass
class TimeWeightedHistogram:
    """Weighted observations supporting weighted means and quantiles."""

    name: str
    #: ``(value, weight)`` pairs in emission order.
    observations: List[Tuple[float, float]] = field(default_factory=list)

    def observe(self, value: float, weight: float = 1.0) -> None:
        if weight < 0.0:
            raise ObservabilityError(
                f"histogram {self.name!r} got negative weight {weight}"
            )
        self.observations.append((value, weight))

    @property
    def count(self) -> int:
        return len(self.observations)

    @property
    def total_weight(self) -> float:
        return sum(weight for _value, weight in self.observations)

    def mean(self) -> float:
        """Weight-averaged value; 0.0 with no (or zero-weight) data."""
        total = self.total_weight
        if total <= 0.0:
            return 0.0
        return (
            sum(value * weight for value, weight in self.observations) / total
        )

    def quantile(self, q: float) -> float:
        """Weighted quantile, ``0.0 <= q <= 1.0`` (0.5 = weighted median)."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} outside [0, 1]")
        if not self.observations:
            raise ObservabilityError(
                f"histogram {self.name!r} has no observations"
            )
        ordered = sorted(self.observations)
        total = self.total_weight
        if total <= 0.0:
            return ordered[-1][0]
        target = q * total
        cumulative = 0.0
        for value, weight in ordered:
            cumulative += weight
            if cumulative >= target:
                return value
        return ordered[-1][0]


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, TimeWeightedHistogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> TimeWeightedHistogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = TimeWeightedHistogram(name)
        return instrument

    @property
    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-serializable view of every instrument, name-sorted."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: {
                    "last": self._gauges[name].value,
                    "samples": len(self._gauges[name].samples),
                }
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "total_weight": hist.total_weight,
                    "mean": hist.mean(),
                }
                for name, hist in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """A plain-text report of every instrument (CLI summaries)."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name} = {self._counters[name].value:g}")
        if self._gauges:
            lines.append("gauges:")
            for name in sorted(self._gauges):
                gauge = self._gauges[name]
                lines.append(
                    f"  {name} = {gauge.value:g} "
                    f"({len(gauge.samples)} samples)"
                )
        if self._histograms:
            lines.append("histograms:")
            for name, hist in sorted(self._histograms.items()):
                if hist.count:
                    lines.append(
                        f"  {name}: n={hist.count} mean={hist.mean():.3g} "
                        f"p50={hist.quantile(0.5):.3g} "
                        f"p99={hist.quantile(0.99):.3g}"
                    )
                else:
                    lines.append(f"  {name}: n=0")
        return "\n".join(lines) if lines else "no metrics recorded"
