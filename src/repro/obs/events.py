"""Typed trace events.

A :class:`TraceEvent` is one timestamped observation emitted by an
instrumented component: a power-state transition, a migration with its
bytes moved, an injected fault, a policy decision, or the begin/end
marker of a nested span.  Events carry *simulated* time — the
observability layer never reads wall clocks, so a traced run is exactly
as reproducible as an untraced one.

Event names are dotted and live under a small set of categories; the
constants below are the vocabulary the simulation layers emit and the
summarizer/tests consume.  Argument values are restricted to JSON
scalars so the JSONL export is lossless and byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Union

from repro.errors import ObservabilityError

#: Categories (one Chrome-trace lane each).
CAT_SIM = "sim"
CAT_POWER = "power"
CAT_MIGRATION = "migration"
CAT_FAULT = "fault"
CAT_POLICY = "policy"
CAT_MEMSERVER = "memserver"
CAT_FARM = "farm"
CAT_ZONE = "zone"

#: Span phases of an event (Chrome trace_event ``ph`` analogues).
PHASE_INSTANT = "instant"
PHASE_BEGIN = "begin"
PHASE_END = "end"

_PHASES = (PHASE_INSTANT, PHASE_BEGIN, PHASE_END)

#: JSON-scalar argument types allowed on events.
ArgValue = Union[str, int, float, bool]


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation at a simulated instant."""

    #: Emission order within one tracer (ties on ``time_s`` keep order).
    seq: int
    #: Simulated time of the observation, seconds.
    time_s: float
    #: Dotted event name, e.g. ``"power.transition"``.
    name: str
    #: Category (``CAT_*``); selects the Chrome-trace lane.
    category: str
    #: ``PHASE_INSTANT`` for point events, ``PHASE_BEGIN``/``PHASE_END``
    #: for span boundaries.
    phase: str = PHASE_INSTANT
    #: Structured payload; JSON scalars only.
    args: Dict[str, ArgValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.phase not in _PHASES:
            raise ObservabilityError(
                f"event {self.name!r} has unknown phase {self.phase!r}"
            )
        for key, value in self.args.items():
            if not isinstance(value, (str, int, float, bool)):
                raise ObservabilityError(
                    f"event {self.name!r} arg {key!r} is not a JSON "
                    f"scalar: {value!r}"
                )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view (the JSONL record)."""
        return {
            "seq": self.seq,
            "time_s": self.time_s,
            "name": self.name,
            "cat": self.category,
            "ph": self.phase,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TraceEvent":
        """Rebuild an event from a JSONL record (summarizer input)."""
        try:
            return cls(
                seq=int(record["seq"]),
                time_s=float(record["time_s"]),
                name=str(record["name"]),
                category=str(record["cat"]),
                phase=str(record["ph"]),
                args=dict(record.get("args", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"malformed trace record {record!r}: {exc}"
            ) from None
