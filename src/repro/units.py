"""Shared unit conventions and physical constants.

All of :mod:`repro` uses a single set of unit conventions:

* **time** — seconds, as ``float``, measured from simulation start;
* **memory** — mebibytes (MiB), as ``float`` (a page is 4 KiB);
* **bandwidth** — MiB per second;
* **power** — watts;
* **energy** — joules (helpers convert to watt-hours for reporting).

The constants below capture the hardware parameters reported in the paper
(Table 1 and sections 4.3/5.1): link rates, page geometry, and the trace
interval used by the activity tracker.
"""

from __future__ import annotations

# --- time ----------------------------------------------------------------

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86_400.0

#: The activity tracker samples user input in 5-minute intervals (§5.1).
TRACE_INTERVAL_SECONDS = 300.0

#: Number of 5-minute intervals in one simulated day.
INTERVALS_PER_DAY = int(SECONDS_PER_DAY / TRACE_INTERVAL_SECONDS)

# --- memory ---------------------------------------------------------------

KIB_PER_MIB = 1024.0
MIB_PER_GIB = 1024.0

#: Guest page size, KiB.  x86 pages are 4 KiB.
PAGE_SIZE_KIB = 4.0

#: Pages per MiB of guest memory.
PAGES_PER_MIB = int(KIB_PER_MIB / PAGE_SIZE_KIB)

#: Default VM memory allocation in the evaluation (4 GiB, §5.1).
DEFAULT_VM_MEMORY_MIB = 4.0 * MIB_PER_GIB

#: Partial-VM page-table chunk granularity (§4.2): frames are allocated in
#: 2 MiB chunks to reduce heap fragmentation.
CHUNK_SIZE_MIB = 2.0

# --- network and storage links --------------------------------------------

#: Gigabit Ethernet payload rate, MiB/s (prototype network, §4.4.1).
GIGE_MIB_PER_S = 117.0

#: 10-Gigabit Ethernet payload rate, MiB/s (simulated rack fabric, §5.1).
TEN_GIGE_MIB_PER_S = 1170.0

#: Sustained sequential write rate of the shared SAS drive (§4.3).
SAS_MIB_PER_S = 128.0


def mib_to_gib(mib: float) -> float:
    """Convert mebibytes to gibibytes."""
    return mib / MIB_PER_GIB


def gib_to_mib(gib: float) -> float:
    """Convert gibibytes to mebibytes."""
    return gib * MIB_PER_GIB


def mib_to_pages(mib: float) -> int:
    """Number of whole 4 KiB pages covering ``mib`` mebibytes."""
    return int(round(mib * PAGES_PER_MIB))


def pages_to_mib(pages: int) -> float:
    """Size in MiB of ``pages`` 4 KiB pages."""
    return pages / PAGES_PER_MIB


def joules_to_wh(joules: float) -> float:
    """Convert joules to watt-hours."""
    return joules / 3600.0


def wh_to_joules(wh: float) -> float:
    """Convert watt-hours to joules."""
    return wh * 3600.0


def transfer_seconds(size_mib: float, bandwidth_mib_per_s: float) -> float:
    """Time to move ``size_mib`` over a link of the given bandwidth.

    Raises :class:`ValueError` for a non-positive bandwidth; zero-sized
    transfers take zero time.
    """
    if bandwidth_mib_per_s <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_mib_per_s}")
    if size_mib < 0.0:
        raise ValueError(f"transfer size must be non-negative, got {size_mib}")
    return size_mib / bandwidth_mib_per_s
