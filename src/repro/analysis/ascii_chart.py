"""Plain-text charts for terminals without a plotting stack.

The evaluation figures are time series and CDFs; these renderers make
them legible straight from the CLI (``python -m repro simulate
--chart``) and in examples, with no plotting dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line unicode sparkline of a series.

    Down-samples by averaging when the series is longer than ``width``.
    """
    if not values:
        raise ConfigError("a sparkline needs at least one value")
    series = list(values)
    if width is not None:
        if width < 1:
            raise ConfigError("width must be positive")
        series = _downsample(series, width)
    low = min(series)
    high = max(series)
    span = high - low
    if span <= 0.0:
        return _BARS[1] * len(series)
    out = []
    for value in series:
        index = 1 + int((value - low) / span * (len(_BARS) - 2))
        out.append(_BARS[min(index, len(_BARS) - 1)])
    return "".join(out)


def line_chart(
    values: Sequence[float],
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """A multi-row block chart with a min/max axis annotation."""
    if not values:
        raise ConfigError("a chart needs at least one value")
    if width < 1 or height < 1:
        raise ConfigError("chart dimensions must be positive")
    series = _downsample(list(values), width)
    low = min(series)
    high = max(series)
    span = high - low or 1.0
    # Each column fills rows bottom-up proportionally to its value.
    levels = [
        (value - low) / span * height for value in series
    ]
    rows: List[str] = []
    for row in range(height, 0, -1):
        line = []
        for level in levels:
            if level >= row:
                line.append("█")
            elif level >= row - 0.5:
                line.append("▄")
            else:
                line.append(" ")
        rows.append("".join(line))
    header = f"{label}  max={high:g}" if label else f"max={high:g}"
    footer = f"{'':{len(header) and 0}}min={low:g}"
    return "\n".join([header] + rows + [footer])


def cdf_chart(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    label: str = "",
) -> str:
    """Render CDF points (value, probability) as a horizontal bar list."""
    if not points:
        raise ConfigError("a CDF chart needs points")
    lines = [label] if label else []
    for probability in (0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
        value = _value_at(points, probability)
        bar = "#" * max(1, int(probability * width))
        lines.append(f"p{probability * 100:5.1f} {value:10.2f} |{bar}")
    return "\n".join(lines)


def _value_at(points, probability: float) -> float:
    for value, cumulative in points:
        if cumulative >= probability:
            return value
    return points[-1][0]


def _downsample(series: List[float], width: int) -> List[float]:
    if len(series) <= width:
        return series
    out = []
    for bucket in range(width):
        start = bucket * len(series) // width
        end = max(start + 1, (bucket + 1) * len(series) // width)
        chunk = series[start:end]
        out.append(sum(chunk) / len(chunk))
    return out
