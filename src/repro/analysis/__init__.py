"""Analysis helpers: CDFs, percentiles, time series, and text tables."""

from repro.analysis.cdf import Cdf
from repro.analysis.series import bin_series, moving_average
from repro.analysis.tables import format_table, format_percent
from repro.analysis.ascii_chart import cdf_chart, line_chart, sparkline

__all__ = [
    "Cdf",
    "bin_series",
    "moving_average",
    "format_table",
    "format_percent",
    "cdf_chart",
    "line_chart",
    "sparkline",
]
