"""Empirical cumulative distribution functions (Figures 9 and 11)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigError


class Cdf:
    """An empirical CDF over a sample of real values."""

    def __init__(self, samples: Sequence[float]) -> None:
        if not samples:
            raise ConfigError("a CDF needs at least one sample")
        self._sorted: List[float] = sorted(samples)

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def min(self) -> float:
        return self._sorted[0]

    @property
    def max(self) -> float:
        return self._sorted[-1]

    def probability_at_or_below(self, value: float) -> float:
        """P(X <= value)."""
        lo, hi = 0, len(self._sorted)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._sorted[mid] <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(self._sorted)

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]), nearest-rank."""
        if not 0.0 <= q <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        if q == 0.0:
            return self._sorted[0]
        rank = max(1, int(round(q / 100.0 * len(self._sorted) + 0.5)) - 1)
        return self._sorted[min(rank, len(self._sorted) - 1)]

    def median(self) -> float:
        return self.percentile(50.0)

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """(value, cumulative probability) pairs for plotting/printing.

        Down-samples evenly to at most ``max_points`` points.
        """
        n = len(self._sorted)
        step = max(1, n // max_points)
        result = []
        for index in range(0, n, step):
            result.append((self._sorted[index], (index + 1) / n))
        if result[-1][0] != self._sorted[-1]:
            result.append((self._sorted[-1], 1.0))
        return result
