"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import List, Sequence


def format_percent(fraction: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string."""
    return f"{fraction * 100.0:.{digits}f}%"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned monospace table with a header rule."""
    cells: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, cell in enumerate(row):
            if column < len(widths):
                widths[column] = max(widths[column], len(cell))
            else:
                widths.append(len(cell))
    def render_row(row: Sequence[str]) -> str:
        padded = [
            cell.ljust(widths[column]) for column, cell in enumerate(row)
        ]
        return "  ".join(padded).rstrip()

    lines = [render_row(list(headers))]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)
