"""Time-series utilities for figure reproduction."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigError


def moving_average(values: Sequence[float], window: int) -> List[float]:
    """Centred moving average with shrinking edges."""
    if window < 1:
        raise ConfigError("window must be >= 1")
    half = window // 2
    result = []
    for index in range(len(values)):
        lo = max(0, index - half)
        hi = min(len(values), index + half + 1)
        result.append(sum(values[lo:hi]) / (hi - lo))
    return result


def bin_series(
    times: Sequence[float],
    values: Sequence[float],
    bin_width: float,
) -> List[Tuple[float, float]]:
    """Average ``values`` into time bins of ``bin_width`` seconds.

    Returns (bin start time, mean value) pairs for non-empty bins, in
    time order.
    """
    if len(times) != len(values):
        raise ConfigError("times and values must have equal length")
    if bin_width <= 0.0:
        raise ConfigError("bin width must be positive")
    sums = {}
    counts = {}
    for time, value in zip(times, values):
        key = int(time // bin_width)
        sums[key] = sums.get(key, 0.0) + value
        counts[key] = counts.get(key, 0) + 1
    return [
        (key * bin_width, sums[key] / counts[key]) for key in sorted(sums)
    ]
