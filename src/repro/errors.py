"""Exception hierarchy for :mod:`repro`.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class CapacityError(ReproError):
    """A host was asked to accept more memory than it has available."""


class PowerStateError(ReproError):
    """An operation is illegal in the host's current power state."""


class MigrationError(ReproError):
    """A migration request cannot be carried out."""


class TraceFormatError(ReproError):
    """A trace file or trace record is malformed."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CompressionError(ReproError):
    """A compressed page stream is malformed and cannot be decoded."""


class FaultInjectionError(ReproError):
    """A fault plan or fault profile is inconsistent with the cluster."""


class PageFetchTimeout(ReproError):
    """A demand page fetch from a memory server timed out (injected)."""


class ObservabilityError(ReproError):
    """The tracing/metrics layer was misused (corrupt span stack,
    non-serializable event payload, malformed trace record)."""
