"""Idle-VM page access processes (Figure 1 and Figure 2 inputs).

An idle VM's page traffic has two visible signatures:

* the *unique footprint* curve — cumulative distinct memory touched
  since the idle period began.  Background services (mail polls, cron,
  heartbeats, IM keep-alives) re-reference a core set quickly and then
  keep discovering new pages at a slow, roughly linear rate.  We model
  it as ``unique(t) = core * (1 - exp(-t / tau)) + rate * t``;
* the *request process* — page-fault bursts: background timers fire in
  clusters (a mail poll touches tens of pages back to back), so
  requests arrive in Poisson bursts with geometric sizes.

Profiles are calibrated so one hour of idling reproduces the paper's
unique footprints (desktop 188.2 / web 37.6 / database 30.6 MiB) and the
paper's request statistics (a single database VM sees ~3.9 min mean
inter-request gaps; five database + five web VMs aggregate to ~5.8 s).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError


@dataclass(frozen=True)
class VmProfile:
    """Idle behaviour of one VM type."""

    name: str
    #: Fast-referenced core working set, MiB.
    core_mib: float
    #: Time constant for touching the core, seconds.
    core_tau_s: float
    #: Slow discovery of new pages, MiB per second.
    discovery_mib_per_s: float
    #: Mean gap between page-fault *bursts*, seconds.
    burst_gap_s: float
    #: Mean number of page requests per burst (geometric).
    burst_pages_mean: float

    def __post_init__(self) -> None:
        if self.core_mib < 0.0 or self.discovery_mib_per_s < 0.0:
            raise ConfigError(f"{self.name}: footprint terms must be >= 0")
        if self.core_tau_s <= 0.0 or self.burst_gap_s <= 0.0:
            raise ConfigError(f"{self.name}: time constants must be positive")
        if self.burst_pages_mean < 1.0:
            raise ConfigError(f"{self.name}: bursts contain >= 1 page")

    def unique_mib(self, t_s: float) -> float:
        """Expected unique memory touched after ``t_s`` seconds idle."""
        if t_s < 0.0:
            raise ConfigError("time must be non-negative")
        core = self.core_mib * (1.0 - math.exp(-t_s / self.core_tau_s))
        return core + self.discovery_mib_per_s * t_s

    @property
    def mean_request_gap_s(self) -> float:
        """Mean inter-arrival time between individual page requests."""
        return self.burst_gap_s / self.burst_pages_mean


#: Desktop VM (GNOME + office apps + browser): many background services
#: keep a sizeable core warm; 1 h of idling touches ~188.2 MiB.
DESKTOP_PROFILE = VmProfile(
    name="desktop",
    core_mib=60.0,
    core_tau_s=900.0,
    discovery_mib_per_s=(188.2 - 60.0) / 3600.0,
    burst_gap_s=40.0,
    burst_pages_mean=18.0,
)

#: Web server (RUBiS front end): periodic health checks and log flushes
#: emit near-isolated requests; ~37.6 MiB over an idle hour.  Chattier
#: than the database — one request every ~33 s.
WEB_PROFILE = VmProfile(
    name="web",
    core_mib=14.0,
    core_tau_s=600.0,
    discovery_mib_per_s=(37.6 - 14.0) / 3600.0,
    burst_gap_s=33.1,
    burst_pages_mean=1.0,
)

#: Database server (RUBiS MySQL): ~30.6 MiB over an idle hour; one
#: request roughly every four minutes, giving the paper's 3.9 min mean
#: page-request inter-arrival for a lone database VM.
DATABASE_PROFILE = VmProfile(
    name="database",
    core_mib=12.0,
    core_tau_s=600.0,
    discovery_mib_per_s=(30.6 - 12.0) / 3600.0,
    burst_gap_s=234.0,
    burst_pages_mean=1.0,
)


class IdleAccessModel:
    """Samples page-request arrival times for one idle VM."""

    def __init__(self, profile: VmProfile, rng: random.Random) -> None:
        self.profile = profile
        self._rng = rng

    def request_times(self, horizon_s: float) -> List[float]:
        """Page-request instants over ``[0, horizon_s)``.

        Bursts arrive as a Poisson process with mean gap
        ``profile.burst_gap_s``; each burst contains a geometric number
        of page requests spaced milliseconds apart.
        """
        if horizon_s <= 0.0:
            raise ConfigError("horizon must be positive")
        rng = self._rng
        profile = self.profile
        times: List[float] = []
        t = rng.expovariate(1.0 / profile.burst_gap_s)
        while t < horizon_s:
            pages = self._geometric(profile.burst_pages_mean)
            for index in range(pages):
                instant = t + index * 0.002
                if instant < horizon_s:
                    times.append(instant)
            t += rng.expovariate(1.0 / profile.burst_gap_s)
        return times

    def unique_curve(self, horizon_s: float, step_s: float = 60.0):
        """(time, expected unique MiB) samples of the footprint curve."""
        if step_s <= 0.0:
            raise ConfigError("step must be positive")
        samples = []
        t = 0.0
        while t <= horizon_s:
            samples.append((t, self.profile.unique_mib(t)))
            t += step_s
        return samples

    def _geometric(self, mean: float) -> int:
        success = 1.0 / mean
        count = 1
        while self._rng.random() > success:
            count += 1
        return count


def merge_request_streams(streams: List[List[float]]) -> List[float]:
    """Merge per-VM request instants into one sorted aggregate stream."""
    merged: List[float] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort()
    return merged


def mean_interarrival_s(times: List[float]) -> float:
    """Mean gap between consecutive request instants."""
    if len(times) < 2:
        raise ConfigError("need at least two requests")
    return (times[-1] - times[0]) / (len(times) - 1)
