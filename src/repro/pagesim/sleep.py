"""Sleep-opportunity analysis (Figure 2).

Without a low-power memory server, the home host itself must wake for
every page request: the desktop-era design (Jettison) resumes the host,
serves the request, and suspends again.  Given a request stream and the
host's transition times (Table 1: suspend 3.1 s, resume 2.3 s), this
module computes how much of the horizon the host can actually spend
asleep — which collapses once gaps approach the transition round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.energy.profile import HostPowerProfile
from repro.errors import ConfigError


@dataclass(frozen=True)
class SleepPolicy:
    """How eagerly the host sleeps between requests."""

    #: Time the host stays awake after serving a request before it
    #: suspends again (covers request batching and OS settle time).
    linger_s: float = 1.0
    host: HostPowerProfile = HostPowerProfile()

    def __post_init__(self) -> None:
        if self.linger_s < 0.0:
            raise ConfigError("linger must be non-negative")

    @property
    def minimum_useful_gap_s(self) -> float:
        """Shortest request gap that allows any sleep at all."""
        return self.linger_s + self.host.suspend_s + self.host.resume_s


@dataclass(frozen=True)
class SleepAnalysis:
    """Outcome of analysing one request stream."""

    horizon_s: float
    requests: int
    mean_interarrival_s: float
    sleep_s: float
    transitions: int
    host: HostPowerProfile = HostPowerProfile()

    @property
    def sleep_fraction(self) -> float:
        return self.sleep_s / self.horizon_s

    @property
    def energy_saving_fraction(self) -> float:
        """Energy saved versus staying idle-powered the whole horizon.

        This is the number that collapses for co-located VMs: even when
        some nominal sleep time remains between requests, each cycle
        pays the suspend/resume transitions (which draw *more* than
        idle), so frequent wake-ups erase — or invert — the savings.
        """
        host = self.host
        baseline = host.idle_w * self.horizon_s
        suspends = self.transitions / 2
        actual = (
            host.idle_w * (self.horizon_s - self.sleep_s
                           - suspends * host.transition_round_trip_s)
            + host.sleep_w * self.sleep_s
            + suspends * (host.suspend_w * host.suspend_s
                          + host.resume_w * host.resume_s)
        )
        return 1.0 - actual / baseline

    def __str__(self) -> str:
        return (
            f"{self.requests} requests over {self.horizon_s:.0f} s "
            f"(mean gap {self.mean_interarrival_s:.1f} s) -> "
            f"sleep {self.sleep_fraction:.1%}, {self.transitions} "
            f"transitions, energy saving {self.energy_saving_fraction:.1%}"
        )


def analyze_sleep(
    request_times: List[float],
    horizon_s: float,
    policy: SleepPolicy = SleepPolicy(),
) -> SleepAnalysis:
    """Compute achievable sleep for a host that wakes per request.

    The host must be awake at each request instant.  In a gap ``g``
    between servicing one request and the next, it can sleep for
    ``g - linger - suspend - resume`` seconds (never negative).
    """
    if horizon_s <= 0.0:
        raise ConfigError("horizon must be positive")
    times = sorted(t for t in request_times if 0.0 <= t <= horizon_s)
    overhead = policy.minimum_useful_gap_s
    sleep_s = 0.0
    transitions = 0
    previous = 0.0
    for t in times + [horizon_s]:
        gap = t - previous
        if gap > overhead:
            sleep_s += gap - overhead
            transitions += 2  # one suspend + one resume
        previous = t
    if len(times) >= 2:
        mean_gap = (times[-1] - times[0]) / (len(times) - 1)
    else:
        mean_gap = horizon_s
    return SleepAnalysis(
        horizon_s=horizon_s,
        requests=len(times),
        mean_interarrival_s=mean_gap,
        sleep_s=sleep_s,
        transitions=transitions,
        host=policy.host,
    )
