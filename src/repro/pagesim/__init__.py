"""Page-level idle-VM behaviour (§2 of the paper).

Two motivating measurements drive Oasis' design, and this package
reproduces both:

* **Figure 1** — idle VMs touch only a small, slowly-growing fraction of
  their memory: 188.2 MiB (desktop), 37.6 MiB (web), 30.6 MiB (database)
  out of 4 GiB over one idle hour;
* **Figure 2** — page-request streams from many co-located partial VMs
  aggregate into inter-arrival gaps (~5.8 s for ten VMs) shorter than a
  server's suspend/resume round trip, erasing its sleep opportunities,
  while a single VM (~3.9 min gaps) leaves plenty.
"""

from repro.pagesim.access import (
    IdleAccessModel,
    VmProfile,
    DESKTOP_PROFILE,
    WEB_PROFILE,
    DATABASE_PROFILE,
    merge_request_streams,
    mean_interarrival_s,
)
from repro.pagesim.sleep import SleepPolicy, SleepAnalysis, analyze_sleep

__all__ = [
    "IdleAccessModel",
    "VmProfile",
    "DESKTOP_PROFILE",
    "WEB_PROFILE",
    "DATABASE_PROFILE",
    "merge_request_streams",
    "mean_interarrival_s",
    "SleepPolicy",
    "SleepAnalysis",
    "analyze_sleep",
]
