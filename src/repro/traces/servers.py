"""Server-workload activity traces (§1 motivation, §5.6 generality).

The paper motivates Oasis with cloud services that must stay always-on
and network-present — Hadoop, Elasticsearch, Zookeeper members sending
heartbeats, VoIP endpoints, replication daemons — yet are idle almost
all the time, and argues (§5.6) that such server VMs should consolidate
at least as well as desktops because their idle working sets are
smaller.  This module generates activity traces for that world:

* **always-on service members** — idle at the trace level (heartbeats
  do not make a VM *active* in the §3.1 sense), with rare activity
  bursts when they field real load;
* **batch workers** — idle except during scheduled windows (nightly
  ETL, hourly compactions);
* **front-ends** — diurnal request-driven activity, busier in business
  hours but far smoother than desktop keyboard traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.traces.model import DayType, UserDayTrace
from repro.traces.sampler import TraceEnsemble
from repro.units import INTERVALS_PER_DAY

_INTERVALS_PER_HOUR = INTERVALS_PER_DAY // 24


@dataclass(frozen=True)
class ServerProfile:
    """Activity behaviour of one server-VM class."""

    name: str
    #: Probability that any given interval starts an unscheduled
    #: activity burst (real queries hitting a mostly-idle member).
    burst_start_probability: float
    #: Mean burst length, intervals (geometric).
    burst_mean_intervals: float
    #: Scheduled busy windows as (start hour, end hour) pairs.
    busy_windows_h: Tuple[Tuple[float, float], ...] = ()
    #: Activity duty cycle inside a busy window.
    window_duty_cycle: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_start_probability <= 1.0:
            raise ConfigError(f"{self.name}: burst probability out of range")
        if self.burst_mean_intervals < 1.0:
            raise ConfigError(f"{self.name}: bursts last >= 1 interval")
        if not 0.0 <= self.window_duty_cycle <= 1.0:
            raise ConfigError(f"{self.name}: duty cycle out of range")
        for start, end in self.busy_windows_h:
            if not 0.0 <= start < end <= 24.0:
                raise ConfigError(
                    f"{self.name}: bad busy window ({start}, {end})"
                )


#: A cluster member that exists to hold membership: heartbeats only,
#: a real burst of work a couple of times a day.
SERVICE_MEMBER = ServerProfile(
    name="service-member",
    burst_start_probability=0.004,
    burst_mean_intervals=3.0,
)

#: A nightly batch worker: dead quiet except its processing window.
BATCH_WORKER = ServerProfile(
    name="batch-worker",
    burst_start_probability=0.001,
    burst_mean_intervals=2.0,
    busy_windows_h=((1.0, 4.0),),
    window_duty_cycle=0.9,
)

#: A request-driven front end: diurnal load, active much of the
#: business day, sparse at night.
FRONT_END = ServerProfile(
    name="front-end",
    burst_start_probability=0.01,
    burst_mean_intervals=2.0,
    busy_windows_h=((9.0, 18.0),),
    window_duty_cycle=0.55,
)


def generate_server_trace(
    user_id: int, profile: ServerProfile, rng: random.Random
) -> UserDayTrace:
    """One server VM's day under the given profile."""
    bits = [0] * INTERVALS_PER_DAY
    for start_h, end_h in profile.busy_windows_h:
        for interval in range(
            int(start_h * _INTERVALS_PER_HOUR),
            int(end_h * _INTERVALS_PER_HOUR),
        ):
            if rng.random() < profile.window_duty_cycle:
                bits[interval] = 1
    index = 0
    while index < INTERVALS_PER_DAY:
        if rng.random() < profile.burst_start_probability:
            length = 1
            while rng.random() > 1.0 / profile.burst_mean_intervals:
                length += 1
            for offset in range(length):
                if index + offset < INTERVALS_PER_DAY:
                    bits[index + offset] = 1
            index += length
        else:
            index += 1
    return UserDayTrace.from_bits(user_id, DayType.WEEKDAY, bits)


def generate_server_ensemble(
    mix: Dict[ServerProfile, int], seed: int
) -> TraceEnsemble:
    """A server-farm population from a profile mix.

    ``mix`` maps profiles to VM counts; VMs are laid out profile by
    profile with consecutive ids (so whole home hosts tend to share a
    class, as real deployments rack them).
    """
    if not mix or not any(count > 0 for count in mix.values()):
        raise ConfigError("the server mix is empty")
    rng = random.Random(seed)
    traces: List[UserDayTrace] = []
    for profile, count in mix.items():
        if count < 0:
            raise ConfigError(f"{profile.name}: negative count")
        for _ in range(count):
            traces.append(generate_server_trace(len(traces), profile, rng))
    return TraceEnsemble(DayType.WEEKDAY, tuple(traces))
