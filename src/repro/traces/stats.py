"""Aggregate statistics over trace ensembles.

These are the quantities the paper reports about its trace population and
that our synthetic generator is calibrated against (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.traces.sampler import TraceEnsemble, partition_users
from repro.units import INTERVALS_PER_DAY

_HOURS_PER_INTERVAL = 24.0 / INTERVALS_PER_DAY


@dataclass(frozen=True)
class EnsembleStats:
    """Summary statistics of one trace ensemble."""

    users: int
    mean_active_fraction: float
    peak_concurrent: int
    peak_concurrent_fraction: float
    peak_hour: float
    trough_hour: float
    all_idle_fraction_per_30: float
    mean_transitions_per_user: float

    def __str__(self) -> str:
        return (
            f"users={self.users} "
            f"mean_active={self.mean_active_fraction:.1%} "
            f"peak={self.peak_concurrent} ({self.peak_concurrent_fraction:.1%}) "
            f"@ {self.peak_hour:.2f} h, trough @ {self.trough_hour:.2f} h, "
            f"all-idle(30)={self.all_idle_fraction_per_30:.1%}, "
            f"transitions/user={self.mean_transitions_per_user:.1f}"
        )


def concurrency_series(ensemble: TraceEnsemble) -> List[int]:
    """Alias for :meth:`TraceEnsemble.concurrent_active` (series form)."""
    return ensemble.concurrent_active()


def all_idle_fraction(groups) -> float:
    """Fraction of intervals during which *every* user of a group is idle,
    averaged over the supplied groups.

    With groups of 30 this is the paper's "all of the VMs assigned to a
    home host are simultaneously idle only 13% of the time" statistic.
    """
    if not groups:
        raise ValueError("need at least one group")
    total = 0.0
    for group in groups:
        idle_intervals = 0
        for interval in range(INTERVALS_PER_DAY):
            if not any(trace.intervals[interval] for trace in group):
                idle_intervals += 1
        total += idle_intervals / INTERVALS_PER_DAY
    return total / len(groups)


def smoothed_trough_hour(counts: List[int], window: int = 12) -> float:
    """Hour of day at the minimum of a smoothed concurrency series.

    A centred moving average (default one hour wide) removes single-interval
    noise before locating the trough, mirroring how one reads Figure 7.
    """
    smoothed = []
    half = window // 2
    for index in range(len(counts)):
        lo = max(0, index - half)
        hi = min(len(counts), index + half + 1)
        smoothed.append(sum(counts[lo:hi]) / (hi - lo))
    trough_index = min(range(len(smoothed)), key=smoothed.__getitem__)
    return trough_index * _HOURS_PER_INTERVAL


def compute_ensemble_stats(
    ensemble: TraceEnsemble, host_group_size: int = 30
) -> EnsembleStats:
    """Compute the calibration statistics for one ensemble."""
    counts = ensemble.concurrent_active()
    peak = max(counts)
    peak_index = counts.index(peak)
    users = len(ensemble)
    groups = partition_users(ensemble, host_group_size)
    full_groups = [group for group in groups if len(group) == host_group_size]
    mean_active = sum(trace.active_fraction for trace in ensemble) / users
    transitions = sum(trace.transitions for trace in ensemble) / users
    return EnsembleStats(
        users=users,
        mean_active_fraction=mean_active,
        peak_concurrent=peak,
        peak_concurrent_fraction=peak / users,
        peak_hour=peak_index * _HOURS_PER_INTERVAL,
        trough_hour=smoothed_trough_hour(counts),
        all_idle_fraction_per_30=all_idle_fraction(full_groups or groups),
        mean_transitions_per_user=transitions,
    )
