"""User activity traces.

The paper drives its simulation with keyboard/mouse activity traces of 22
researchers collected over four months (2086 user-days), resampled into
5-minute active/idle intervals and aligned into single simulated days of
900 users.  Those traces are not public, so this package provides:

* :class:`~repro.traces.model.UserDayTrace` — one user-day as 288
  five-minute active/idle intervals;
* :class:`~repro.traces.generator.SyntheticTraceGenerator` — a calibrated
  diurnal model that produces weekday and weekend user-days whose ensemble
  statistics match everything the paper reports about its traces (peak
  concurrency, diurnal shape, per-host all-idle fraction — see DESIGN.md);
* ensemble sampling, aggregate statistics, and a simple file format so
  real traces can be substituted if available.
"""

from repro.traces.model import DayType, UserDayTrace
from repro.traces.edges import ActivityEdgeSchedule
from repro.traces.generator import SyntheticTraceGenerator, TraceGeneratorConfig
from repro.traces.sampler import TraceEnsemble, generate_ensemble
from repro.traces.stats import EnsembleStats, compute_ensemble_stats
from repro.traces.io import (
    read_traces_csv,
    read_traces_json,
    write_traces_csv,
    write_traces_json,
)

__all__ = [
    "ActivityEdgeSchedule",
    "DayType",
    "UserDayTrace",
    "SyntheticTraceGenerator",
    "TraceGeneratorConfig",
    "TraceEnsemble",
    "generate_ensemble",
    "EnsembleStats",
    "compute_ensemble_stats",
    "read_traces_csv",
    "read_traces_json",
    "write_traces_csv",
    "write_traces_json",
]
