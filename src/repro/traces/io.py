"""Trace file I/O.

Two interchangeable formats so real trace archives can be dropped in as
a replacement for the synthetic generator:

* **CSV** — one row per user-day:

  .. code-block:: text

      user_id,day_type,intervals
      0,weekday,000011100...   # 288 characters of 0/1

* **JSON** — ``{"traces": [{"user_id": 0, "day_type": "weekday",
  "intervals": "000111..."}]}``.

The ``intervals`` field is one character per 5-minute interval.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Union

from repro.errors import TraceFormatError
from repro.traces.model import DayType, UserDayTrace
from repro.traces.sampler import TraceEnsemble
from repro.units import INTERVALS_PER_DAY

_PathLike = Union[str, Path]


def write_traces_csv(path: _PathLike, traces: List[UserDayTrace]) -> None:
    """Write user-day traces to ``path`` in the CSV format above."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user_id", "day_type", "intervals"])
        for trace in traces:
            bits = "".join("1" if active else "0" for active in trace.intervals)
            writer.writerow([trace.user_id, trace.day_type.value, bits])


def read_traces_csv(path: _PathLike) -> List[UserDayTrace]:
    """Read user-day traces from a CSV file written by :func:`write_traces_csv`."""
    traces: List[UserDayTrace] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"user_id", "day_type", "intervals"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise TraceFormatError(
                f"{path}: header must contain columns {sorted(required)}"
            )
        for row_number, row in enumerate(reader, start=2):
            traces.append(_parse_row(path, row_number, row))
    return traces


def read_ensemble_csv(path: _PathLike) -> TraceEnsemble:
    """Read a CSV of traces that all share one day type, as an ensemble."""
    traces = read_traces_csv(path)
    if not traces:
        raise TraceFormatError(f"{path}: no traces found")
    day_type = traces[0].day_type
    return TraceEnsemble(day_type, tuple(traces))


def write_traces_json(path: _PathLike, traces: List[UserDayTrace]) -> None:
    """Write user-day traces to ``path`` in the JSON format above."""
    payload = {
        "traces": [
            {
                "user_id": trace.user_id,
                "day_type": trace.day_type.value,
                "intervals": "".join(
                    "1" if active else "0" for active in trace.intervals
                ),
            }
            for trace in traces
        ]
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)


def read_traces_json(path: _PathLike) -> List[UserDayTrace]:
    """Read user-day traces from a JSON file."""
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise TraceFormatError(f"{path}: invalid JSON ({error})")
    records = payload.get("traces") if isinstance(payload, dict) else None
    if not isinstance(records, list):
        raise TraceFormatError(f"{path}: expected a top-level 'traces' list")
    traces: List[UserDayTrace] = []
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            raise TraceFormatError(f"{path}: trace {index} is not an object")
        traces.append(_parse_row(path, index, record))
    return traces


def _parse_row(path: _PathLike, row_number: int, row) -> UserDayTrace:
    try:
        user_id = int(row["user_id"])
    except (TypeError, ValueError):
        raise TraceFormatError(
            f"{path}:{row_number}: bad user_id {row.get('user_id')!r}"
        )
    try:
        day_type = DayType(row["day_type"])
    except (KeyError, ValueError):
        raise TraceFormatError(
            f"{path}:{row_number}: bad day_type {row.get('day_type')!r}"
        )
    bits = row.get("intervals") or ""
    if len(bits) != INTERVALS_PER_DAY or set(bits) - {"0", "1"}:
        raise TraceFormatError(
            f"{path}:{row_number}: intervals must be {INTERVALS_PER_DAY} "
            f"characters of 0/1"
        )
    return UserDayTrace.from_bits(user_id, day_type, [int(bit) for bit in bits])
