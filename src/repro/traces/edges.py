"""Activity edge compilation: turn interval traces into change events.

The farm simulation's interval handler originally re-read every VM's
activity bit every five simulated minutes — O(V) work per interval even
when nobody's state changed.  An :class:`ActivityEdgeSchedule` compiles
an ensemble once into the *transitions*: per VM, the intervals at which
its activity flips, and per interval, the list of VMs that flip there.
The interval handler then touches only the flipping VMs (O(edges) per
interval); a typical user-day has a handful of active episodes, so the
edge count is a small multiple of the VM count rather than ``V × 288``.

Ordering contract (load-bearing for byte-identical replay): within each
interval the edge list is in ascending ``vm_id`` order — exactly the
order the eager per-VM scan visited newly-flipped VMs — so activation
jitter draws and delay-sample appends replay in the historical order.
Every trace implicitly starts idle (interval ``-1`` is inactive), which
matches the simulation's initial VM state.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.traces.model import UserDayTrace
from repro.units import INTERVALS_PER_DAY

__all__ = ["ActivityEdgeSchedule"]


class ActivityEdgeSchedule:
    """Compiled activity transitions for one aligned trace ensemble."""

    __slots__ = ("vm_count", "by_interval", "by_vm")

    def __init__(
        self,
        vm_count: int,
        by_interval: List[List[Tuple[int, bool]]],
        by_vm: List[Tuple[Tuple[int, bool], ...]],
    ) -> None:
        #: Number of VMs (traces) the schedule was compiled from.
        self.vm_count = vm_count
        #: ``by_interval[i]`` — ``(vm_id, active)`` flips at interval ``i``,
        #: in ascending ``vm_id`` order.
        self.by_interval = by_interval
        #: ``by_vm[vm_id]`` — ``(interval, active)`` flips for one VM,
        #: in ascending interval order.
        self.by_vm = by_vm

    @classmethod
    def compile(
        cls, traces: Iterable[UserDayTrace]
    ) -> "ActivityEdgeSchedule":
        """Compile an ensemble (or any iterable of aligned user-days).

        The ``vm_id`` of each trace is its position in the iterable —
        the same convention :class:`repro.farm.FarmSimulation` uses to
        pair traces with VMs.
        """
        by_interval: List[List[Tuple[int, bool]]] = [
            [] for _ in range(INTERVALS_PER_DAY)
        ]
        by_vm: List[Tuple[Tuple[int, bool], ...]] = []
        vm_count = 0
        for vm_id, trace in enumerate(traces):
            vm_count += 1
            vm_edges: List[Tuple[int, bool]] = []
            previous = False
            for index, active in enumerate(trace.intervals):
                if active != previous:
                    previous = active
                    vm_edges.append((index, active))
                    by_interval[index].append((vm_id, active))
            by_vm.append(tuple(vm_edges))
        return cls(vm_count, by_interval, by_vm)

    @property
    def edge_count(self) -> int:
        """Total number of activity flips across the whole ensemble."""
        return sum(len(edges) for edges in self.by_vm)

    def activity_at(self, vm_id: int, index: int) -> bool:
        """Reconstruct one VM's activity at ``index`` from its edges
        (reference implementation for differential tests)."""
        active = False
        for edge_index, edge_active in self.by_vm[vm_id]:
            if edge_index > index:
                break
            active = edge_active
        return active

    def __repr__(self) -> str:
        return (
            f"<ActivityEdgeSchedule vms={self.vm_count} "
            f"edges={self.edge_count}>"
        )
