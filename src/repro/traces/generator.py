"""Synthetic diurnal user-day generator.

The generator models an office user's day as a *presence session* (arrive
in the morning, leave in the evening, optionally step out for lunch)
during which activity alternates between active bursts and idle gaps,
plus sparse background activity outside the session (researchers who poke
their machines at night).  Weekends replace the presence session with a
small number of short sessions occurring with low probability.

Default parameters were calibrated so the generated ensemble matches the
aggregate statistics the paper reports for its real traces (§5.1-5.2):

* weekday concurrent activity peaks in the early afternoon, with a peak
  below ~46% of users active simultaneously;
* the trough falls in the early morning (around 6:30 am);
* a group of 30 weekday users is simultaneously idle ~13% of the time;
* weekends show much lower activity.

``tests/test_traces_calibration.py`` asserts these targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError
from repro.traces.model import DayType, UserDayTrace
from repro.units import INTERVALS_PER_DAY

_HOURS_PER_INTERVAL = 24.0 / INTERVALS_PER_DAY


@dataclass(frozen=True)
class BurstModel:
    """Alternating active-burst / idle-gap process within a session.

    Run lengths are geometric; ``active_mean_intervals`` and
    ``idle_mean_intervals`` give the mean lengths in 5-minute intervals.
    """

    active_mean_intervals: float = 2.1
    idle_mean_intervals: float = 2.6

    def __post_init__(self) -> None:
        if self.active_mean_intervals < 1.0 or self.idle_mean_intervals < 1.0:
            raise ConfigError("burst run means must be >= 1 interval")

    @property
    def duty_cycle(self) -> float:
        """Long-run fraction of session intervals that are active."""
        total = self.active_mean_intervals + self.idle_mean_intervals
        return self.active_mean_intervals / total

    def sample_run(self, active: bool, rng: random.Random) -> int:
        """Sample one run length (in intervals) for the given state."""
        mean = self.active_mean_intervals if active else self.idle_mean_intervals
        # Geometric with support {1, 2, ...} and the requested mean.
        success = 1.0 / mean
        length = 1
        while rng.random() > success:
            length += 1
        return length


@dataclass(frozen=True)
class TraceGeneratorConfig:
    """Tunable parameters of the synthetic diurnal model.

    Times are hours-of-day as floats (e.g. ``9.5`` is 9:30 am); durations
    are hours.
    """

    # -- weekday presence session --------------------------------------
    weekday_absence_probability: float = 0.12
    arrival_mean_h: float = 9.5
    arrival_std_h: float = 1.0
    departure_mean_h: float = 18.1
    departure_std_h: float = 1.4
    lunch_probability: float = 0.80
    lunch_start_mean_h: float = 12.3
    lunch_start_std_h: float = 0.4
    lunch_duration_mean_h: float = 0.75
    lunch_duration_std_h: float = 0.25
    weekday_bursts: BurstModel = field(default_factory=BurstModel)

    # -- weekend sessions ------------------------------------------------
    weekend_session_probability: float = 0.45
    weekend_max_sessions: int = 2
    weekend_session_start_low_h: float = 9.0
    weekend_session_start_high_h: float = 21.0
    weekend_session_duration_mean_h: float = 1.6
    weekend_session_duration_std_h: float = 1.0
    weekend_bursts: BurstModel = field(
        default_factory=lambda: BurstModel(
            active_mean_intervals=2.2, idle_mean_intervals=2.4
        )
    )

    # -- background (out-of-session) activity ----------------------------
    #: Marginal probability that a given out-of-session interval starts a
    #: background burst (e-mail check, remote login, etc.).
    weekday_background_start_probability: float = 0.028
    weekend_background_start_probability: float = 0.012
    background_burst_mean_intervals: float = 2.0
    #: Hour-of-day multipliers on the background start probability: the
    #: real traces are quietest just before dawn (the Figure 7 trough
    #: sits at ~6:30 am) and busier in the evening than deep at night.
    background_evening_factor: float = 1.5   # 18:00 - 23:00
    background_night_factor: float = 0.8     # 23:00 - 05:00
    background_predawn_factor: float = 0.35  # 05:00 - 08:00

    def __post_init__(self) -> None:
        for name in (
            "weekday_absence_probability",
            "lunch_probability",
            "weekend_session_probability",
            "weekday_background_start_probability",
            "weekend_background_start_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {value}")
        if self.arrival_mean_h >= self.departure_mean_h:
            raise ConfigError("mean arrival must precede mean departure")
        if self.weekend_max_sessions < 1:
            raise ConfigError("weekend_max_sessions must be >= 1")
        if self.background_burst_mean_intervals < 1.0:
            raise ConfigError("background_burst_mean_intervals must be >= 1")
        for name in (
            "background_evening_factor",
            "background_night_factor",
            "background_predawn_factor",
        ):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be non-negative")

    def background_weight(self, hour: float) -> float:
        """Hour-of-day multiplier on background activity."""
        if 18.0 <= hour < 23.0:
            return self.background_evening_factor
        if hour >= 23.0 or hour < 5.0:
            return self.background_night_factor
        if 5.0 <= hour < 8.0:
            return self.background_predawn_factor
        return 1.0


class SyntheticTraceGenerator:
    """Generates :class:`UserDayTrace` objects from the diurnal model."""

    def __init__(
        self,
        config: TraceGeneratorConfig = TraceGeneratorConfig(),
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config
        self._rng = rng if rng is not None else random.Random(0)

    # -- public API -----------------------------------------------------

    def generate(self, user_id: int, day_type: DayType) -> UserDayTrace:
        """Generate one synthetic user-day of the given type."""
        if day_type is DayType.WEEKDAY:
            bits = self._weekday_bits()
        else:
            bits = self._weekend_bits()
        return UserDayTrace.from_bits(user_id, day_type, bits)

    def generate_many(
        self, count: int, day_type: DayType, first_user_id: int = 0
    ) -> List[UserDayTrace]:
        """Generate ``count`` user-days with consecutive user ids."""
        return [
            self.generate(first_user_id + offset, day_type)
            for offset in range(count)
        ]

    # -- weekday model ----------------------------------------------------

    def _weekday_bits(self) -> List[int]:
        rng = self._rng
        config = self.config
        bits = [0] * INTERVALS_PER_DAY
        self._add_background(
            bits, config.weekday_background_start_probability
        )
        if rng.random() < config.weekday_absence_probability:
            return bits

        arrival = self._clamped_gauss(
            config.arrival_mean_h, config.arrival_std_h, 5.5, 12.5
        )
        departure = self._clamped_gauss(
            config.departure_mean_h, config.departure_std_h, arrival + 2.0, 23.5
        )
        lunch_span = None
        if rng.random() < config.lunch_probability:
            lunch_start = self._clamped_gauss(
                config.lunch_start_mean_h, config.lunch_start_std_h, 11.0, 14.0
            )
            lunch_length = self._clamped_gauss(
                config.lunch_duration_mean_h,
                config.lunch_duration_std_h,
                0.25,
                1.5,
            )
            lunch_span = (lunch_start, min(lunch_start + lunch_length, departure))

        first = self._hour_to_interval(arrival)
        last = self._hour_to_interval(departure)
        in_lunch = self._interval_predicate(lunch_span)
        self._fill_bursts(
            bits, first, last, config.weekday_bursts, skip=in_lunch
        )
        return bits

    # -- weekend model ----------------------------------------------------

    def _weekend_bits(self) -> List[int]:
        rng = self._rng
        config = self.config
        bits = [0] * INTERVALS_PER_DAY
        self._add_background(
            bits, config.weekend_background_start_probability
        )
        if rng.random() >= config.weekend_session_probability:
            return bits
        sessions = rng.randint(1, config.weekend_max_sessions)
        for _ in range(sessions):
            start = rng.uniform(
                config.weekend_session_start_low_h,
                config.weekend_session_start_high_h,
            )
            duration = self._clamped_gauss(
                config.weekend_session_duration_mean_h,
                config.weekend_session_duration_std_h,
                0.25,
                5.0,
            )
            first = self._hour_to_interval(start)
            last = self._hour_to_interval(min(start + duration, 24.0 - 1e-9))
            self._fill_bursts(bits, first, last, config.weekend_bursts)
        return bits

    # -- shared machinery ---------------------------------------------------

    def _fill_bursts(self, bits, first, last, bursts: BurstModel, skip=None):
        """Fill ``bits[first..last]`` with an alternating burst process."""
        rng = self._rng
        index = first
        # Sessions begin with activity: the user just sat down.
        active = True
        while index <= min(last, INTERVALS_PER_DAY - 1):
            run = bursts.sample_run(active, rng)
            for _ in range(run):
                if index > min(last, INTERVALS_PER_DAY - 1):
                    break
                if active and not (skip is not None and skip(index)):
                    bits[index] = 1
                index += 1
            active = not active

    def _add_background(self, bits, start_probability: float) -> None:
        """Overlay sparse background activity bursts on the whole day,
        modulated by the hour-of-day weight profile."""
        if start_probability <= 0.0:
            return
        rng = self._rng
        mean = self.config.background_burst_mean_intervals
        index = 0
        while index < INTERVALS_PER_DAY:
            hour = index * _HOURS_PER_INTERVAL
            weighted = start_probability * self.config.background_weight(hour)
            if rng.random() < weighted:
                run = 1
                while rng.random() > 1.0 / mean:
                    run += 1
                for offset in range(run):
                    if index + offset < INTERVALS_PER_DAY:
                        bits[index + offset] = 1
                index += run
            else:
                index += 1

    def _clamped_gauss(self, mean, std, low, high) -> float:
        value = self._rng.gauss(mean, std)
        return min(max(value, low), high)

    @staticmethod
    def _hour_to_interval(hour: float) -> int:
        return min(int(hour / _HOURS_PER_INTERVAL), INTERVALS_PER_DAY - 1)

    @staticmethod
    def _interval_predicate(span_hours):
        """Return ``predicate(interval) -> bool`` for an (start, end) span."""
        if span_hours is None:
            return None
        start, end = span_hours

        def in_span(interval: int) -> bool:
            hour = interval * _HOURS_PER_INTERVAL
            return start <= hour < end

        return in_span
