"""Trace ensembles: the population of user-days that drives one run.

The paper samples 900 user-days from its trace archive, aligns them into a
single day, and treats them as 900 distinct users (§5.1).  An ensemble
here is exactly that aligned population.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import TraceFormatError
from repro.traces.generator import SyntheticTraceGenerator, TraceGeneratorConfig
from repro.traces.model import DayType, UserDayTrace
from repro.units import INTERVALS_PER_DAY


@dataclass(frozen=True)
class TraceEnsemble:
    """An aligned population of user-days, one per simulated user."""

    day_type: DayType
    traces: Tuple[UserDayTrace, ...]

    def __post_init__(self) -> None:
        if not self.traces:
            raise TraceFormatError("an ensemble must contain at least one trace")
        for trace in self.traces:
            if trace.day_type is not self.day_type:
                raise TraceFormatError(
                    f"trace for user {trace.user_id} is {trace.day_type.value}; "
                    f"ensemble is {self.day_type.value}"
                )

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    def __getitem__(self, index: int) -> UserDayTrace:
        return self.traces[index]

    def concurrent_active(self) -> List[int]:
        """Number of simultaneously active users for each interval."""
        counts = [0] * INTERVALS_PER_DAY
        for trace in self.traces:
            for interval, active in enumerate(trace.intervals):
                if active:
                    counts[interval] += 1
        return counts

    def peak_concurrency(self) -> Tuple[int, int]:
        """``(peak_count, interval_of_peak)`` over the day."""
        counts = self.concurrent_active()
        peak = max(counts)
        return peak, counts.index(peak)

    def resampled(self, count: int, rng: random.Random) -> "TraceEnsemble":
        """Sample ``count`` user-days with replacement, renumbering users."""
        picks = [rng.choice(self.traces) for _ in range(count)]
        renumbered = tuple(
            UserDayTrace(user_id, self.day_type, trace.intervals)
            for user_id, trace in enumerate(picks)
        )
        return TraceEnsemble(self.day_type, renumbered)


def generate_ensemble(
    count: int,
    day_type: DayType,
    seed: int,
    config: TraceGeneratorConfig = TraceGeneratorConfig(),
) -> TraceEnsemble:
    """Generate a synthetic ensemble of ``count`` user-days.

    This is the standard entry point used by the farm simulation: it mirrors
    the paper's procedure of drawing 900 user-days of one day type.
    """
    generator = SyntheticTraceGenerator(config, rng=random.Random(seed))
    traces = tuple(generator.generate_many(count, day_type))
    return TraceEnsemble(day_type, traces)


def partition_users(
    ensemble: TraceEnsemble, group_size: int
) -> List[Sequence[UserDayTrace]]:
    """Split an ensemble into consecutive groups of ``group_size`` users.

    Mirrors the assignment of 30 VMs to each home host; the final group may
    be short if the population is not divisible.
    """
    if group_size <= 0:
        raise TraceFormatError(f"group_size must be positive, got {group_size}")
    groups = []
    for start in range(0, len(ensemble), group_size):
        groups.append(ensemble.traces[start : start + group_size])
    return groups
