"""Trace data model: one user-day of 5-minute active/idle intervals."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import TraceFormatError
from repro.units import INTERVALS_PER_DAY, TRACE_INTERVAL_SECONDS


class DayType(enum.Enum):
    """Whether a user-day was recorded on a weekday or a weekend."""

    WEEKDAY = "weekday"
    WEEKEND = "weekend"


@dataclass(frozen=True)
class UserDayTrace:
    """One user's activity over one day, in 5-minute intervals.

    ``intervals[i]`` is ``True`` when the user generated any keyboard or
    mouse input during interval ``i`` (the paper marks an interval active
    if *any* input occurred within it).
    """

    user_id: int
    day_type: DayType
    intervals: Tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.intervals) != INTERVALS_PER_DAY:
            raise TraceFormatError(
                f"user-day must have {INTERVALS_PER_DAY} intervals, "
                f"got {len(self.intervals)}"
            )

    # -- basic queries ------------------------------------------------

    def is_active(self, interval: int) -> bool:
        """Whether the user was active during interval ``interval``."""
        return self.intervals[interval]

    def is_active_at(self, time_s: float) -> bool:
        """Whether the user was active at absolute time ``time_s`` (s)."""
        index = int(time_s // TRACE_INTERVAL_SECONDS)
        if not 0 <= index < INTERVALS_PER_DAY:
            raise TraceFormatError(f"time {time_s} s is outside the trace day")
        return self.intervals[index]

    @property
    def active_fraction(self) -> float:
        """Fraction of the day's intervals marked active."""
        return sum(self.intervals) / INTERVALS_PER_DAY

    @property
    def transitions(self) -> int:
        """Number of active/idle boundary crossings over the day."""
        return sum(
            1
            for previous, current in zip(self.intervals, self.intervals[1:])
            if previous != current
        )

    def activation_intervals(self) -> List[int]:
        """Interval indices at which the user turns idle -> active."""
        indices = []
        previous = False
        for index, active in enumerate(self.intervals):
            if active and not previous:
                indices.append(index)
            previous = active
        return indices

    def runs(self) -> Iterator[Tuple[bool, int]]:
        """Yield ``(state, length)`` for each maximal run of equal state."""
        run_state = self.intervals[0]
        run_length = 0
        for active in self.intervals:
            if active == run_state:
                run_length += 1
            else:
                yield run_state, run_length
                run_state = active
                run_length = 1
        yield run_state, run_length

    # -- construction helpers ------------------------------------------

    @classmethod
    def from_bits(
        cls, user_id: int, day_type: DayType, bits: Sequence[int]
    ) -> "UserDayTrace":
        """Build from a sequence of 0/1 integers (one per interval)."""
        for bit in bits:
            if bit not in (0, 1):
                raise TraceFormatError(f"interval bits must be 0 or 1, got {bit!r}")
        return cls(
            user_id=user_id,
            day_type=day_type,
            intervals=tuple(bool(bit) for bit in bits),
        )

    @classmethod
    def all_idle(cls, user_id: int, day_type: DayType) -> "UserDayTrace":
        """A user-day with no activity at all."""
        return cls(user_id, day_type, (False,) * INTERVALS_PER_DAY)

    @classmethod
    def all_active(cls, user_id: int, day_type: DayType) -> "UserDayTrace":
        """A user-day that is active in every interval."""
        return cls(user_id, day_type, (True,) * INTERVALS_PER_DAY)

    def __repr__(self) -> str:
        return (
            f"<UserDayTrace user={self.user_id} {self.day_type.value} "
            f"active={self.active_fraction:.1%} transitions={self.transitions}>"
        )
