"""Greedy vacate planning (§3.1, "Where to migrate").

The paper's placement heuristic: sort compute hosts by total VM memory
demand ascending (cheapest to vacate first), and vacate as many whole
hosts as possible.  Each migrating VM's destination is drawn at random
from the consolidation hosts with enough free memory.  We prefer
already-powered consolidation hosts and only wake sleeping ones when the
powered set cannot fit a VM — consolidation hosts sleep by default and
"are awakened only to accommodate incoming VMs" (§3.1), so waking one
for a VM that fits elsewhere would burn energy for nothing.

The planner works on a *shadow* free-memory map so one planning pass
never over-commits a destination, and it supports first-fit/best-fit
strategies for the placement ablation bench.
"""

from __future__ import annotations

import enum
import random
from typing import Dict, List, Optional

from repro.cluster.host import Host
from repro.cluster.topology import Cluster
from repro.core.plan import (
    ConsolidationPlan,
    HostVacatePlan,
    MigrationMode,
    PlannedMigration,
)
from repro.core.policies import PolicySpec
from repro.errors import ConfigError
from repro.vm.machine import VirtualMachine
from repro.vm.state import Residency
from repro.vm.workingset import WorkingSetSampler


class DestinationStrategy(enum.Enum):
    """How to pick among feasible destinations (paper: RANDOM)."""

    RANDOM = "random"
    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    WORST_FIT = "worst_fit"


class _ShadowCapacity:
    """Free memory per consolidation host as the plan takes shape."""

    def __init__(self, cluster: Cluster) -> None:
        self.free: Dict[int, float] = {}
        self.capacity: Dict[int, float] = {}
        self.powered: Dict[int, bool] = {}
        for host in cluster.consolidation_hosts:
            self.free[host.host_id] = host.free_mib
            self.capacity[host.host_id] = host.capacity_mib
            self.powered[host.host_id] = host.is_powered
        self.woken: set = set()

    def candidates(
        self, size_mib: float, powered_only: bool, headroom_fraction: float = 0.0
    ) -> List[int]:
        """Hosts that can take ``size_mib`` while keeping at least
        ``headroom_fraction`` of their capacity free afterwards."""
        result = []
        for host_id, free in self.free.items():
            reserve = headroom_fraction * self.capacity[host_id]
            if free + 1e-9 < size_mib + reserve:
                continue
            is_powered = self.powered[host_id] or host_id in self.woken
            if powered_only == is_powered:
                result.append(host_id)
        return result

    def place(self, host_id: int, size_mib: float) -> None:
        self.free[host_id] -= size_mib
        if not self.powered[host_id]:
            self.woken.add(host_id)

    def unplace(self, host_id: int, size_mib: float) -> None:
        self.free[host_id] += size_mib


class GreedyVacatePlanner:
    """Builds :class:`ConsolidationPlan` objects from cluster state."""

    def __init__(
        self,
        policy: PolicySpec,
        working_sets: WorkingSetSampler,
        rng: random.Random,
        min_idle_intervals: int = 1,
        strategy: DestinationStrategy = DestinationStrategy.RANDOM,
    ) -> None:
        if min_idle_intervals < 1:
            raise ConfigError("min_idle_intervals must be >= 1")
        self.policy = policy
        self.working_sets = working_sets
        self.rng = rng
        self.min_idle_intervals = min_idle_intervals
        self.strategy = strategy

    # -- public API -----------------------------------------------------

    def plan(
        self, cluster: Cluster, compact_consolidation: bool = True
    ) -> ConsolidationPlan:
        """Plan this interval's vacations.

        Only fully-vacatable powered compute hosts are planned: hosts
        with VMs that cannot move (active VMs under OnlyPartial, or VMs
        that do not fit anywhere) stay as they are.  When
        ``compact_consolidation`` is set, lightly-loaded powered
        consolidation hosts are additionally emptied into their peers so
        they can sleep too.
        """
        shadow = _ShadowCapacity(cluster)
        queue = self._vacate_queue(cluster)
        vacations: List[HostVacatePlan] = []
        for host in queue:
            migrations = self._try_vacate(host, shadow)
            if migrations is not None:
                vacations.append(HostVacatePlan(host.host_id, migrations))
        compactions: List[HostVacatePlan] = []
        if compact_consolidation:
            compactions = self._plan_compaction(cluster, shadow)
        return ConsolidationPlan(
            vacations=vacations,
            hosts_to_wake=set(shadow.woken),
            compactions=compactions,
        )

    #: Only consolidation hosts below this utilization are worth
    #: emptying; draining a well-used host just shifts load around.
    COMPACTION_LOW_WATER = 0.30
    #: Keep this much of each destination's capacity free so activating
    #: partial VMs can still convert to full in place — packing tight
    #: would trade one powered host for a storm of home wake-ups.
    COMPACTION_HEADROOM = 0.20

    def _plan_compaction(
        self, cluster: Cluster, shadow: _ShadowCapacity
    ) -> List[HostVacatePlan]:
        """Empty lightly-loaded powered consolidation hosts into peers.

        Destinations are restricted to consolidation hosts that are
        already powered (waking a host to let another sleep is a wash at
        best) and that are not themselves being compacted away.
        """
        candidates = sorted(
            (
                host
                for host in cluster.consolidation_hosts
                if host.is_powered
                and host.vm_count > 0
                and host.used_mib
                < self.COMPACTION_LOW_WATER * host.capacity_mib
            ),
            key=lambda host: host.used_mib,
        )
        compactions: List[HostVacatePlan] = []
        emptied: set = set()
        for host in candidates:
            migrations: List[PlannedMigration] = []
            placed: List = []
            feasible = True
            for vm in host.vms():
                size = vm.resident_mib
                choices = [
                    other_id
                    for other_id in shadow.candidates(
                        size,
                        powered_only=True,
                        headroom_fraction=self.COMPACTION_HEADROOM,
                    )
                    if other_id != host.host_id and other_id not in emptied
                    and other_id not in shadow.woken
                ]
                if not choices:
                    feasible = False
                    break
                destination = self._choose(choices, shadow)
                shadow.place(destination, size)
                placed.append((destination, size))
                mode = (
                    MigrationMode.PARTIAL
                    if vm.residency is Residency.PARTIAL
                    else MigrationMode.FULL
                )
                migrations.append(
                    PlannedMigration(
                        vm_id=vm.vm_id,
                        source_id=host.host_id,
                        destination_id=destination,
                        mode=mode,
                        working_set_mib=(
                            vm.working_set_mib
                            if mode is MigrationMode.PARTIAL
                            else None
                        ),
                    )
                )
            if feasible and migrations:
                compactions.append(
                    HostVacatePlan(host.host_id, migrations)
                )
                emptied.add(host.host_id)
                # The emptied host is no longer a destination.
                shadow.free[host.host_id] = -1.0
            else:
                for destination, size in placed:
                    shadow.unplace(destination, size)
        return compactions

    # -- internals --------------------------------------------------------

    def _vacate_queue(self, cluster: Cluster) -> List[Host]:
        """Powered compute hosts with VMs, cheapest memory demand first."""
        candidates = [
            host
            for host in cluster.home_hosts
            if host.is_powered and host.vm_count > 0
        ]
        return sorted(candidates, key=self._memory_demand)

    def _memory_demand(self, host: Host) -> float:
        """Memory that vacating this host would move to consolidation
        hosts: full allocations for active VMs, expected working sets for
        idle ones.  This is both the sort key (the paper's "total VM
        memory demand / migration cost") and a proxy for transfer cost."""
        expected_ws = self.working_sets.expected_mib()
        demand = 0.0
        for vm in host.vms():
            if vm.is_active:
                demand += vm.memory_mib
            else:
                demand += min(expected_ws, vm.memory_mib)
        return demand

    def _try_vacate(
        self, host: Host, shadow: _ShadowCapacity
    ) -> Optional[List[PlannedMigration]]:
        """Plan all of one host's VMs, or None if any VM cannot move."""
        migrations: List[PlannedMigration] = []
        placed: List = []  # (host_id, size) for rollback
        for vm in host.vms():
            planned = self._plan_vm(vm, host.host_id, shadow)
            if planned is None:
                for dest_id, size in placed:
                    shadow.unplace(dest_id, size)
                return None
            migrations.append(planned)
            size = (
                planned.working_set_mib
                if planned.mode is MigrationMode.PARTIAL
                else vm.memory_mib
            )
            placed.append((planned.destination_id, size))
        return migrations

    def _plan_vm(
        self, vm: VirtualMachine, source_id: int, shadow: _ShadowCapacity
    ) -> Optional[PlannedMigration]:
        if vm.is_active:
            if not self.policy.full_migrate_active:
                return None
            size = vm.memory_mib
            mode = MigrationMode.FULL
            working_set = None
        else:
            if vm.idle_intervals < self.min_idle_intervals:
                return None
            working_set = self.working_sets.sample(self.rng)
            working_set = min(working_set, vm.memory_mib)
            size = working_set
            mode = MigrationMode.PARTIAL
        destination = self._pick_destination(size, shadow)
        if destination is None:
            return None
        shadow.place(destination, size)
        return PlannedMigration(
            vm_id=vm.vm_id,
            source_id=source_id,
            destination_id=destination,
            mode=mode,
            working_set_mib=working_set,
        )

    def _pick_destination(
        self, size_mib: float, shadow: _ShadowCapacity
    ) -> Optional[int]:
        for powered_only in (True, False):
            candidates = shadow.candidates(size_mib, powered_only)
            if candidates:
                return self._choose(candidates, shadow)
        return None

    def _choose(self, candidates: List[int], shadow: _ShadowCapacity) -> int:
        if self.strategy is DestinationStrategy.RANDOM:
            return self.rng.choice(candidates)
        if self.strategy is DestinationStrategy.FIRST_FIT:
            return min(candidates)
        if self.strategy is DestinationStrategy.BEST_FIT:
            return min(candidates, key=lambda host_id: shadow.free[host_id])
        return max(candidates, key=lambda host_id: shadow.free[host_id])
