"""Greedy vacate planning (§3.1, "Where to migrate").

The paper's placement heuristic: sort compute hosts by total VM memory
demand ascending (cheapest to vacate first), and vacate as many whole
hosts as possible.  Each migrating VM's destination is drawn at random
from the consolidation hosts with enough free memory.  We prefer
already-powered consolidation hosts and only wake sleeping ones when the
powered set cannot fit a VM — consolidation hosts sleep by default and
"are awakened only to accommodate incoming VMs" (§3.1), so waking one
for a VM that fits elsewhere would burn energy for nothing.

The planner works on a *shadow* free-memory map so one planning pass
never over-commits a destination, and it supports first-fit/best-fit
strategies for the placement ablation bench.
"""

from __future__ import annotations

import enum
import random
from math import cos as _cos, log as _log, sin as _sin, sqrt as _sqrt
from math import tau as _TWOPI
from typing import Dict, List, Optional

from repro.cluster.host import Host
from repro.cluster.topology import Cluster
from repro.core.plan import (
    ConsolidationPlan,
    HostVacatePlan,
    MigrationMode,
    PlannedMigration,
)
from repro.core.policies import PolicySpec
from repro.errors import ConfigError
from repro.vm.state import Residency, VmActivity
from repro.vm.workingset import WorkingSetSampler


class DestinationStrategy(enum.Enum):
    """How to pick among feasible destinations (paper: RANDOM)."""

    RANDOM = "random"
    FIRST_FIT = "first_fit"
    BEST_FIT = "best_fit"
    WORST_FIT = "worst_fit"


class _ShadowCapacity:
    """Free memory per consolidation host as the plan takes shape.

    Backed by parallel lists in consolidation-host order (ascending host
    id) rather than dicts: the candidate scan is the planner's innermost
    loop and runs tens of thousands of times per simulated day.  The
    scan order — and therefore every ``rng.choice`` draw downstream —
    matches the dict-insertion order of the mapping it replaces.
    """

    __slots__ = ("ids", "index", "free", "capacity", "powered", "effective", "woken")

    def __init__(self, cluster: Cluster) -> None:
        hosts = cluster.consolidation_hosts
        self.ids: List[int] = [host.host_id for host in hosts]
        self.index: Dict[int, int] = {
            host_id: position for position, host_id in enumerate(self.ids)
        }
        self.free: List[float] = [host.free_mib for host in hosts]
        self.capacity: List[float] = [host.capacity_mib for host in hosts]
        self.powered: List[bool] = [host.is_powered for host in hosts]
        #: powered-or-woken, the effective state candidate scans test.
        self.effective: List[bool] = list(self.powered)
        self.woken: set = set()

    def candidates(
        self, size_mib: float, powered_only: bool, headroom_fraction: float = 0.0
    ) -> List[int]:
        """Hosts that can take ``size_mib`` while keeping at least
        ``headroom_fraction`` of their capacity free afterwards."""
        result = []
        free = self.free
        effective = self.effective
        if headroom_fraction:
            capacity = self.capacity
            for position, host_id in enumerate(self.ids):
                reserve = headroom_fraction * capacity[position]
                if free[position] + 1e-9 < size_mib + reserve:
                    continue
                if powered_only == effective[position]:
                    result.append(host_id)
        else:
            for position, host_id in enumerate(self.ids):
                if free[position] + 1e-9 < size_mib:
                    continue
                if powered_only == effective[position]:
                    result.append(host_id)
        return result

    def place(self, host_id: int, size_mib: float) -> None:
        position = self.index[host_id]
        self.free[position] -= size_mib
        if not self.powered[position]:
            self.woken.add(host_id)
            self.effective[position] = True

    def unplace(self, host_id: int, size_mib: float) -> None:
        # Deliberately does not revert ``woken``/``effective``: a rolled-
        # back placement may already have committed the wake decision
        # (matching the historical dict-backed behaviour).
        self.free[self.index[host_id]] += size_mib


class GreedyVacatePlanner:
    """Builds :class:`ConsolidationPlan` objects from cluster state."""

    def __init__(
        self,
        policy: PolicySpec,
        working_sets: WorkingSetSampler,
        rng: random.Random,
        min_idle_intervals: int = 1,
        strategy: DestinationStrategy = DestinationStrategy.RANDOM,
    ) -> None:
        if min_idle_intervals < 1:
            raise ConfigError("min_idle_intervals must be >= 1")
        self.policy = policy
        self.working_sets = working_sets
        self.rng = rng
        self.min_idle_intervals = min_idle_intervals
        self.strategy = strategy

    # -- public API -----------------------------------------------------

    def plan(
        self, cluster: Cluster, compact_consolidation: bool = True
    ) -> ConsolidationPlan:
        """Plan this interval's vacations.

        Only fully-vacatable powered compute hosts are planned: hosts
        with VMs that cannot move (active VMs under OnlyPartial, or VMs
        that do not fit anywhere) stay as they are.  When
        ``compact_consolidation`` is set, lightly-loaded powered
        consolidation hosts are additionally emptied into their peers so
        they can sleep too.
        """
        shadow = _ShadowCapacity(cluster)
        queue = self._vacate_queue(cluster)
        vacations: List[HostVacatePlan] = []
        for host in queue:
            migrations = self._try_vacate(host, shadow)
            if migrations is not None:
                vacations.append(HostVacatePlan(host.host_id, migrations))
        compactions: List[HostVacatePlan] = []
        if compact_consolidation:
            compactions = self._plan_compaction(cluster, shadow)
        return ConsolidationPlan(
            vacations=vacations,
            hosts_to_wake=set(shadow.woken),
            compactions=compactions,
        )

    #: Only consolidation hosts below this utilization are worth
    #: emptying; draining a well-used host just shifts load around.
    COMPACTION_LOW_WATER = 0.30
    #: Keep this much of each destination's capacity free so activating
    #: partial VMs can still convert to full in place — packing tight
    #: would trade one powered host for a storm of home wake-ups.
    COMPACTION_HEADROOM = 0.20

    def _plan_compaction(
        self, cluster: Cluster, shadow: _ShadowCapacity
    ) -> List[HostVacatePlan]:
        """Empty lightly-loaded powered consolidation hosts into peers.

        Destinations are restricted to consolidation hosts that are
        already powered (waking a host to let another sleep is a wash at
        best) and that are not themselves being compacted away.
        """
        candidates = sorted(
            (
                host
                for host in cluster.consolidation_hosts
                if host.is_powered
                and host.vm_count > 0
                and host.used_mib
                < self.COMPACTION_LOW_WATER * host.capacity_mib
            ),
            key=lambda host: host.used_mib,
        )
        compactions: List[HostVacatePlan] = []
        emptied: set = set()
        for host in candidates:
            migrations: List[PlannedMigration] = []
            placed: List = []
            feasible = True
            for vm in host.vms():
                size = vm.resident_mib
                choices = [
                    other_id
                    for other_id in shadow.candidates(
                        size,
                        powered_only=True,
                        headroom_fraction=self.COMPACTION_HEADROOM,
                    )
                    if other_id != host.host_id and other_id not in emptied
                    and other_id not in shadow.woken
                ]
                if not choices:
                    feasible = False
                    break
                destination = self._choose(choices, shadow)
                shadow.place(destination, size)
                placed.append((destination, size))
                mode = (
                    MigrationMode.PARTIAL
                    if vm.residency is Residency.PARTIAL
                    else MigrationMode.FULL
                )
                migrations.append(
                    PlannedMigration(
                        vm_id=vm.vm_id,
                        source_id=host.host_id,
                        destination_id=destination,
                        mode=mode,
                        working_set_mib=(
                            vm.working_set_mib
                            if mode is MigrationMode.PARTIAL
                            else None
                        ),
                    )
                )
            if feasible and migrations:
                compactions.append(
                    HostVacatePlan(host.host_id, migrations)
                )
                emptied.add(host.host_id)
                # The emptied host is no longer a destination.
                shadow.free[shadow.index[host.host_id]] = -1.0
            else:
                for destination, size in placed:
                    shadow.unplace(destination, size)
        return compactions

    # -- internals --------------------------------------------------------

    def _vacate_queue(self, cluster: Cluster) -> List[Host]:
        """Powered compute hosts with VMs, cheapest memory demand first."""
        candidates = [
            host
            for host in cluster.home_hosts
            if host.is_powered and host.vm_count > 0
        ]
        return sorted(candidates, key=self._memory_demand)

    def _memory_demand(self, host: Host) -> float:
        """Memory that vacating this host would move to consolidation
        hosts: full allocations for active VMs, expected working sets for
        idle ones.  This is both the sort key (the paper's "total VM
        memory demand / migration cost") and a proxy for transfer cost."""
        expected_ws = self.working_sets.expected_mib()
        active = VmActivity.ACTIVE
        demand = 0.0
        for vm in host._vms.values():
            if vm.activity is active:
                demand += vm.memory_mib
            else:
                memory = vm.memory_mib
                demand += expected_ws if expected_ws < memory else memory
        return demand

    def _try_vacate(
        self, host: Host, shadow: _ShadowCapacity
    ) -> Optional[List[PlannedMigration]]:
        """Plan all of one host's VMs, or None if any VM cannot move.

        This is the planner's innermost loop — tens of thousands of VM
        placements per simulated day, most of which roll back when a
        later sibling fails to fit — so the per-VM work (working-set
        sampling, candidate scan, destination draw, shadow placement) is
        fused inline, down to the RNG primitives: the Gaussian working-
        set draw replays ``random.Random.gauss`` (the Box-Muller pair
        algorithm, including its ``gauss_next`` cache), and the random
        destination draw replays ``Random.choice`` (the ``getrandbits``
        rejection loop).  Draw-for-draw it replays exactly what the
        unfused ``sample``/``candidates``/``choice`` sequence did, in
        the same order; only the Python call overhead is gone.
        """
        rng = self.rng
        uniform01 = rng.random
        getrandbits = rng.getrandbits
        sampler = self.working_sets
        ws_mean = sampler.mean_mib
        ws_std = sampler.std_mib
        ws_lo = sampler.min_mib
        ws_hi = sampler.max_mib
        min_idle = self.min_idle_intervals
        full_migrate_active = self.policy.full_migrate_active
        random_strategy = self.strategy is DestinationStrategy.RANDOM
        ids = shadow.ids
        free = shadow.free
        powered = shadow.powered
        effective = shadow.effective
        host_index = shadow.index
        woken = shadow.woken
        positions = range(len(ids))
        source_id = host.host_id
        active = VmActivity.ACTIVE
        partial_mode = MigrationMode.PARTIAL
        full_mode = MigrationMode.FULL
        migrations: List[PlannedMigration] = []
        placed: List = []  # (position, size) for rollback
        for vm in host._vms.values():
            if vm.activity is active:
                if not full_migrate_active:
                    for position, size in placed:
                        free[position] += size
                    return None
                working_set = None
                size = vm.memory_mib
                mode = full_mode
            else:
                # Inlined VirtualMachine.idle_intervals (clock-anchored
                # streak or the eagerly maintained base count).
                anchor = vm._idle_anchor
                idle = (
                    vm._idle_base
                    if anchor is None
                    else vm._interval_clock.index - anchor + 1
                )
                if idle < min_idle:
                    for position, size in placed:
                        free[position] += size
                    return None
                # Inlined WorkingSetSampler.sample: identical rejection
                # loop, hence identical gauss draw count and values.
                for _ in range(64):
                    z = rng.gauss_next
                    rng.gauss_next = None
                    if z is None:
                        x2pi = uniform01() * _TWOPI
                        g2rad = _sqrt(-2.0 * _log(1.0 - uniform01()))
                        z = _cos(x2pi) * g2rad
                        rng.gauss_next = _sin(x2pi) * g2rad
                    working_set = ws_mean + z * ws_std
                    if ws_lo <= working_set <= ws_hi:
                        break
                else:
                    z = rng.gauss_next
                    rng.gauss_next = None
                    if z is None:
                        x2pi = uniform01() * _TWOPI
                        g2rad = _sqrt(-2.0 * _log(1.0 - uniform01()))
                        z = _cos(x2pi) * g2rad
                        rng.gauss_next = _sin(x2pi) * g2rad
                    working_set = ws_mean + z * ws_std
                    if working_set < ws_lo:
                        working_set = ws_lo
                    elif working_set > ws_hi:
                        working_set = ws_hi
                memory = vm.memory_mib
                if working_set > memory:
                    working_set = memory
                size = working_set
                mode = partial_mode
            # Inlined candidate scan: powered (or woken) hosts first,
            # then sleeping ones; ascending host id within each tier.
            candidates = []
            for position in positions:
                if free[position] + 1e-9 >= size and effective[position]:
                    candidates.append(ids[position])
            if not candidates:
                for position in positions:
                    if (
                        free[position] + 1e-9 >= size
                        and not effective[position]
                    ):
                        candidates.append(ids[position])
                if not candidates:
                    for position, size in placed:
                        free[position] += size
                    return None
            if random_strategy:
                n = len(candidates)
                k = n.bit_length()
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                destination = candidates[r]
            else:
                destination = self._choose(candidates, shadow)
            position = host_index[destination]
            free[position] -= size
            if not powered[position]:
                woken.add(destination)
                effective[position] = True
            placed.append((position, size))
            migrations.append(
                PlannedMigration(
                    vm_id=vm.vm_id,
                    source_id=source_id,
                    destination_id=destination,
                    mode=mode,
                    working_set_mib=working_set,
                )
            )
        return migrations

    def _choose(self, candidates: List[int], shadow: _ShadowCapacity) -> int:
        if self.strategy is DestinationStrategy.RANDOM:
            return self.rng.choice(candidates)
        if self.strategy is DestinationStrategy.FIRST_FIT:
            return min(candidates)
        if self.strategy is DestinationStrategy.BEST_FIT:
            return min(
                candidates,
                key=lambda host_id: shadow.free[shadow.index[host_id]],
            )
        return max(
            candidates,
            key=lambda host_id: shadow.free[shadow.index[host_id]],
        )
