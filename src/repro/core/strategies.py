"""The pluggable placement-strategy layer.

A :class:`PlacementStrategy` bundles a behavioural :class:`PolicySpec`
(what happens when consolidated VMs change state) with a *planner
factory* (how consolidation placements are chosen each interval).  The
paper's four policies become four registered :class:`GreedyStrategy`
instances, and new policy families — the Γ-robust planner in
:mod:`repro.policies.gamma` is the first — register themselves under
their own names without touching the manager, the farm engine, the CLI,
or the sweep helpers: all of those resolve strategies through
:func:`resolve_strategy` / :func:`strategy_by_name`.

Determinism contract: resolving a strategy and building its planner
draws nothing.  A strategy receives the simulation's ``RngStreams``
(when one exists) so it may *derive* seeds for its own named streams,
but it must never advance a stream another component owns; the four
greedy strategies ignore the streams entirely, which keeps the strategy
refactor byte-identical to the pre-refactor planner wiring.

Strategies must be picklable (frozen dataclasses, no closures): sweeps
ship them to worker processes inside ``RunSpec`` objects.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.core.placement import DestinationStrategy, GreedyVacatePlanner
from repro.core.policies import ALL_POLICIES, PolicySpec
from repro.errors import ConfigError
from repro.simulator.randomness import RngStreams
from repro.vm.workingset import WorkingSetSampler

__all__ = [
    "PlacementStrategy",
    "GreedyStrategy",
    "register_strategy",
    "register_family",
    "unregister_strategy",
    "strategy_by_name",
    "strategy_names",
    "resolve_strategy",
    "PolicyLike",
]


class PlacementStrategy(abc.ABC):
    """A named, picklable policy + planner-factory bundle."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Display name; keys registry lookups, sweep tables, goldens."""

    @property
    @abc.abstractmethod
    def spec(self) -> PolicySpec:
        """Behavioural switches the manager consults at event time."""

    @abc.abstractmethod
    def build_planner(
        self,
        working_sets: WorkingSetSampler,
        rng: random.Random,
        min_idle_intervals: int = 1,
        destination: DestinationStrategy = DestinationStrategy.RANDOM,
        streams: Optional[RngStreams] = None,
    ) -> object:
        """Return a planner exposing ``plan(cluster, compact_consolidation)``.

        ``streams`` is the simulation's root stream registry (``None``
        for bare unit-test managers); implementations may derive seeds
        from it but must not advance any existing stream.
        """


@dataclass(frozen=True)
class GreedyStrategy(PlacementStrategy):
    """The paper's planner behind any of the four behavioural policies."""

    policy: PolicySpec

    @property
    def name(self) -> str:
        return self.policy.name

    @property
    def spec(self) -> PolicySpec:
        return self.policy

    def build_planner(
        self,
        working_sets: WorkingSetSampler,
        rng: random.Random,
        min_idle_intervals: int = 1,
        destination: DestinationStrategy = DestinationStrategy.RANDOM,
        streams: Optional[RngStreams] = None,
    ) -> GreedyVacatePlanner:
        return GreedyVacatePlanner(
            policy=self.policy,
            working_sets=working_sets,
            rng=rng,
            min_idle_intervals=min_idle_intervals,
            strategy=destination,
        )


PolicyLike = Union[PolicySpec, PlacementStrategy, str]

#: lowercase name -> registered strategy instance.
_STRATEGIES: Dict[str, PlacementStrategy] = {}
#: lowercase family prefix -> factory taking the text after ``@``
#: (empty string when the bare family name is used).
_FAMILIES: Dict[str, Callable[[str], PlacementStrategy]] = {}
#: Display names in registration order (for error messages / CLI).
_DISPLAY_ORDER: List[str] = []

#: Separates a family name from its parameter, e.g. ``GammaRobust@2``.
FAMILY_SEPARATOR = "@"

_builtin_families_loaded = False


def _load_builtin_families() -> None:
    """Import the in-tree policy families so name lookups find them.

    Deferred to first lookup: :mod:`repro.policies` imports this module,
    so importing it eagerly at module scope would be circular.
    """
    global _builtin_families_loaded
    if _builtin_families_loaded:
        return
    _builtin_families_loaded = True
    import repro.policies  # noqa: F401  (registers the GammaRobust family)


def register_strategy(
    strategy: PlacementStrategy, replace: bool = False
) -> PlacementStrategy:
    """Add ``strategy`` to the registry under its (case-folded) name."""
    key = strategy.name.lower()
    if not key:
        raise ConfigError("strategy name must be non-empty")
    if not replace and (key in _STRATEGIES or key in _FAMILIES):
        raise ConfigError(
            f"strategy {strategy.name!r} is already registered; "
            "pass replace=True to override"
        )
    if key not in _STRATEGIES and key not in _FAMILIES:
        _DISPLAY_ORDER.append(strategy.name)
    _STRATEGIES[key] = strategy
    return strategy


def register_family(
    name: str, factory: Callable[[str], PlacementStrategy],
    replace: bool = False,
) -> None:
    """Register a parameterized family, looked up as ``Name@arg``.

    ``factory`` receives the text after :data:`FAMILY_SEPARATOR`
    (``""`` when the bare family name is used) and returns a strategy.
    """
    key = name.lower()
    if not key:
        raise ConfigError("strategy family name must be non-empty")
    if FAMILY_SEPARATOR in key:
        raise ConfigError(
            f"family name {name!r} must not contain {FAMILY_SEPARATOR!r}"
        )
    if not replace and (key in _STRATEGIES or key in _FAMILIES):
        raise ConfigError(
            f"strategy family {name!r} is already registered; "
            "pass replace=True to override"
        )
    if key not in _STRATEGIES and key not in _FAMILIES:
        _DISPLAY_ORDER.append(name)
    _FAMILIES[key] = factory


def unregister_strategy(name: str) -> None:
    """Drop a registered strategy or family (test/plugin cleanup)."""
    key = name.lower()
    if _STRATEGIES.pop(key, None) is None and _FAMILIES.pop(key, None) is None:
        raise ConfigError(f"strategy {name!r} is not registered")
    for position, display in enumerate(_DISPLAY_ORDER):
        if display.lower() == key:
            del _DISPLAY_ORDER[position]
            break


def strategy_names() -> List[str]:
    """Display names of every registered strategy and family."""
    _load_builtin_families()
    return list(_DISPLAY_ORDER)


def strategy_by_name(name: str) -> PlacementStrategy:
    """Look up a strategy by display name (case-insensitive).

    Family lookups accept ``Family@arg`` (``GammaRobust@2``) as well as
    the bare family name (the factory sees an empty argument and applies
    its default).
    """
    _load_builtin_families()
    key = name.lower()
    found = _STRATEGIES.get(key)
    if found is not None:
        return found
    family, separator, argument = name.partition(FAMILY_SEPARATOR)
    factory = _FAMILIES.get(family.lower())
    if factory is not None:
        return factory(argument if separator else "")
    raise ConfigError(
        f"unknown strategy {name!r}; choose from {strategy_names()}"
    )


def resolve_strategy(policy: PolicyLike) -> PlacementStrategy:
    """Coerce a policy-ish value to a :class:`PlacementStrategy`.

    Accepts a strategy (returned as-is), a registry name, or any
    :class:`PolicySpec` — including unregistered custom specs, which are
    wrapped in a :class:`GreedyStrategy` so every pre-refactor call site
    (and test fixture) keeps its exact historical behaviour.
    """
    if isinstance(policy, PlacementStrategy):
        return policy
    if isinstance(policy, PolicySpec):
        return GreedyStrategy(policy)
    if isinstance(policy, str):
        return strategy_by_name(policy)
    raise ConfigError(
        f"cannot resolve {policy!r} to a placement strategy; expected a "
        "PlacementStrategy, PolicySpec, or registered strategy name"
    )


for _policy in ALL_POLICIES:
    register_strategy(GreedyStrategy(_policy))
del _policy
