"""Plan data model: what the manager tells agents to do (§4.1).

The manager ships agents lists of ``<vmid, migration type, destination>``
tuples; the classes below are the typed equivalent, grouped per vacated
host so the engine can serialize work and schedule the suspend that
follows the last departure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.errors import ConfigError


class MigrationMode(enum.Enum):
    """How a VM moves (§3.1, "How to migrate")."""

    FULL = "full"
    PARTIAL = "partial"


class PlannedMigration:
    """One migration order.

    A hand-rolled ``__slots__`` value class rather than a frozen
    dataclass: the planner creates tens of thousands per simulated day,
    and the frozen-dataclass construction path (``object.__setattr__``
    per field plus a ``__post_init__`` frame) dominated its profile.
    Validation, equality, and repr match the dataclass it replaces.
    """

    __slots__ = (
        "vm_id", "source_id", "destination_id", "mode", "working_set_mib"
    )

    def __init__(
        self,
        vm_id: int,
        source_id: int,
        destination_id: int,
        mode: MigrationMode,
        working_set_mib: Optional[float] = None,
    ) -> None:
        if source_id == destination_id:
            raise ConfigError(
                f"VM {vm_id}: source and destination are both "
                f"{source_id}"
            )
        if mode is MigrationMode.PARTIAL:
            if working_set_mib is None or working_set_mib <= 0.0:
                raise ConfigError(
                    f"VM {vm_id}: partial migration needs a positive "
                    f"working set"
                )
        elif working_set_mib is not None:
            raise ConfigError(
                f"VM {vm_id}: full migration carries no working set"
            )
        self.vm_id = vm_id
        self.source_id = source_id
        self.destination_id = destination_id
        self.mode = mode
        #: Sampled idle working set for partial migrations, MiB.
        self.working_set_mib = working_set_mib

    def _astuple(self) -> tuple:
        return (
            self.vm_id, self.source_id, self.destination_id,
            self.mode, self.working_set_mib,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlannedMigration):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"PlannedMigration(vm_id={self.vm_id!r}, "
            f"source_id={self.source_id!r}, "
            f"destination_id={self.destination_id!r}, mode={self.mode!r}, "
            f"working_set_mib={self.working_set_mib!r})"
        )


@dataclass(frozen=True)
class HostVacatePlan:
    """Vacate one compute host: all of its VMs move out, then it sleeps."""

    host_id: int
    migrations: List[PlannedMigration]

    def __post_init__(self) -> None:
        if not self.migrations:
            raise ConfigError(f"vacate plan for host {self.host_id} is empty")
        for migration in self.migrations:
            if migration.source_id != self.host_id:
                raise ConfigError(
                    f"vacate plan for host {self.host_id} contains a "
                    f"migration sourced at {migration.source_id}"
                )

    @property
    def partial_count(self) -> int:
        return sum(
            1 for m in self.migrations if m.mode is MigrationMode.PARTIAL
        )

    @property
    def full_count(self) -> int:
        return len(self.migrations) - self.partial_count


@dataclass(frozen=True)
class ConsolidationPlan:
    """The outcome of one periodic planning pass."""

    vacations: List[HostVacatePlan] = field(default_factory=list)
    #: Sleeping consolidation hosts that must be woken to receive VMs.
    hosts_to_wake: Set[int] = field(default_factory=set)
    #: Lightly-loaded consolidation hosts emptied into their powered
    #: peers so they can sleep (the planner minimizes *all* powered
    #: hosts, §3.1).  Relocating a partial VM is cheap: its memory image
    #: stays at the home's memory server; only the descriptor and the
    #: resident working set move.
    compactions: List[HostVacatePlan] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.vacations and not self.compactions

    @property
    def migration_count(self) -> int:
        return sum(
            len(plan.migrations)
            for plan in list(self.vacations) + list(self.compactions)
        )


@dataclass(frozen=True)
class ExchangePlan:
    """One FulltoPartial exchange (§3.2): an idle full VM on a
    consolidation host returns to its origin home in full, then comes
    back to the *same* consolidation host as a partial VM."""

    vm_id: int
    consolidation_host_id: int
    origin_home_id: int
    working_set_mib: float

    def __post_init__(self) -> None:
        if self.consolidation_host_id == self.origin_home_id:
            raise ConfigError(
                f"VM {self.vm_id}: exchange endpoints are both "
                f"{self.origin_home_id}"
            )
        if self.working_set_mib <= 0.0:
            raise ConfigError(f"VM {self.vm_id}: working set must be positive")


class ActivationAction(enum.Enum):
    """What to do when a partial VM becomes active (§3.2)."""

    #: No action needed: the VM is already full where it runs.
    ALREADY_FULL = "already_full"
    #: Pull the remaining image and convert to full in place; the
    #: consolidation host becomes the new home.
    CONVERT_IN_PLACE = "convert_in_place"
    #: Full-migrate to another powered host with capacity (NewHome).
    MIGRATE_NEW_HOME = "migrate_new_home"
    #: Wake the VM's home host and return all of that home's VMs.
    WAKE_HOME_RETURN_ALL = "wake_home_return_all"


@dataclass(frozen=True)
class ActivationDecision:
    """The manager's response to one idle-to-active transition."""

    vm_id: int
    action: ActivationAction
    #: Destination host for MIGRATE_NEW_HOME; home host for
    #: WAKE_HOME_RETURN_ALL; the running host otherwise.
    target_host_id: int
