"""The Oasis cluster manager — the paper's primary contribution (§3).

The manager decides *when* to migrate (periodic planning intervals),
*how* (full pre-copy migration for active VMs, partial migration for
idle VMs), *where* (greedy vacate with random consolidation
destinations), and when hosts sleep or wake.  Four policies govern what
happens when a consolidated VM changes state (§3.2):

* ``OnlyPartial`` — partial migration only (the Jettison approach);
* ``Default``    — hybrid; on capacity exhaustion wake the home and
  return all of its VMs;
* ``FulltoPartial`` — Default plus exchanging consolidated full VMs that
  turn idle for partial ones (the paper's best policy);
* ``NewHome``    — FulltoPartial plus re-homing activating VMs to any
  powered host before falling back to waking the home.
"""

from repro.core.policies import (
    PolicySpec,
    ONLY_PARTIAL,
    DEFAULT,
    FULL_TO_PARTIAL,
    NEW_HOME,
    ALL_POLICIES,
    policy_by_name,
)
from repro.core.plan import (
    ActivationAction,
    ActivationDecision,
    ConsolidationPlan,
    ExchangePlan,
    HostVacatePlan,
    MigrationMode,
    PlannedMigration,
)
from repro.core.placement import GreedyVacatePlanner, DestinationStrategy
from repro.core.strategies import (
    GreedyStrategy,
    PlacementStrategy,
    PolicyLike,
    register_family,
    register_strategy,
    resolve_strategy,
    strategy_by_name,
    strategy_names,
    unregister_strategy,
)
from repro.core.manager import ClusterManager

__all__ = [
    "PolicySpec",
    "ONLY_PARTIAL",
    "DEFAULT",
    "FULL_TO_PARTIAL",
    "NEW_HOME",
    "ALL_POLICIES",
    "policy_by_name",
    "ActivationAction",
    "ActivationDecision",
    "ConsolidationPlan",
    "ExchangePlan",
    "HostVacatePlan",
    "MigrationMode",
    "PlannedMigration",
    "GreedyVacatePlanner",
    "DestinationStrategy",
    "GreedyStrategy",
    "PlacementStrategy",
    "PolicyLike",
    "register_family",
    "register_strategy",
    "resolve_strategy",
    "strategy_by_name",
    "strategy_names",
    "unregister_strategy",
    "ClusterManager",
]
