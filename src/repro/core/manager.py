"""The cluster manager's decision logic (§3.1-3.2, §4.1).

The :class:`ClusterManager` is deliberately free of timing concerns: it
inspects cluster state and emits *decisions* (plans).  The execution
engine — :mod:`repro.farm` for trace-driven days, or a real agent layer
in a deployment — owns clocks, latencies, and energy.  This split keeps
every policy decision unit-testable against hand-built cluster states.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.cluster.topology import Cluster
from repro.core.placement import DestinationStrategy
from repro.core.plan import (
    ActivationAction,
    ActivationDecision,
    ConsolidationPlan,
    ExchangePlan,
)
from repro.core.strategies import PolicyLike, resolve_strategy
from repro.errors import MigrationError
from repro.obs.events import CAT_POLICY
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulator.randomness import RngStreams
from repro.vm.machine import VirtualMachine
from repro.vm.state import Residency
from repro.vm.workingset import WorkingSetSampler


class ClusterManager:
    """Makes consolidation, exchange, and activation decisions."""

    def __init__(
        self,
        cluster: Cluster,
        policy: PolicyLike,
        working_sets: Optional[WorkingSetSampler] = None,
        rng: Optional[random.Random] = None,
        min_idle_intervals: int = 1,
        strategy: DestinationStrategy = DestinationStrategy.RANDOM,
        tracer: Optional[Tracer] = None,
        streams: Optional[RngStreams] = None,
    ) -> None:
        resolved = resolve_strategy(policy)
        self.cluster = cluster
        self.placement_strategy = resolved
        self.policy = resolved.spec
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.working_sets = (
            working_sets if working_sets is not None else WorkingSetSampler()
        )
        self.rng = rng if rng is not None else random.Random(0)
        self.min_idle_intervals = min_idle_intervals
        self.planner = resolved.build_planner(
            working_sets=self.working_sets,
            rng=self.rng,
            min_idle_intervals=min_idle_intervals,
            destination=strategy,
            streams=streams,
        )

    # -- periodic planning ------------------------------------------------

    def plan_consolidation(
        self, compact_consolidation: bool = True
    ) -> ConsolidationPlan:
        """Search for a placement that powers down more hosts (§3.1).

        Returns an empty plan when no host can be powered down — the
        manager only migrates when doing so can save energy.
        """
        plan = self.planner.plan(
            self.cluster, compact_consolidation=compact_consolidation
        )
        if self.tracer.enabled and not plan.is_empty:
            self.tracer.event(
                "policy.consolidation_plan", CAT_POLICY,
                vacations=len(plan.vacations),
                compactions=len(plan.compactions),
            )
        return plan

    def plan_exchanges(self) -> List[ExchangePlan]:
        """Find FulltoPartial exchanges: consolidated full VMs that have
        turned idle and should be swapped for partial VMs (§3.2).

        Empty under policies without the exchange refinement.
        """
        if not self.policy.exchange_idle_full:
            return []
        exchanges: List[ExchangePlan] = []
        for host in self.cluster.consolidation_hosts:
            if not host.is_powered:
                continue
            for vm in host.vms():
                if vm.residency is not Residency.FULL or vm.is_active:
                    continue
                if vm.idle_intervals < self.min_idle_intervals:
                    continue
                working_set = min(
                    self.working_sets.sample(self.rng), vm.memory_mib
                )
                exchanges.append(
                    ExchangePlan(
                        vm_id=vm.vm_id,
                        consolidation_host_id=host.host_id,
                        origin_home_id=vm.origin_home_id,
                        working_set_mib=working_set,
                    )
                )
        if self.tracer.enabled and exchanges:
            self.tracer.event(
                "policy.exchange_plan", CAT_POLICY, exchanges=len(exchanges)
            )
        return exchanges

    # -- activation handling ------------------------------------------------

    def decide_activation(self, vm: VirtualMachine) -> ActivationDecision:
        """Choose the response to an idle-to-active transition (§3.2).

        Active VMs must hold their full memory image to perform well
        (Figure 6), so a partial VM must become full somewhere: in place
        if its consolidation host has room, on a new powered home under
        NewHome, and otherwise by waking its home host — which then takes
        back *all* of its VMs, since a woken host makes its partial
        replicas pure overhead.
        """
        if vm.residency is Residency.FULL:
            return self._traced(ActivationDecision(
                vm.vm_id, ActivationAction.ALREADY_FULL, vm.host_id
            ))

        host = self.cluster.host(vm.host_id)
        if vm.working_set_mib is None:
            raise MigrationError(f"partial VM {vm.vm_id} lacks a working set")
        remaining_mib = vm.memory_mib - vm.working_set_mib

        if self.policy.convert_in_place and host.can_fit(remaining_mib):
            return self._traced(ActivationDecision(
                vm.vm_id, ActivationAction.CONVERT_IN_PLACE, host.host_id
            ))

        if self.policy.rehome_on_exhaustion:
            destination = self._find_new_home(vm)
            if destination is not None:
                return self._traced(ActivationDecision(
                    vm.vm_id, ActivationAction.MIGRATE_NEW_HOME, destination
                ))

        return self._traced(ActivationDecision(
            vm.vm_id, ActivationAction.WAKE_HOME_RETURN_ALL, vm.home_id
        ))

    def _traced(self, decision: ActivationDecision) -> ActivationDecision:
        """Emit the decision as a policy event (observation only)."""
        if self.tracer.enabled:
            self.tracer.event(
                "policy.activation", CAT_POLICY,
                vm=decision.vm_id,
                action=decision.action.value,
                target=decision.target_host_id,
            )
        return decision

    def reroute_activation(self, vm: VirtualMachine) -> Optional[int]:
        """A fallback destination when the VM's home host will not wake.

        Used by fault handling: when every wake retry of the home failed,
        the activation is rerouted to any powered host with room for the
        full VM.  Returns ``None`` when no such host exists (the caller
        must then force the home awake regardless).
        """
        return self._find_new_home(vm)

    def _find_new_home(self, vm: VirtualMachine) -> Optional[int]:
        """A powered host (compute or consolidation) that fits the full VM."""
        candidates = [
            host.host_id
            for host in self.cluster
            if host.is_powered
            and host.host_id != vm.host_id
            and host.can_fit(vm.memory_mib)
        ]
        if not candidates:
            return None
        return self.rng.choice(candidates)
