"""Consolidation policy specifications (§3.2).

The four policies evaluated by the paper differ along three axes, so a
policy here is a small immutable specification rather than a class
hierarchy:

* may active VMs be migrated in full? (``OnlyPartial``: no — it is the
  pure partial-migration baseline);
* may an activating partial VM be converted to a full VM in place when
  the consolidation host has room? (``OnlyPartial``: no — it always
  returns home, as Jettison did for desktops);
* are consolidated full VMs that turn idle exchanged for partial ones?
  (``FulltoPartial`` and ``NewHome``: yes);
* on capacity exhaustion, is any other powered host tried before waking
  the VM's home? (``NewHome``: yes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class PolicySpec:
    """One consolidation policy as a set of behavioural switches."""

    name: str
    #: Vacating a home may live-migrate its active VMs to consolidation
    #: hosts.  False makes the policy partial-migration-only.
    full_migrate_active: bool
    #: An activating partial VM converts to full in place when the
    #: consolidation host has capacity (otherwise it must return home).
    convert_in_place: bool
    #: Consolidated full VMs that become idle are pushed back to their
    #: home and immediately re-consolidated as partial VMs.
    exchange_idle_full: bool
    #: On capacity exhaustion, try any powered host as a new home before
    #: waking the VM's home host.
    rehome_on_exhaustion: bool

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("policy needs a name")
        if self.exchange_idle_full and not self.full_migrate_active:
            raise ConfigError(
                "exchange_idle_full requires full migrations "
                "(there are no consolidated full VMs without them)"
            )


ONLY_PARTIAL = PolicySpec(
    name="OnlyPartial",
    full_migrate_active=False,
    convert_in_place=False,
    exchange_idle_full=False,
    rehome_on_exhaustion=False,
)

DEFAULT = PolicySpec(
    name="Default",
    full_migrate_active=True,
    convert_in_place=True,
    exchange_idle_full=False,
    rehome_on_exhaustion=False,
)

FULL_TO_PARTIAL = PolicySpec(
    name="FulltoPartial",
    full_migrate_active=True,
    convert_in_place=True,
    exchange_idle_full=True,
    rehome_on_exhaustion=False,
)

NEW_HOME = PolicySpec(
    name="NewHome",
    full_migrate_active=True,
    convert_in_place=True,
    exchange_idle_full=True,
    rehome_on_exhaustion=True,
)

ALL_POLICIES: Tuple[PolicySpec, ...] = (
    ONLY_PARTIAL,
    DEFAULT,
    FULL_TO_PARTIAL,
    NEW_HOME,
)

_BY_NAME: Dict[str, PolicySpec] = {
    policy.name.lower(): policy for policy in ALL_POLICIES
}


def policy_by_name(name: str) -> PolicySpec:
    """Look up one of the paper's policies case-insensitively."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown policy {name!r}; choose from "
            f"{[policy.name for policy in ALL_POLICIES]}"
        )
