"""The two-plane split: decisions vs accounting (DESIGN.md §16).

:class:`~repro.farm.simulation.FarmSimulation` historically reached
straight into the :class:`~repro.core.manager.ClusterManager` for
placement decisions and straight into its result's ledgers for
bookkeeping.  This module narrows both couplings to explicit
interfaces:

* :class:`DecisionPlane` — everything the engine asks a planner.  The
  engine never calls the manager directly; a future engine (e.g. a
  columnar fast mode) can substitute any conforming planner.
* :class:`AccountingLedger` — everything the engine records: energy
  (piecewise power and lump surcharges), power-state residence time,
  migration traffic, operation counters, and fault counters.  A future
  engine produces a :class:`~repro.farm.metrics.FarmResult` purely by
  feeding a conforming ledger.

The reference implementations (:class:`ManagerDecisionPlane`,
:class:`FarmAccountingLedger`) are pure pass-throughs over the
pre-split components, so routing the engine through them is
byte-identical — the farm/gamma/trace goldens are NOT regenerated, and
``tests/test_farm_planes.py`` proves stdout equality through the seams.

As a new capability enabled by the split, the ledger additionally
meters energy *per power state* (powered/sleeping/suspending/resuming
plus transition surcharges).  This is separate, additive accumulation —
it can never perturb the historical totals — and feeds the per-state
energy split of :mod:`repro.equiv`'s run fingerprints.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, List, Optional

from repro.core.manager import ClusterManager
from repro.core.plan import (
    ActivationDecision,
    ConsolidationPlan,
    ExchangePlan,
)
from repro.energy.accounting import EnergyAccountant, StateTimeTracker
from repro.farm.metrics import FarmResult, MigrationCounters
from repro.faults.model import FaultCounters
from repro.migration.traffic import TrafficCategory, TrafficLedger
from repro.vm.machine import VirtualMachine

__all__ = [
    "DecisionPlane",
    "ManagerDecisionPlane",
    "AccountingLedger",
    "FarmAccountingLedger",
    "SURCHARGE_STATE",
]

#: Pseudo-state bucket for lump energy charged outside the piecewise
#: power model (the no-memory-server wake tax).  Keeping it a distinct
#: key makes ``sum(state_energy_j.values()) == total_joules()`` exact.
SURCHARGE_STATE = "surcharge"


class DecisionPlane(abc.ABC):
    """What the simulation engine may ask of a planner — nothing more.

    Implementations must be **draw-disciplined**: any randomness they
    use comes from streams handed to them at construction, never from
    module-level state, so a run remains a pure function of
    ``(config, policy, ensemble, seed)``.
    """

    @abc.abstractmethod
    def plan_exchanges(self) -> List[ExchangePlan]:
        """Periodic pass 1: idle consolidated full VMs to swap out."""

    @abc.abstractmethod
    def plan_consolidation(
        self, compact_consolidation: bool = True
    ) -> ConsolidationPlan:
        """Periodic pass 2: host vacations plus optional compaction."""

    @abc.abstractmethod
    def decide_activation(self, vm: VirtualMachine) -> ActivationDecision:
        """Resolve one idle-to-active transition."""

    @abc.abstractmethod
    def reroute_activation(self, vm: VirtualMachine) -> Optional[int]:
        """Fallback destination when the VM's home refuses to wake."""


class ManagerDecisionPlane(DecisionPlane):
    """The reference decision plane: a transparent manager facade.

    Every method delegates 1:1 to :class:`ClusterManager`, so the
    engine's decision sequence (and hence its RNG draw order) is
    byte-identical to the pre-split direct calls.
    """

    __slots__ = ("manager",)

    def __init__(self, manager: ClusterManager) -> None:
        self.manager = manager

    def plan_exchanges(self) -> List[ExchangePlan]:
        return self.manager.plan_exchanges()

    def plan_consolidation(
        self, compact_consolidation: bool = True
    ) -> ConsolidationPlan:
        return self.manager.plan_consolidation(
            compact_consolidation=compact_consolidation
        )

    def decide_activation(self, vm: VirtualMachine) -> ActivationDecision:
        return self.manager.decide_activation(vm)

    def reroute_activation(self, vm: VirtualMachine) -> Optional[int]:
        return self.manager.reroute_activation(vm)


class AccountingLedger(abc.ABC):
    """Everything the engine records about a day — and nothing it reads
    back to make decisions.

    The engine writes energy, state time, traffic, and counters through
    this interface only; decisions never depend on ledger state, so an
    alternative engine can batch or vectorize accounting freely without
    touching behaviour.
    """

    #: The run's traffic ledger (shared with the result object).
    traffic: TrafficLedger
    #: The run's migration/operation counters (shared with the result).
    counters: MigrationCounters
    #: The run's fault counters (shared with the result).
    faults: FaultCounters

    @abc.abstractmethod
    def set_power(self, entity: Hashable, watts: float, now: float) -> None:
        """Entity draws ``watts`` from ``now`` on (piecewise-constant)."""

    @abc.abstractmethod
    def add_energy(self, entity: Hashable, joules: float) -> None:
        """Charge a lump of energy outside the piecewise model."""

    @abc.abstractmethod
    def set_state(self, entity: Hashable, state: str, now: float) -> None:
        """Entity enters power ``state`` at ``now``."""

    @abc.abstractmethod
    def record_partial_migration(
        self, descriptor_mib: float, upload_mib: float
    ) -> None:
        """Charge one partial migration's descriptor + SAS upload."""

    @abc.abstractmethod
    def record_on_demand(self, demand_mib: float) -> None:
        """Charge one consolidation episode's demand-fault traffic."""

    @abc.abstractmethod
    def finish(self, horizon: float) -> None:
        """Close every open segment at the simulation horizon."""

    @abc.abstractmethod
    def total_joules(self) -> float:
        """Accumulated energy over all entities (after :meth:`finish`)."""

    @abc.abstractmethod
    def energy_joules(self, entity: Hashable) -> float:
        """Accumulated energy of one entity."""

    @abc.abstractmethod
    def state_duration(self, entity: Hashable, state: str) -> float:
        """Seconds ``entity`` spent in ``state``."""

    @abc.abstractmethod
    def state_time_s(self) -> Dict[str, float]:
        """Total seconds per power state, summed over all entities."""

    @abc.abstractmethod
    def state_energy_j(self) -> Dict[str, float]:
        """Energy per power state (plus :data:`SURCHARGE_STATE`)."""


class FarmAccountingLedger(AccountingLedger):
    """The reference accounting plane.

    Wraps the pre-split components — one :class:`EnergyAccountant`, one
    :class:`StateTimeTracker`, and the result's traffic/counter records
    — and forwards every write unchanged, so meter creation order and
    float summation order are exactly those of the direct calls it
    replaces.  On top it meters per-state energy: each entity carries a
    ``(state, watts, since)`` segment closed on every state or power
    edge, with the closed joules accumulated per state name.
    """

    __slots__ = (
        "result",
        "accountant",
        "tracker",
        "traffic",
        "counters",
        "faults",
        "_segments",
        "_state_energy",
    )

    def __init__(self, result: FarmResult) -> None:
        self.result = result
        self.accountant = EnergyAccountant()
        self.tracker = StateTimeTracker()
        self.traffic = result.traffic
        self.counters = result.counters
        self.faults = result.faults
        #: entity -> [state-or-None, watts, since]; a list, not a tuple,
        #: because the hot path updates it in place.
        self._segments: Dict[Hashable, List] = {}
        self._state_energy: Dict[str, float] = {}

    # -- energy ---------------------------------------------------------

    def set_power(self, entity: Hashable, watts: float, now: float) -> None:
        self.accountant.set_power(entity, watts, now)
        segment = self._segments.get(entity)
        if segment is None:
            self._segments[entity] = [None, watts, now]
            return
        self._close_segment(segment, now)
        segment[1] = watts

    def add_energy(self, entity: Hashable, joules: float) -> None:
        self.accountant.add_energy(entity, joules)
        self._state_energy[SURCHARGE_STATE] = (
            self._state_energy.get(SURCHARGE_STATE, 0.0) + joules
        )

    def set_state(self, entity: Hashable, state: str, now: float) -> None:
        self.tracker.set_state(entity, state, now)
        segment = self._segments.get(entity)
        if segment is None:
            self._segments[entity] = [state, 0.0, now]
            return
        self._close_segment(segment, now)
        segment[0] = state

    def _close_segment(self, segment: List, now: float) -> None:
        state, watts, since = segment
        if state is not None and now > since:
            self._state_energy[state] = (
                self._state_energy.get(state, 0.0) + watts * (now - since)
            )
        segment[2] = now

    # -- traffic --------------------------------------------------------

    def record_partial_migration(
        self, descriptor_mib: float, upload_mib: float
    ) -> None:
        # Direct backing-list writes (the sampled volumes are floored at
        # a tenth of their positive means upstream, so the ``add``
        # negativity check cannot fire) — byte- and cost-identical to
        # the inlined hot-path writes this method absorbed.
        ledger = self.traffic
        mib = ledger._mib
        events = ledger._events
        index = TrafficCategory.PARTIAL_DESCRIPTOR.ledger_index
        mib[index] += descriptor_mib
        events[index] += 1
        index = TrafficCategory.MEMORY_UPLOAD_SAS.ledger_index
        mib[index] += upload_mib
        events[index] += 1

    def record_on_demand(self, demand_mib: float) -> None:
        ledger = self.traffic
        index = TrafficCategory.ON_DEMAND_PAGES.ledger_index
        ledger._mib[index] += demand_mib
        ledger._events[index] += 1

    # -- lifecycle and read-back ---------------------------------------

    def finish(self, horizon: float) -> None:
        self.accountant.finish(horizon)
        self.tracker.finish(horizon)
        for entity in self._segments:
            self._close_segment(self._segments[entity], horizon)

    def total_joules(self) -> float:
        return self.accountant.total_joules()

    def energy_joules(self, entity: Hashable) -> float:
        return self.accountant.energy_joules(entity)

    def state_duration(self, entity: Hashable, state: str) -> float:
        return self.tracker.duration(entity, state)

    def state_time_s(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for (_entity, state), seconds in sorted(
            self.tracker._durations.items(),
            key=lambda item: (str(item[0][0]), item[0][1]),
        ):
            totals[state] = totals.get(state, 0.0) + seconds
        return dict(sorted(totals.items()))

    def state_energy_j(self) -> Dict[str, float]:
        return dict(sorted(self._state_energy.items()))
