"""Multi-run sweeps over the farm simulation (§5.3-5.6).

Each figure of the evaluation averages five runs per configuration; the
helpers here build the full batch of independent day-runs for a figure,
execute it through a :class:`~repro.farm.runner.SweepRunner` (serial by
default; pass a process-backend runner to parallelize), and aggregate
means and standard deviations, mirroring Figure 8's error bars.

Every helper accepts ``runner=``: the batch is handed over in one call,
so a process-backed runner overlaps *all* of a figure's runs, not just
the repetitions of one point.  Results are grouped back by sweep point
in spec order, which keeps the output byte-identical to the historical
serial implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, pstdev
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.strategies import PolicyLike, resolve_strategy, strategy_by_name
from repro.energy.profile import MemoryServerProfile
from repro.errors import ConfigError
from repro.farm.config import FarmConfig
from repro.farm.metrics import FarmResult
from repro.farm.runner import RunSpec, SweepRunner
from repro.faults.profile import FaultProfile
from repro.traces.model import DayType


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated savings of one configuration."""

    label: str
    mean_savings: float
    std_savings: float
    runs: int

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.mean_savings:.1%} "
            f"(+/- {self.std_savings:.1%}, n={self.runs})"
        )


def _default_runner(runner: Optional[SweepRunner]) -> SweepRunner:
    return runner if runner is not None else SweepRunner()


def _require_runs(runs: int) -> None:
    if runs < 1:
        raise ConfigError("need at least one run")


def repetition_specs(
    config: FarmConfig,
    policy: PolicyLike,
    day_type: DayType,
    runs: int = 5,
    base_seed: int = 0,
    label: str = "",
) -> List[RunSpec]:
    """The ``runs`` independent day-specs of one sweep point."""
    _require_runs(runs)
    return [
        RunSpec(config, policy, day_type, seed=base_seed + index, label=label)
        for index in range(runs)
    ]


def _aggregate(label: str, results: Sequence[FarmResult]) -> SweepPoint:
    savings = [result.savings_fraction for result in results]
    return SweepPoint(
        label=label,
        mean_savings=mean(savings),
        std_savings=pstdev(savings) if len(savings) > 1 else 0.0,
        runs=len(savings),
    )


def run_repetitions(
    config: FarmConfig,
    policy: PolicyLike,
    day_type: DayType,
    runs: int = 5,
    base_seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> List[FarmResult]:
    """Run ``runs`` independent days (fresh trace draw per run)."""
    specs = repetition_specs(config, policy, day_type, runs, base_seed)
    return _default_runner(runner).run_results(specs)


def average_savings(
    config: FarmConfig,
    policy: PolicyLike,
    day_type: DayType,
    runs: int = 5,
    base_seed: int = 0,
    label: Optional[str] = None,
    runner: Optional[SweepRunner] = None,
) -> SweepPoint:
    """Mean/stddev energy savings over repeated runs."""
    strategy = resolve_strategy(policy)
    results = run_repetitions(config, strategy, day_type, runs, base_seed,
                              runner=runner)
    return _aggregate(
        label if label is not None else f"{strategy.name}/{day_type.value}",
        results,
    )


def consolidation_host_sweep(
    config: FarmConfig,
    policies: Sequence[PolicyLike],
    day_type: DayType,
    consolidation_counts: Sequence[int] = (2, 4, 6, 8, 10, 12),
    runs: int = 5,
    base_seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, List[Tuple[int, SweepPoint]]]:
    """Figure 8: savings vs number of consolidation hosts per policy.

    ``policies`` is any mix of specs, registered strategies, or registry
    names — nothing here assumes the paper's four; the result dict is
    keyed by each strategy's display name.
    """
    _require_runs(runs)
    strategies = [resolve_strategy(policy) for policy in policies]
    specs: List[RunSpec] = []
    for strategy in strategies:
        for count in consolidation_counts:
            specs.extend(repetition_specs(
                config.with_overrides(consolidation_hosts=count),
                strategy,
                day_type,
                runs=runs,
                base_seed=base_seed,
                label=f"{strategy.name}/{count} consolidation hosts",
            ))
    results = _default_runner(runner).run_results(specs)
    sweep: Dict[str, List[Tuple[int, SweepPoint]]] = {}
    cursor = 0
    for strategy in strategies:
        series: List[Tuple[int, SweepPoint]] = []
        for count in consolidation_counts:
            chunk = results[cursor:cursor + runs]
            cursor += runs
            series.append((
                count,
                _aggregate(
                    f"{strategy.name}/{count} consolidation hosts", chunk
                ),
            ))
        sweep[strategy.name] = series
    return sweep


def memory_server_power_sweep(
    config: FarmConfig,
    policy: PolicyLike,
    watts_options: Sequence[float] = (42.2, 16.0, 8.0, 4.0, 2.0, 1.0),
    runs: int = 5,
    base_seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> List[Tuple[float, SweepPoint, SweepPoint]]:
    """Table 3: weekday and weekend savings per memory-server design."""
    _require_runs(runs)
    specs: List[RunSpec] = []
    for watts in watts_options:
        variant = config.with_overrides(
            memory_server=MemoryServerProfile.alternative(watts)
        )
        for day_type in (DayType.WEEKDAY, DayType.WEEKEND):
            specs.extend(repetition_specs(
                variant, policy, day_type, runs=runs, base_seed=base_seed,
                label=f"{watts} W {day_type.value}",
            ))
    results = _default_runner(runner).run_results(specs)
    rows: List[Tuple[float, SweepPoint, SweepPoint]] = []
    cursor = 0
    for watts in watts_options:
        weekday = _aggregate(
            f"{watts} W weekday", results[cursor:cursor + runs]
        )
        cursor += runs
        weekend = _aggregate(
            f"{watts} W weekend", results[cursor:cursor + runs]
        )
        cursor += runs
        rows.append((watts, weekday, weekend))
    return rows


def fault_rate_sweep(
    config: FarmConfig,
    policy: PolicyLike,
    day_type: DayType,
    base_profile: Optional[FaultProfile] = None,
    scale_factors: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    runs: int = 5,
    base_seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> List[Tuple[float, SweepPoint, List[FarmResult]]]:
    """Graceful degradation: savings vs injected fault rate.

    Every fault probability of ``base_profile`` (default: the ``light``
    reference profile) is scaled by each factor; retry/abort semantics
    knobs stay fixed, so the curve isolates the failure *rate*.  The
    0.0 point is the fault-free control — identical traces and seeds,
    zero injections — making the rows directly comparable.  Raw results
    ride along so callers can aggregate fault counters, not just energy.
    """
    _require_runs(runs)
    profile = (
        base_profile if base_profile is not None else FaultProfile.light()
    )
    specs: List[RunSpec] = []
    labels: List[str] = []
    for factor in scale_factors:
        if factor < 0.0:
            raise ConfigError(
                f"fault scale factors must be non-negative, got {factor}"
            )
        label = f"{profile.name}x{factor:g}"
        labels.append(label)
        specs.extend(repetition_specs(
            config.with_overrides(faults=profile.scaled(factor, name=label)),
            policy, day_type, runs=runs, base_seed=base_seed, label=label,
        ))
    results = _default_runner(runner).run_results(specs)
    rows: List[Tuple[float, SweepPoint, List[FarmResult]]] = []
    for index, factor in enumerate(scale_factors):
        chunk = results[index * runs:(index + 1) * runs]
        rows.append((factor, _aggregate(labels[index], chunk), chunk))
    return rows


def cluster_shape_sweep(
    config: FarmConfig,
    policy: PolicyLike,
    day_type: DayType,
    shapes: Sequence[Tuple[int, int]] = (
        (30, 2), (30, 4), (30, 6), (30, 8), (30, 10), (30, 12),
        (20, 2), (20, 3), (20, 4),
        (18, 2), (18, 3), (18, 4),
        (15, 2), (15, 3), (15, 4),
        (10, 2), (10, 3), (10, 4),
    ),
    runs: int = 5,
    base_seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> List[Tuple[str, SweepPoint]]:
    """Figure 12: vary home/consolidation host counts at a fixed 900 VMs.

    The total VM population stays constant, so the per-host VM count (and
    the hosts' memory capacity, which scales with it) changes with the
    number of home hosts — e.g. 20 home hosts means 45 VMs per host.
    """
    _require_runs(runs)
    total_vms = config.total_vms
    specs: List[RunSpec] = []
    labels: List[str] = []
    for home_hosts, consolidation_hosts in shapes:
        if total_vms % home_hosts != 0:
            raise ConfigError(
                f"{total_vms} VMs do not divide over {home_hosts} home hosts"
            )
        shaped = config.with_overrides(
            home_hosts=home_hosts,
            consolidation_hosts=consolidation_hosts,
            vms_per_host=total_vms // home_hosts,
            host_capacity_mib=None,
        )
        label = f"{home_hosts}+{consolidation_hosts}"
        labels.append(label)
        specs.extend(repetition_specs(
            shaped, policy, day_type, runs=runs, base_seed=base_seed,
            label=label,
        ))
    results = _default_runner(runner).run_results(specs)
    rows: List[Tuple[str, SweepPoint]] = []
    for index, label in enumerate(labels):
        chunk = results[index * runs:(index + 1) * runs]
        rows.append((label, _aggregate(label, chunk)))
    return rows


def gamma_sweep(
    config: FarmConfig,
    gammas: Sequence[int],
    day_type: DayType,
    baselines: Sequence[PolicyLike] = (),
    runs: int = 5,
    base_seed: int = 0,
    runner: Optional[SweepRunner] = None,
) -> List[Tuple[str, SweepPoint]]:
    """Γ-robustness sweep: baselines side by side with ``GammaRobust@Γ``.

    Each baseline policy and each ``GammaRobust`` instantiation runs the
    same ``runs`` seeded days on the same ``config`` (fault injection
    rides along through ``config.faults``), so the rows isolate the
    packing policy.  Robust instantiations are resolved through the
    strategy registry by name, exactly as the CLI would.
    """
    _require_runs(runs)
    strategies = [resolve_strategy(policy) for policy in baselines]
    for gamma in gammas:
        if gamma < 0:
            raise ConfigError(
                f"gamma values must be non-negative, got {gamma}"
            )
        strategies.append(strategy_by_name(f"GammaRobust@{int(gamma)}"))
    specs: List[RunSpec] = []
    for strategy in strategies:
        specs.extend(repetition_specs(
            config, strategy, day_type, runs=runs, base_seed=base_seed,
            label=strategy.name,
        ))
    results = _default_runner(runner).run_results(specs)
    rows: List[Tuple[str, SweepPoint]] = []
    for index, strategy in enumerate(strategies):
        chunk = results[index * runs:(index + 1) * runs]
        rows.append((strategy.name, _aggregate(strategy.name, chunk)))
    return rows
