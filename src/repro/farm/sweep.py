"""Multi-run sweeps over the farm simulation (§5.3-5.6).

Each figure of the evaluation averages five runs per configuration; the
helpers here run those repetitions with independent trace draws and
return means and standard deviations, mirroring Figure 8's error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, pstdev
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import PolicySpec
from repro.energy.profile import MemoryServerProfile
from repro.errors import ConfigError
from repro.farm.config import FarmConfig
from repro.farm.metrics import FarmResult
from repro.farm.simulation import simulate_day
from repro.traces.model import DayType


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated savings of one configuration."""

    label: str
    mean_savings: float
    std_savings: float
    runs: int

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.mean_savings:.1%} "
            f"(+/- {self.std_savings:.1%}, n={self.runs})"
        )


def run_repetitions(
    config: FarmConfig,
    policy: PolicySpec,
    day_type: DayType,
    runs: int = 5,
    base_seed: int = 0,
) -> List[FarmResult]:
    """Run ``runs`` independent days (fresh trace draw per run)."""
    if runs < 1:
        raise ConfigError("need at least one run")
    return [
        simulate_day(config, policy, day_type, seed=base_seed + index)
        for index in range(runs)
    ]


def average_savings(
    config: FarmConfig,
    policy: PolicySpec,
    day_type: DayType,
    runs: int = 5,
    base_seed: int = 0,
    label: Optional[str] = None,
) -> SweepPoint:
    """Mean/stddev energy savings over repeated runs."""
    results = run_repetitions(config, policy, day_type, runs, base_seed)
    savings = [result.savings_fraction for result in results]
    return SweepPoint(
        label=label if label is not None else f"{policy.name}/{day_type.value}",
        mean_savings=mean(savings),
        std_savings=pstdev(savings) if len(savings) > 1 else 0.0,
        runs=runs,
    )


def consolidation_host_sweep(
    config: FarmConfig,
    policies: Sequence[PolicySpec],
    day_type: DayType,
    consolidation_counts: Sequence[int] = (2, 4, 6, 8, 10, 12),
    runs: int = 5,
    base_seed: int = 0,
) -> Dict[str, List[Tuple[int, SweepPoint]]]:
    """Figure 8: savings vs number of consolidation hosts per policy."""
    sweep: Dict[str, List[Tuple[int, SweepPoint]]] = {}
    for policy in policies:
        series: List[Tuple[int, SweepPoint]] = []
        for count in consolidation_counts:
            point = average_savings(
                config.with_overrides(consolidation_hosts=count),
                policy,
                day_type,
                runs=runs,
                base_seed=base_seed,
                label=f"{policy.name}/{count} consolidation hosts",
            )
            series.append((count, point))
        sweep[policy.name] = series
    return sweep


def memory_server_power_sweep(
    config: FarmConfig,
    policy: PolicySpec,
    watts_options: Sequence[float] = (42.2, 16.0, 8.0, 4.0, 2.0, 1.0),
    runs: int = 5,
    base_seed: int = 0,
) -> List[Tuple[float, SweepPoint, SweepPoint]]:
    """Table 3: weekday and weekend savings per memory-server design."""
    rows: List[Tuple[float, SweepPoint, SweepPoint]] = []
    for watts in watts_options:
        variant = config.with_overrides(
            memory_server=MemoryServerProfile.alternative(watts)
        )
        weekday = average_savings(
            variant, policy, DayType.WEEKDAY, runs=runs, base_seed=base_seed,
            label=f"{watts} W weekday",
        )
        weekend = average_savings(
            variant, policy, DayType.WEEKEND, runs=runs, base_seed=base_seed,
            label=f"{watts} W weekend",
        )
        rows.append((watts, weekday, weekend))
    return rows


def cluster_shape_sweep(
    config: FarmConfig,
    policy: PolicySpec,
    day_type: DayType,
    shapes: Sequence[Tuple[int, int]] = (
        (30, 2), (30, 4), (30, 6), (30, 8), (30, 10), (30, 12),
        (20, 2), (20, 3), (20, 4),
        (18, 2), (18, 3), (18, 4),
        (15, 2), (15, 3), (15, 4),
        (10, 2), (10, 3), (10, 4),
    ),
    runs: int = 5,
    base_seed: int = 0,
) -> List[Tuple[str, SweepPoint]]:
    """Figure 12: vary home/consolidation host counts at a fixed 900 VMs.

    The total VM population stays constant, so the per-host VM count (and
    the hosts' memory capacity, which scales with it) changes with the
    number of home hosts — e.g. 20 home hosts means 45 VMs per host.
    """
    total_vms = config.total_vms
    rows: List[Tuple[str, SweepPoint]] = []
    for home_hosts, consolidation_hosts in shapes:
        if total_vms % home_hosts != 0:
            raise ConfigError(
                f"{total_vms} VMs do not divide over {home_hosts} home hosts"
            )
        shaped = config.with_overrides(
            home_hosts=home_hosts,
            consolidation_hosts=consolidation_hosts,
            vms_per_host=total_vms // home_hosts,
            host_capacity_mib=None,
        )
        label = f"{home_hosts}+{consolidation_hosts}"
        point = average_savings(
            shaped, policy, day_type, runs=runs, base_seed=base_seed,
            label=label,
        )
        rows.append((label, point))
    return rows
