"""Configuration of one simulated VDI farm (§5.1).

Defaults reproduce the paper's standard setup: a 42U rack with 30 home
hosts of 30 VMs each (900 VMs total), four consolidation hosts (the knee
of Figure 8), 4 GiB per VM, Table 1 power profiles, and the §5.1
migration constants.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.core.placement import DestinationStrategy
from repro.energy.profile import HostPowerProfile, MemoryServerProfile
from repro.errors import ConfigError
from repro.faults.profile import FaultProfile
from repro.migration.costs import MigrationCostModel
from repro.traces.generator import TraceGeneratorConfig
from repro.units import DEFAULT_VM_MEMORY_MIB, TRACE_INTERVAL_SECONDS
from repro.vm.workingset import WorkingSetSampler


@dataclass(frozen=True)
class FarmConfig:
    """Everything that defines one farm simulation besides policy/traces."""

    # -- cluster shape ---------------------------------------------------
    home_hosts: int = 30
    consolidation_hosts: int = 4
    vms_per_host: int = 30
    vm_memory_mib: float = DEFAULT_VM_MEMORY_MIB
    #: Host memory available to VMs; defaults to exactly the home-host
    #: complement (``vms_per_host * vm_memory_mib``), mirroring the
    #: paper's memory-limited consolidation assumption and its Figure 12
    #: sweep, where per-host capacity scales with VMs per host.
    host_capacity_mib: Optional[float] = None
    #: Memory over-commitment factor from ballooning and page
    #: de-duplication.  The paper's assumption 1 quotes 1.5x as what
    #: "sophisticated memory sharing techniques" achieve; the default
    #: 1.0 matches the paper's conservative simulation.  Applied as a
    #: multiplier on every host's effective VM capacity.
    memory_overcommit: float = 1.0

    # -- hardware models ----------------------------------------------------
    host_power: HostPowerProfile = field(default_factory=HostPowerProfile)
    memory_server: MemoryServerProfile = field(
        default_factory=MemoryServerProfile.prototype
    )
    costs: MigrationCostModel = field(default_factory=MigrationCostModel)
    working_sets: WorkingSetSampler = field(default_factory=WorkingSetSampler)

    # -- manager behaviour ----------------------------------------------------
    #: Consecutive idle intervals before a VM is eligible for partial
    #: consolidation (hysteresis; the paper consolidates at the first
    #: idle planning interval).
    min_idle_intervals: int = 1
    #: Seconds between planning passes; must be a multiple of the
    #: 5-minute trace interval.
    planning_interval_s: float = TRACE_INTERVAL_SECONDS
    placement_strategy: DestinationStrategy = DestinationStrategy.RANDOM
    #: Let the planner also empty lightly-loaded powered consolidation
    #: hosts into their peers so they can sleep (the §3.1 objective is
    #: minimizing *all* powered hosts; relocating a partial VM between
    #: consolidation hosts only moves its descriptor and working set).
    compact_consolidation_hosts: bool = True
    #: Idle working-set growth while consolidated, MiB per hour (0
    #: disables the §3.2 growth-exhaustion path).
    working_set_growth_mib_per_h: float = 0.0

    # -- memory-server presence (§3.3 ablation) ---------------------------
    #: With the low-power memory server removed (the Jettison design),
    #: a sleeping home host must wake up to serve every page-request
    #: burst from its consolidated partial VMs — §2 shows this destroys
    #: sleep once several VMs share a home.  Disable to quantify what
    #: the memory server is worth at cluster scale.
    memory_server_present: bool = True
    #: Mean gap between page-request bursts per consolidated partial VM
    #: (seconds); only used when the memory server is absent.  Partial
    #: VMs hold their working sets, so this is sparser than Figure 2's
    #: raw request streams.
    idle_page_request_gap_s: float = 120.0

    # -- fault injection ---------------------------------------------------
    #: Per-exposure failure rates for migrations, host wakes, memory
    #: servers, and page fetches.  The default null profile injects
    #: nothing and reproduces fault-free runs byte-for-byte.
    faults: FaultProfile = field(default_factory=FaultProfile.none)

    # -- trace model ---------------------------------------------------------
    traces: TraceGeneratorConfig = field(default_factory=TraceGeneratorConfig)
    #: Activation instants are jittered uniformly within the 5-minute
    #: interval in which the trace marks the user active.
    activation_jitter_s: float = TRACE_INTERVAL_SECONDS

    def __post_init__(self) -> None:
        if self.home_hosts <= 0 or self.consolidation_hosts <= 0:
            raise ConfigError("host counts must be positive")
        if self.vms_per_host <= 0:
            raise ConfigError("vms_per_host must be positive")
        if self.vm_memory_mib <= 0.0:
            raise ConfigError("vm_memory_mib must be positive")
        if self.host_capacity_mib is not None and self.host_capacity_mib <= 0.0:
            raise ConfigError("host_capacity_mib must be positive")
        if self.min_idle_intervals < 1:
            raise ConfigError("min_idle_intervals must be >= 1")
        remainder = self.planning_interval_s % TRACE_INTERVAL_SECONDS
        if self.planning_interval_s <= 0 or abs(remainder) > 1e-9:
            raise ConfigError(
                "planning_interval_s must be a positive multiple of "
                f"{TRACE_INTERVAL_SECONDS:.0f} s"
            )
        if not 0.0 < self.activation_jitter_s <= TRACE_INTERVAL_SECONDS:
            raise ConfigError(
                "activation_jitter_s must be in (0, "
                f"{TRACE_INTERVAL_SECONDS:.0f}]"
            )
        if self.working_set_growth_mib_per_h < 0.0:
            raise ConfigError("working-set growth must be non-negative")
        if self.idle_page_request_gap_s <= 0.0:
            raise ConfigError("idle_page_request_gap_s must be positive")
        if not 1.0 <= self.memory_overcommit <= 2.0:
            raise ConfigError(
                "memory_overcommit must be in [1.0, 2.0] (the paper "
                "quotes 1.5x as the safe ceiling)"
            )

    # -- derived quantities ------------------------------------------------

    @property
    def total_vms(self) -> int:
        return self.home_hosts * self.vms_per_host

    @property
    def capacity_mib(self) -> float:
        """Effective per-host capacity (explicit or derived), scaled by
        the over-commitment factor."""
        if self.host_capacity_mib is not None:
            return self.host_capacity_mib * self.memory_overcommit
        return self.vms_per_host * self.vm_memory_mib * self.memory_overcommit

    def with_overrides(self, **changes) -> "FarmConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return dataclasses.replace(self, **changes)
