"""Hierarchical multi-zone simulation: the global/local manager split.

One :class:`~repro.farm.simulation.FarmSimulation` is the largest unit
of work the simulator offers — fine for the paper's 900-VM rack, a
ceiling for "millions of users".  This module breaks that ceiling the
way production consolidation managers do (OpenStack Neat's global/local
split): partition the farm into independent *availability zones*, run
each zone as its own farm simulation — an independent shard on the
:class:`~repro.farm.runner.SweepRunner` process backend — and put a
thin :class:`GlobalController` above the shards for cross-zone VM
admission, zone-level power budgeting, and aggregation of the per-zone
results into one :class:`ZonedFarmResult`.

Determinism contract
--------------------
* The VM→zone assignment is a pure function of
  ``(master seed, home_hosts, zones)``: home hosts are shuffled by a
  ``random.Random`` seeded with ``derive_seed(seed, "zones.assignment")``
  and dealt into balanced contiguous chunks; VMs follow their home
  host.  No other stream observes these draws.
* Zone ``k`` simulates with seed ``derive_seed(seed, "zone.k")`` — the
  same stream-derivation scheme every other substream uses — so shards
  are mutually independent and individually reproducible.
* The single-zone partition is the **identity transform**: zone 0 keeps
  the master seed and every host, so a ``zones=1`` run is byte-identical
  to the unsharded simulator (``tests/test_farm_zones.py`` pins this
  differentially, and the CLI goldens pin the printed output).

Aggregation invariants (all test-pinned): every VM lands in exactly one
zone; per-zone managed/baseline energies sum *exactly* (same floats,
same order) to the aggregate :class:`~repro.energy.report.EnergyReport`;
migration/fault counters and the traffic ledger are field-wise sums;
the per-interval time series are element-wise sums over shards that
share the same 288 sampling instants.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.strategies import PolicyLike
from repro.energy.report import EnergyReport
from repro.errors import ConfigError, SimulationError
from repro.farm.config import FarmConfig
from repro.farm.metrics import DelaySample, FarmResult, MigrationCounters
from repro.farm.runner import RunOutcome, RunSpec, SweepRunner
from repro.faults.model import FaultCounters
from repro.migration.traffic import TrafficLedger
from repro.obs.events import CAT_ZONE
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulator.randomness import derive_seed
from repro.traces.model import DayType

__all__ = [
    "ZonePartition",
    "ZoneBudget",
    "ZonedFarmResult",
    "GlobalController",
    "build_partition",
    "zone_run_specs",
    "simulate_zoned_day",
]


# ----------------------------------------------------------------------
# the partition
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ZonePartition:
    """A deterministic assignment of the farm's hosts (and therefore
    VMs) to availability zones.

    ``home_host_ids[k]`` lists zone ``k``'s home hosts by *global* id,
    sorted ascending, so local home index ``i`` within the zone maps to
    global id ``home_host_ids[k][i]`` — the remap every aggregation
    step uses.  ``consolidation_host_ids[k]`` records the global
    consolidation hosts (ids ``home_hosts ..``) the zone owns.  Zones
    may be empty (``zones > home_hosts``); empty zones own no hosts and
    simulate nothing.
    """

    zones: int
    seed: int
    vms_per_host: int
    home_host_ids: Tuple[Tuple[int, ...], ...]
    consolidation_host_ids: Tuple[Tuple[int, ...], ...]

    @property
    def total_home_hosts(self) -> int:
        return sum(len(ids) for ids in self.home_host_ids)

    @property
    def total_vms(self) -> int:
        return self.total_home_hosts * self.vms_per_host

    @property
    def nonempty_zones(self) -> Tuple[int, ...]:
        """Indices of zones that own at least one home host."""
        return tuple(
            zone for zone in range(self.zones) if self.home_host_ids[zone]
        )

    def is_empty(self, zone: int) -> bool:
        return not self.home_host_ids[zone]

    def zone_seed(self, zone: int) -> int:
        """The shard's master seed.

        A single-zone partition is the identity transform, so it keeps
        the farm's master seed (byte-identity with the unsharded
        simulator); with more zones each shard derives its own
        substream seed.
        """
        if self.zones == 1:
            return self.seed
        return derive_seed(self.seed, f"zone.{zone}")

    def zone_vm_ids(self, zone: int) -> Tuple[int, ...]:
        """The zone's VMs by *global* id (grouped by home host)."""
        return tuple(
            home * self.vms_per_host + offset
            for home in self.home_host_ids[zone]
            for offset in range(self.vms_per_host)
        )

    def vm_zone(self, vm_id: int) -> int:
        """Which zone owns the VM with the given global id."""
        home = vm_id // self.vms_per_host
        for zone, homes in enumerate(self.home_host_ids):
            if home in homes:
                return zone
        raise ConfigError(f"VM {vm_id} belongs to no zone")

    def global_vm_id(self, zone: int, local_vm_id: int) -> int:
        """Map a shard-local VM id back to the farm-global id."""
        local_home, offset = divmod(local_vm_id, self.vms_per_host)
        return (
            self.home_host_ids[zone][local_home] * self.vms_per_host + offset
        )

    def global_home_id(self, zone: int, local_home_id: int) -> int:
        """Map a shard-local home-host id back to the farm-global id."""
        return self.home_host_ids[zone][local_home_id]

    def zone_config(self, zone: int, base: FarmConfig) -> Optional[FarmConfig]:
        """The shard's farm config, or ``None`` for an empty zone."""
        homes = self.home_host_ids[zone]
        if not homes:
            return None
        return base.with_overrides(
            home_hosts=len(homes),
            consolidation_hosts=len(self.consolidation_host_ids[zone]),
        )


def build_partition(
    config: FarmConfig, zones: int, seed: int
) -> ZonePartition:
    """Partition ``config``'s hosts into ``zones`` availability zones.

    Home hosts are shuffled by a seeded stream and dealt into balanced
    contiguous chunks (the first ``home_hosts % zones`` zones take one
    extra); each zone's list is then sorted so local indices map
    monotonically to global ids.  Consolidation hosts are dealt the
    same way across the non-empty zones, which each need at least one —
    hence ``consolidation_hosts >= min(zones, home_hosts)``.
    """
    if zones < 1:
        raise ConfigError(f"zones must be >= 1, got {zones}")
    order = list(range(config.home_hosts))
    random.Random(derive_seed(seed, "zones.assignment")).shuffle(order)
    base, extra = divmod(config.home_hosts, zones)
    homes: List[Tuple[int, ...]] = []
    cursor = 0
    for zone in range(zones):
        size = base + (1 if zone < extra else 0)
        homes.append(tuple(sorted(order[cursor:cursor + size])))
        cursor += size
    nonempty = [zone for zone in range(zones) if homes[zone]]
    if config.consolidation_hosts < len(nonempty):
        raise ConfigError(
            f"{len(nonempty)} non-empty zones need at least one "
            f"consolidation host each; config has "
            f"{config.consolidation_hosts}"
        )
    cons: List[Tuple[int, ...]] = [() for _ in range(zones)]
    cons_base, cons_extra = divmod(config.consolidation_hosts, len(nonempty))
    next_id = config.home_hosts
    for rank, zone in enumerate(nonempty):
        count = cons_base + (1 if rank < cons_extra else 0)
        cons[zone] = tuple(range(next_id, next_id + count))
        next_id += count
    return ZonePartition(
        zones=zones,
        seed=seed,
        vms_per_host=config.vms_per_host,
        home_host_ids=tuple(homes),
        consolidation_host_ids=tuple(cons),
    )


def zone_run_specs(
    partition: ZonePartition,
    config: FarmConfig,
    policy: PolicyLike,
    day_type: DayType,
) -> List[Tuple[int, RunSpec]]:
    """One :class:`RunSpec` per non-empty zone, in zone order."""
    specs: List[Tuple[int, RunSpec]] = []
    for zone in partition.nonempty_zones:
        zone_config = partition.zone_config(zone, config)
        assert zone_config is not None  # non-empty by construction
        specs.append((
            zone,
            RunSpec(
                config=zone_config,
                policy=policy,
                day_type=day_type,
                seed=partition.zone_seed(zone),
                label=f"zone-{zone}",
            ),
        ))
    return specs


# ----------------------------------------------------------------------
# power budgeting
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ZoneBudget:
    """One zone's share of the farm-level power budget, with actuals."""

    zone: int
    #: Worst-case draw: every host powered with its full VM complement,
    #: plus the zone's memory servers (when present).
    peak_demand_w: float
    #: The share of the farm budget granted to the zone (proportional
    #: to peak demand).
    share_w: float
    #: Mean measured power over the simulated day (managed energy /
    #: horizon); 0.0 for an empty zone.
    mean_power_w: float

    @property
    def within_budget(self) -> bool:
        return self.mean_power_w <= self.share_w + 1e-9

    @property
    def utilization(self) -> float:
        """Measured mean power as a fraction of the granted share."""
        if self.share_w <= 0.0:
            return 0.0
        return self.mean_power_w / self.share_w


def _zone_peak_demand_w(config: FarmConfig, zone_config: FarmConfig) -> float:
    """Worst-case steady-state draw of one zone's hosts."""
    hosts = zone_config.home_hosts + zone_config.consolidation_hosts
    per_host_w = config.host_power.powered_watts(
        full_vms=config.vms_per_host
    )
    if config.memory_server_present:
        per_host_w += config.memory_server.total_w
    return hosts * per_host_w


# ----------------------------------------------------------------------
# the zoned result
# ----------------------------------------------------------------------


@dataclass
class ZonedFarmResult:
    """A sharded day: per-zone results plus the farm-wide aggregate.

    ``aggregate`` is a plain :class:`FarmResult` whose fields are exact
    sums/merges of the shards (delay samples and home-sleep keys
    remapped back to farm-global ids), so every FarmResult consumer —
    the CLI printer, the figure readers, the golden snapshots — works
    unchanged on a zoned run.
    """

    partition: ZonePartition
    aggregate: FarmResult
    #: One entry per zone, ``None`` for empty zones.
    zone_outcomes: Tuple[Optional[RunOutcome], ...]
    budgets: Tuple[ZoneBudget, ...]
    #: The farm-level budget the shares were carved from (``None`` when
    #: no cap was requested: shares default to peak demand).
    budget_w: Optional[float] = None

    @property
    def zones(self) -> int:
        return self.partition.zones

    @property
    def zone_results(self) -> Tuple[Optional[FarmResult], ...]:
        return tuple(
            outcome.result if outcome is not None else None
            for outcome in self.zone_outcomes
        )

    @property
    def savings_fraction(self) -> float:
        return self.aggregate.savings_fraction

    @property
    def energy(self) -> EnergyReport:
        return self.aggregate.energy

    def zone_managed_joules(self) -> List[float]:
        """Per-zone managed energy, 0.0 for empty zones (test anchor:
        ``sum()`` of this list equals the aggregate exactly)."""
        return [
            outcome.result.energy.managed_joules if outcome else 0.0
            for outcome in self.zone_outcomes
        ]

    def __repr__(self) -> str:
        shards = sum(1 for o in self.zone_outcomes if o is not None)
        return (
            f"<ZonedFarmResult zones={self.zones} shards={shards} "
            f"savings={self.aggregate.savings_fraction:.1%}>"
        )


def _sum_dataclass(template, parts):
    """Field-wise sum of plain counter dataclasses (same type)."""
    fields = dataclasses.fields(template)
    return type(template)(**{
        f.name: sum(getattr(part, f.name) for part in parts)
        for f in fields
    })


def _aggregate_results(
    partition: ZonePartition,
    seed: int,
    ordered: Sequence[Tuple[int, FarmResult]],
) -> FarmResult:
    """Fold the per-zone results into one farm-global FarmResult."""
    results = [result for _zone, result in ordered]
    first = results[0]
    for result in results[1:]:
        if len(result.sample_times_s) != len(first.sample_times_s):
            raise SimulationError(
                "zones disagree on sample count: "
                f"{len(result.sample_times_s)} vs "
                f"{len(first.sample_times_s)}"
            )
    energy = EnergyReport(
        managed_joules=sum(r.energy.managed_joules for r in results),
        baseline_joules=sum(r.energy.baseline_joules for r in results),
        fault_events=sum(r.energy.fault_events for r in results),
        fault_retries=sum(r.energy.fault_retries for r in results),
        fault_rollbacks=sum(r.energy.fault_rollbacks for r in results),
    )
    counters = _sum_dataclass(MigrationCounters(), [r.counters for r in results])
    faults = _sum_dataclass(FaultCounters(), [r.faults for r in results])
    traffic = TrafficLedger()
    for result in results:
        traffic.merge(result.traffic)
    delays = [
        DelaySample(
            time_s=sample.time_s,
            vm_id=partition.global_vm_id(zone, sample.vm_id),
            delay_s=sample.delay_s,
            action=sample.action,
        )
        for zone, result in ordered
        for sample in result.delays
    ]
    home_sleep_s: Dict[int, float] = {}
    for zone, result in ordered:
        for local_id, slept in result.home_sleep_s.items():
            home_sleep_s[partition.global_home_id(zone, local_id)] = slept
    state_time_s: Dict[str, float] = {}
    state_energy_j: Dict[str, float] = {}
    for result in results:
        for state, seconds in result.state_time_s.items():
            state_time_s[state] = state_time_s.get(state, 0.0) + seconds
        for state, joules in result.state_energy_j.items():
            state_energy_j[state] = (
                state_energy_j.get(state, 0.0) + joules
            )
    return FarmResult(
        policy_name=first.policy_name,
        day_type=first.day_type,
        seed=seed,
        horizon_s=first.horizon_s,
        sample_times_s=list(first.sample_times_s),
        active_vms=[sum(vals) for vals in zip(*(r.active_vms for r in results))],
        powered_hosts=[
            sum(vals) for vals in zip(*(r.powered_hosts for r in results))
        ],
        powered_home_hosts=[
            sum(vals) for vals in zip(*(r.powered_home_hosts for r in results))
        ],
        powered_consolidation_hosts=[
            sum(vals)
            for vals in zip(*(r.powered_consolidation_hosts for r in results))
        ],
        consolidation_ratio_samples=[
            sample
            for result in results
            for sample in result.consolidation_ratio_samples
        ],
        delays=delays,
        traffic=traffic,
        counters=counters,
        faults=faults,
        energy=energy,
        home_sleep_s=home_sleep_s,
        state_time_s=dict(sorted(state_time_s.items())),
        state_energy_j=dict(sorted(state_energy_j.items())),
    )


# ----------------------------------------------------------------------
# the global controller
# ----------------------------------------------------------------------


class GlobalController:
    """The thin cross-zone manager above the per-zone shards.

    Responsibilities (and nothing more — each zone's consolidation
    decisions stay entirely inside its own ``FarmSimulation``):

    * **admission** — every VM is admitted to exactly one zone, and no
      zone is asked to host more VMs than its home hosts carry;
    * **budgeting** — the farm power budget is carved into per-zone
      shares proportional to worst-case demand, and measured mean power
      is reported against each share after the run;
    * **aggregation** — per-zone results fold into one farm-global
      :class:`FarmResult` (see :func:`_aggregate_results`).

    When a tracer is supplied the controller emits zone-tagged
    coordination events (category ``"zone"``): ``zone.partition`` per
    zone before the run, ``zone.shard_done`` per shard and one
    ``zone.aggregate`` after it.  Shards run in worker processes, so
    their internal events are not streamed; trace a single-zone run for
    full fidelity.
    """

    def __init__(
        self,
        config: FarmConfig,
        policy: PolicyLike,
        day_type: DayType,
        zones: int = 1,
        seed: int = 0,
        budget_w: Optional[float] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if budget_w is not None and budget_w <= 0.0:
            raise ConfigError(f"budget_w must be positive, got {budget_w}")
        self.config = config
        self.policy = policy
        self.day_type = day_type
        self.seed = seed
        self.budget_w = budget_w
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.partition = build_partition(config, zones, seed)

    # -- admission -----------------------------------------------------

    def check_admission(self) -> None:
        """Prove every VM is admitted to exactly one zone."""
        partition = self.partition
        seen: Dict[int, int] = {}
        for zone in range(partition.zones):
            vm_ids = partition.zone_vm_ids(zone)
            capacity = (
                len(partition.home_host_ids[zone]) * partition.vms_per_host
            )
            if len(vm_ids) != capacity:
                raise SimulationError(
                    f"zone {zone} admits {len(vm_ids)} VMs but its homes "
                    f"carry {capacity}"
                )
            for vm_id in vm_ids:
                if vm_id in seen:
                    raise SimulationError(
                        f"VM {vm_id} admitted to zones {seen[vm_id]} "
                        f"and {zone}"
                    )
                seen[vm_id] = zone
        expected = set(range(self.config.total_vms))
        if set(seen) != expected:
            missing = sorted(expected - set(seen))
            suffix = "..." if len(missing) > 10 else ""
            raise SimulationError(
                f"admission lost VMs: {missing[:10]}{suffix}"
            )

    # -- budgeting -----------------------------------------------------

    def _peak_demands(self) -> List[float]:
        demands = []
        for zone in range(self.partition.zones):
            zone_config = self.partition.zone_config(zone, self.config)
            demands.append(
                _zone_peak_demand_w(self.config, zone_config)
                if zone_config is not None else 0.0
            )
        return demands

    def allocate_budget(self) -> List[float]:
        """Per-zone power shares (watts), proportional to peak demand."""
        demands = self._peak_demands()
        if self.budget_w is None:
            return demands
        total = sum(demands)
        if total <= 0.0:
            return demands
        return [self.budget_w * demand / total for demand in demands]

    # -- execution -----------------------------------------------------

    def run(self, runner: Optional[SweepRunner] = None) -> ZonedFarmResult:
        """Simulate every shard and aggregate; the whole zoned day."""
        runner = runner if runner is not None else SweepRunner()
        partition = self.partition
        self.check_admission()
        shares = self.allocate_budget()
        demands = self._peak_demands()
        if self.tracer.enabled:
            for zone in range(partition.zones):
                self.tracer.event(
                    "zone.partition", CAT_ZONE,
                    zone=zone,
                    home_hosts=len(partition.home_host_ids[zone]),
                    consolidation_hosts=len(
                        partition.consolidation_host_ids[zone]
                    ),
                    vms=len(partition.home_host_ids[zone])
                    * partition.vms_per_host,
                    seed=partition.zone_seed(zone),
                    budget_share_w=shares[zone],
                )
        specs = zone_run_specs(
            partition, self.config, self.policy, self.day_type
        )
        outcomes = runner.run([spec for _zone, spec in specs])
        by_zone: Dict[int, RunOutcome] = {
            zone: outcome
            for (zone, _spec), outcome in zip(specs, outcomes)
        }
        ordered = [
            (zone, by_zone[zone].result) for zone in partition.nonempty_zones
        ]
        aggregate = _aggregate_results(partition, self.seed, ordered)
        budgets = tuple(
            ZoneBudget(
                zone=zone,
                peak_demand_w=demands[zone],
                share_w=shares[zone],
                mean_power_w=(
                    by_zone[zone].result.energy.managed_joules
                    / by_zone[zone].result.horizon_s
                    if zone in by_zone else 0.0
                ),
            )
            for zone in range(partition.zones)
        )
        if self.tracer.enabled:
            self.tracer.set_clock(lambda: aggregate.horizon_s)
            for zone, result in ordered:
                # No worker attribution: RunOutcome.worker is a pid and
                # which process ran which shard is scheduling-dependent;
                # trace files must stay reproducible for a given seed.
                self.tracer.event(
                    "zone.shard_done", CAT_ZONE,
                    zone=zone,
                    savings_fraction=result.savings_fraction,
                    managed_joules=result.energy.managed_joules,
                )
            self.tracer.event(
                "zone.aggregate", CAT_ZONE,
                zones=partition.zones,
                shards=len(ordered),
                savings_fraction=aggregate.savings_fraction,
                managed_joules=aggregate.energy.managed_joules,
            )
        return ZonedFarmResult(
            partition=partition,
            aggregate=aggregate,
            zone_outcomes=tuple(
                by_zone.get(zone) for zone in range(partition.zones)
            ),
            budgets=budgets,
            budget_w=self.budget_w,
        )


def simulate_zoned_day(
    config: FarmConfig,
    policy: PolicyLike,
    day_type: DayType,
    zones: int = 1,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
    budget_w: Optional[float] = None,
    tracer: Optional[Tracer] = None,
) -> ZonedFarmResult:
    """Partition the farm into ``zones`` shards, simulate each, and
    aggregate — the zoned counterpart of
    :func:`~repro.farm.simulation.simulate_day`.

    ``runner`` selects the execution backend (default: in-process
    serial); pass ``SweepRunner(backend="process", workers=N)`` to fan
    the shards out over worker processes.  A ``zones=1`` call is
    byte-identical to the unsharded simulator.
    """
    controller = GlobalController(
        config, policy, day_type,
        zones=zones, seed=seed, budget_w=budget_w, tracer=tracer,
    )
    return controller.run(runner=runner)
