"""Metrics collected by a farm run — one field per evaluation figure.

* Figure 7 — per-interval active-VM and powered-host time series;
* Figure 8 / 12 / Table 3 — the energy report;
* Figure 9 — per-interval per-consolidation-host VM counts;
* Figure 10 — the traffic ledger;
* Figure 11 — idle-to-active transition delay samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.energy.report import EnergyReport
from repro.errors import ConfigError
from repro.faults.model import FaultCounters
from repro.migration.traffic import TrafficLedger


@dataclass(frozen=True)
class DelaySample:
    """One idle-to-active transition and the delay the user saw (§5.5)."""

    time_s: float
    vm_id: int
    delay_s: float
    #: How the transition was handled (ActivationAction value).
    action: str


@dataclass
class MigrationCounters:
    """How many operations of each kind the day required."""

    partial_migrations: int = 0
    partial_relocations: int = 0
    full_migrations: int = 0
    reintegrations: int = 0
    conversions_in_place: int = 0
    rehomings: int = 0
    exchanges: int = 0
    home_wakeups: int = 0
    consolidation_wakeups: int = 0
    suspends: int = 0
    #: Expected suspend/resume cycles spent serving page requests when
    #: the memory server is absent (the §3.3 ablation); fractional
    #: because it accumulates analytical expectations per interval.
    page_request_wake_cycles: float = 0.0


@dataclass
class FarmResult:
    """Everything measured over one simulated day."""

    policy_name: str
    day_type: str
    seed: int
    horizon_s: float

    #: Mid-interval samples, one per 5-minute interval.
    sample_times_s: List[float] = field(default_factory=list)
    active_vms: List[int] = field(default_factory=list)
    powered_hosts: List[int] = field(default_factory=list)
    powered_home_hosts: List[int] = field(default_factory=list)
    powered_consolidation_hosts: List[int] = field(default_factory=list)

    #: VMs per powered, occupied consolidation host, one sample per host
    #: per interval (Figure 9's CDF population).
    consolidation_ratio_samples: List[int] = field(default_factory=list)

    delays: List[DelaySample] = field(default_factory=list)
    traffic: TrafficLedger = field(default_factory=TrafficLedger)
    counters: MigrationCounters = field(default_factory=MigrationCounters)
    #: Injected faults and their recovery costs; all-zero on a run with
    #: the null fault profile.
    faults: FaultCounters = field(default_factory=FaultCounters)

    energy: EnergyReport = None  # type: ignore[assignment]
    #: Seconds each home host spent asleep, keyed by host id.
    home_sleep_s: Dict[int, float] = field(default_factory=dict)
    #: Seconds per power state summed over all hosts (ledger read-back;
    #: feeds the repro.equiv run fingerprint).
    state_time_s: Dict[str, float] = field(default_factory=dict)
    #: Joules per power state, plus the "surcharge" lump bucket; sums to
    #: ``energy.managed_joules`` up to float reassociation.
    state_energy_j: Dict[str, float] = field(default_factory=dict)

    # -- derived metrics ------------------------------------------------

    @property
    def savings_fraction(self) -> float:
        if self.energy is None:
            raise ConfigError("run has no energy report yet")
        return self.energy.savings_fraction

    @property
    def peak_active_vms(self) -> int:
        return max(self.active_vms) if self.active_vms else 0

    @property
    def min_powered_hosts(self) -> int:
        return min(self.powered_hosts) if self.powered_hosts else 0

    def mean_home_sleep_fraction(self) -> float:
        """Average fraction of the day home hosts spent asleep."""
        if not self.home_sleep_s:
            return 0.0
        total = sum(self.home_sleep_s.values())
        return total / (len(self.home_sleep_s) * self.horizon_s)

    def zero_delay_fraction(self) -> float:
        """Fraction of idle-to-active transitions with no delay (§5.5)."""
        if not self.delays:
            return 1.0
        zero = sum(1 for sample in self.delays if sample.delay_s <= 1e-9)
        return zero / len(self.delays)

    def delay_values(self) -> List[float]:
        return [sample.delay_s for sample in self.delays]

    def __repr__(self) -> str:
        savings = (
            f"{self.energy.savings_fraction:.1%}" if self.energy else "n/a"
        )
        return (
            f"<FarmResult {self.policy_name}/{self.day_type} seed={self.seed} "
            f"savings={savings} peak_active={self.peak_active_vms} "
            f"sleep={self.mean_home_sleep_fraction():.1%}>"
        )
