"""Trace-driven VDI server-farm simulation (§5).

This package wires every substrate together: it builds the rack
(:mod:`repro.cluster`), assigns one VM per user trace, runs the Oasis
manager (:mod:`repro.core`) over a simulated day on the discrete-event
kernel, integrates energy, and collects the metrics behind every figure
of the paper's evaluation.
"""

from repro.farm.config import FarmConfig
from repro.farm.metrics import FarmResult, DelaySample
from repro.farm.simulation import FarmSimulation, simulate_day
from repro.farm.sweep import (
    SweepPoint,
    average_savings,
    consolidation_host_sweep,
    memory_server_power_sweep,
    cluster_shape_sweep,
)
from repro.farm.week import WeekReport, simulate_week
from repro.farm.validate import validate_simulation

__all__ = [
    "FarmConfig",
    "FarmResult",
    "DelaySample",
    "FarmSimulation",
    "simulate_day",
    "SweepPoint",
    "average_savings",
    "consolidation_host_sweep",
    "memory_server_power_sweep",
    "cluster_shape_sweep",
    "WeekReport",
    "simulate_week",
    "validate_simulation",
]
