"""Trace-driven VDI server-farm simulation (§5).

This package wires every substrate together: it builds the rack
(:mod:`repro.cluster`), assigns one VM per user trace, runs the Oasis
manager (:mod:`repro.core`) over a simulated day on the discrete-event
kernel, integrates energy, and collects the metrics behind every figure
of the paper's evaluation.  :mod:`repro.farm.runner` fans the multi-run
evaluation sweeps out over worker processes with deterministic results.
"""

from repro.farm.config import FarmConfig
from repro.farm.metrics import FarmResult, DelaySample
from repro.farm.planes import (
    SURCHARGE_STATE,
    AccountingLedger,
    DecisionPlane,
    FarmAccountingLedger,
    ManagerDecisionPlane,
)
from repro.farm.runner import (
    RunOutcome,
    RunProgress,
    RunSpec,
    SweepRunner,
    SweepSummary,
    execute_run,
)
from repro.farm.simulation import FarmSimulation, simulate_day
from repro.farm.sweep import (
    SweepPoint,
    average_savings,
    consolidation_host_sweep,
    memory_server_power_sweep,
    cluster_shape_sweep,
    fault_rate_sweep,
    gamma_sweep,
    repetition_specs,
    run_repetitions,
)
from repro.farm.week import WeekReport, simulate_week
from repro.farm.validate import validate_simulation
from repro.farm.zones import (
    GlobalController,
    ZoneBudget,
    ZonedFarmResult,
    ZonePartition,
    build_partition,
    simulate_zoned_day,
    zone_run_specs,
)

__all__ = [
    "FarmConfig",
    "FarmResult",
    "DelaySample",
    "DecisionPlane",
    "ManagerDecisionPlane",
    "AccountingLedger",
    "FarmAccountingLedger",
    "SURCHARGE_STATE",
    "FarmSimulation",
    "simulate_day",
    "RunSpec",
    "RunOutcome",
    "RunProgress",
    "SweepRunner",
    "SweepSummary",
    "execute_run",
    "SweepPoint",
    "average_savings",
    "consolidation_host_sweep",
    "memory_server_power_sweep",
    "cluster_shape_sweep",
    "fault_rate_sweep",
    "gamma_sweep",
    "repetition_specs",
    "run_repetitions",
    "WeekReport",
    "simulate_week",
    "validate_simulation",
    "ZonePartition",
    "ZoneBudget",
    "ZonedFarmResult",
    "GlobalController",
    "build_partition",
    "zone_run_specs",
    "simulate_zoned_day",
]
