"""The trace-driven farm simulation engine.

One :class:`FarmSimulation` runs one simulated day:

* every 5-minute trace interval, VM activity is updated and the manager
  plans FulltoPartial exchanges plus greedy host vacations (§3.1-3.2);
* idle-to-active transitions fire as jittered discrete events and are
  resolved by the policy (in-place conversion, re-homing, or waking the
  home host and returning all of its VMs), producing the Figure 11 delay
  samples;
* migrations serialize on per-host bottlenecks (the home's SAS upload
  path, host NICs), which produces resume-storm queueing;
* host power follows Table 1 through all power-state transitions, and a
  sleeping compute host pays for its memory server.

Design note — instant state commits: placement state (which VM sits
where, how much memory it holds) commits at decision time, while
latency, serialization, and energy are modeled through the event clock
and per-host busy horizons.  A per-VM ``settles_at`` timestamp bridges
the two: operations on a VM that is still "in flight" cannot start
before it lands.  This keeps the state machine simple (no partially
transferred VMs) at the cost of attributing a migration's residency to
its destination a few seconds early — negligible against 5-minute
planning intervals, and validated by the energy cross-checks in the
test suite.
"""

from __future__ import annotations

import gc
import math
import os
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set

from repro.cluster.host import Host, HostRole
from repro.cluster.power import PowerState
from repro.cluster.topology import Cluster
from repro.core.manager import ClusterManager
from repro.core.plan import (
    ActivationAction,
    ConsolidationPlan,
    ExchangePlan,
    HostVacatePlan,
    MigrationMode,
)
from repro.core.strategies import PolicyLike, resolve_strategy
from repro.energy.report import EnergyReport, baseline_energy_joules
from repro.errors import CapacityError, ConfigError, SimulationError
from repro.farm.config import FarmConfig
from repro.faults import CLEAN_WAKE, FaultInjector, FaultPlan, backoff_delays_s
from repro.farm.metrics import DelaySample, FarmResult
from repro.farm.planes import (
    AccountingLedger,
    DecisionPlane,
    FarmAccountingLedger,
    ManagerDecisionPlane,
)
from repro.migration.scheduler import HostBusyScheduler
from repro.migration.traffic import TrafficCategory
from repro.obs.events import CAT_FARM, CAT_FAULT, CAT_MIGRATION, CAT_POWER
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simulator.engine import Simulator
from repro.simulator.randomness import RngStreams
from repro.traces.edges import ActivityEdgeSchedule
from repro.traces.model import DayType
from repro.traces.sampler import TraceEnsemble, generate_ensemble
from repro.units import (
    KIB_PER_MIB,
    PAGE_SIZE_KIB,
    SECONDS_PER_DAY,
    TRACE_INTERVAL_SECONDS,
)
from repro.vm.machine import IntervalClock, VirtualMachine
from repro.vm.state import Residency

_SLEEP_STATE = "sleeping"

#: Distinguishes "no wake chain in flight" from a chain that gave up
#: (whose ``_wake_pending`` entry is ``None``).
_NO_CHAIN = object()


class FarmSimulation:
    """One day of one policy over one trace ensemble."""

    def __init__(
        self,
        config: FarmConfig,
        policy: PolicyLike,
        ensemble: TraceEnsemble,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if len(ensemble) != config.total_vms:
            raise ConfigError(
                f"ensemble has {len(ensemble)} users; the configuration "
                f"needs {config.total_vms} (one VM per user)"
            )
        strategy = resolve_strategy(policy)
        self.config = config
        self.strategy = strategy
        self.policy = strategy.spec
        self.ensemble = ensemble
        self.seed = seed
        self.streams = RngStreams(seed)

        # Tracing is pure observation: the tracer has no RNG access and
        # every emission is gated on ``tracer.enabled``, so a null tracer
        # leaves RNG streams and results byte-identical (differential-
        # tested).  It lives outside FarmConfig so configs stay picklable.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.sim = Simulator(tracer=self.tracer)
        # Clock-less components (manager, injector, memory servers) stamp
        # their events through the tracer's clock, bound to simulated time.
        self.tracer.set_clock(lambda: self.sim.now)
        self.scheduler = HostBusyScheduler()

        self.cluster = Cluster(
            home_hosts=config.home_hosts,
            consolidation_hosts=config.consolidation_hosts,
            host_capacity_mib=config.capacity_mib,
        )
        # Consolidation hosts sleep by default (§3.1); set before any
        # energy accounting begins.
        for host in self.cluster.consolidation_hosts:
            host.power_state = PowerState.SLEEPING

        #: Last power-state value seen per host (tracing only); baseline
        #: includes the consolidation hosts' default SLEEPING state.
        self._power_state_seen: Dict[int, str] = {
            host.host_id: host.power_state.value for host in self.cluster
        }
        #: Sleep-entry times for the sleep-duration histogram (tracing only).
        self._sleep_since: Dict[int, float] = {}

        self.manager = ClusterManager(
            cluster=self.cluster,
            policy=strategy,
            working_sets=config.working_sets,
            rng=self.streams.get("manager"),
            min_idle_intervals=config.min_idle_intervals,
            strategy=config.placement_strategy,
            tracer=self.tracer,
            streams=self.streams,
        )
        # The decision plane: every planner query the engine makes goes
        # through this seam (DESIGN.md §16).  The reference plane is a
        # transparent manager facade, so draw order is unchanged.
        self.decisions: DecisionPlane = ManagerDecisionPlane(self.manager)

        # All VMs share one interval clock: quiet VMs' idle streaks grow
        # with the clock instead of through per-VM per-interval updates.
        self._interval_clock = IntervalClock()
        self.vms: Dict[int, VirtualMachine] = {}
        for vm_id in range(config.total_vms):
            home_id = vm_id // config.vms_per_host
            vm = VirtualMachine(vm_id, home_id, config.vm_memory_mib)
            vm.track_idle_with(self._interval_clock)
            self.vms[vm_id] = vm
            self.cluster.host(home_id).attach(vm)

        self.result = FarmResult(
            policy_name=strategy.name,
            day_type=ensemble.day_type.value,
            seed=seed,
            horizon_s=SECONDS_PER_DAY,
        )
        # The accounting plane: every energy/state/traffic/counter write
        # goes through this seam (DESIGN.md §16).  The reference ledger
        # fronts the result's own record objects and the pre-split
        # accountant/tracker, so meter creation order — and with it the
        # float summation order of total_joules — is unchanged.
        self.ledger: AccountingLedger = FarmAccountingLedger(self.result)
        # Aliases for external readers (validators, scenario tests).
        self.accountant = self.ledger.accountant
        self.tracker = self.ledger.tracker

        self._jitter_rng = self.streams.get("activation-jitter")
        self._traffic_rng = self.streams.get("traffic")

        # Fault injection: the plan fixes time-scheduled faults up front,
        # the injector answers per-exposure queries.  With the default
        # null profile neither ever draws, so fault-free runs reproduce
        # historical output byte-for-byte.
        self.fault_profile = config.faults
        self._injector = FaultInjector(
            self.fault_profile, self.streams, self.tracer
        )
        self.fault_plan = FaultPlan.build(
            self.fault_profile,
            [host.host_id for host in self.cluster.home_hosts],
            SECONDS_PER_DAY,
            self.streams.get("faults.plan"),
        )
        self.faults = self.ledger.faults
        #: Host id -> final ready time of an in-flight faulty wake chain,
        #: or None while a chain that will give up plays out.
        self._wake_pending: Dict[int, Optional[float]] = {}
        #: Host id -> when a giving-up chain's last attempt fails.
        self._wake_chain_ends: Dict[int, float] = {}

        self._settles_at: Dict[int, float] = {}
        # Min-heap of (settles_at, vm_id) marks, lazily deleted: a VM
        # that re-settles leaves its older entries in the heap; expiry
        # only trusts an entry whose mark is still current (<= now).
        self._settle_heap: List[tuple] = []
        self._episode_open: Set[int] = set()
        self._transition_done: Dict[int, float] = {}
        self._wake_after_suspend: Set[int] = set()
        self._suspend_pending: Set[int] = set()
        # The ensemble compiled to activity flips: the interval handler
        # touches only VMs whose activity changes (O(edges), not O(V)).
        self._edge_schedule = ActivityEdgeSchedule.compile(ensemble)
        self._active_count = 0
        #: origin_home_id -> ids of VMs that are FULL away from their
        #: origin home (the _return_full_vms_home candidates), plus the
        #: ids of all currently PARTIAL VMs (the working-set growth
        #: candidates).  Maintained by _sync_vm_index at every residency
        #: or placement mutation; iterated sorted, so behaviour matches
        #: the full ascending-vm_id rescans these replace.
        self._away_full: Dict[int, Set[int]] = {}
        self._partial_vms: Set[int] = set()
        self._debug_indexes = bool(os.environ.get("REPRO_DEBUG_INDEXES"))
        #: Hosts whose power draw must be re-evaluated before the current
        #: event callback returns (see _refresh_power/_flush_power).
        self._power_dirty: Set[int] = set()
        # Hot-path caches.  The host list is stable (ascending host_id,
        # matching cluster iteration order); the power coefficients feed
        # _refresh_power_now's inlined powered/sleeping formulas, which
        # mirror HostPowerProfile.powered_watts exactly when the
        # per-active-VM surcharge is zero (the default).
        self._all_hosts = self.cluster.hosts
        profile = config.host_power
        self._host_power = profile
        self._power_idle_w = profile.idle_w
        self._power_per_vm_w = profile.per_vm_w
        self._powered_fast = not (profile.per_active_vm_extra_w > 0.0)
        if config.memory_server_present:
            self._sleep_served_w: Optional[float] = (
                profile.sleep_w + config.memory_server.total_w
            )
        else:
            self._sleep_served_w = None
        # Per-event label strings are only worth building when a tracer
        # will record them; the hot paths gate on this flag.
        self._trace_labels = self.tracer.enabled
        self._planning_every = int(
            round(config.planning_interval_s / TRACE_INTERVAL_SECONDS)
        )
        self._finished = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self) -> FarmResult:
        """Execute the full day and return the collected metrics."""
        if self._finished:
            raise SimulationError("this simulation has already run")
        # The event loop allocates heavily but creates no reference
        # cycles that must be reclaimed mid-day; pausing the cyclic
        # collector avoids periodic full-heap scans.  Purely a wall-
        # clock lever: allocation and results are unaffected.
        collecting = gc.isenabled()
        if collecting:
            gc.disable()
        try:
            if self.tracer.enabled:
                with self.tracer.span(
                    "farm.day", CAT_FARM,
                    policy=self.strategy.name,
                    day_type=self.ensemble.day_type.value,
                    seed=self.seed,
                ):
                    self._run_day()
            else:
                self._run_day()
        finally:
            if collecting:
                gc.enable()
        return self.result

    def _run_day(self) -> None:
        now = self.sim.now
        if self.tracer.enabled:
            for host in self.cluster:
                self.tracer.event(
                    "power.init", CAT_POWER,
                    host=host.host_id,
                    state=host.power_state.value,
                    role=host.role.value,
                )
                if host.power_state is PowerState.SLEEPING:
                    self._sleep_since[host.host_id] = now
        for host in self.cluster:
            # Direct (non-deferred) refresh: the first set_power call per
            # host creates its meter, and meter creation order fixes the
            # float summation order of total_joules.
            self._refresh_power_now(host)
            self.ledger.set_state(host.host_id, host.power_state.value, now)

        for host_id, crash_time in self.fault_plan.memserver_crashes:
            self.sim.schedule_at(
                crash_time, self._memserver_crash, host_id,
                label=f"memserver-crash-{host_id}",
            )
        intervals = int(SECONDS_PER_DAY / TRACE_INTERVAL_SECONDS)
        for index in range(intervals):
            boundary = index * TRACE_INTERVAL_SECONDS
            self.sim.schedule_at(
                boundary, self._on_interval, index, label=f"interval-{index}"
            )
            self.sim.schedule_at(
                boundary + TRACE_INTERVAL_SECONDS / 2.0,
                self._sample_metrics,
                label=f"sample-{index}",
            )
        self.sim.run_until(SECONDS_PER_DAY)
        self._finalize()

    # ------------------------------------------------------------------
    # interval processing
    # ------------------------------------------------------------------

    def _on_interval(self, index: int) -> None:
        now = self.sim.now
        self._collect_stale_horizons(now)
        self._update_activities(index, now)
        if not self.config.memory_server_present:
            self._charge_page_request_wakeups()
        if self.config.working_set_growth_mib_per_h > 0.0:
            self._grow_working_sets(now)
        if index % self._planning_every == 0:
            if self.tracer.enabled:
                with self.tracer.span(
                    "farm.planning", CAT_FARM, interval=index
                ):
                    self._run_planning(now)
            else:
                self._run_planning(now)
        powered = PowerState.POWERED
        dirty_add = self._power_dirty.add
        consider_suspend = self._consider_suspend
        for host in self._all_hosts:
            if host._power_state is powered:
                dirty_add(host.host_id)
                if not host._vms:
                    consider_suspend(host)
        self._flush_power()
        if self._debug_indexes:
            self.cluster.verify_indexes()
            self._verify_vm_indexes()

    def _run_planning(self, now: float) -> None:
        """One periodic planning pass: exchanges, then consolidation."""
        for exchange in self.decisions.plan_exchanges():
            self._execute_exchange(exchange, now)
        plan = self.decisions.plan_consolidation(
            compact_consolidation=self.config.compact_consolidation_hosts
        )
        self._execute_consolidation(plan, now)

    def _update_activities(self, index: int, now: float) -> None:
        jitter_max = self.config.activation_jitter_s
        self._interval_clock.index = index
        vms = self.vms
        active_count = self._active_count
        full = Residency.FULL
        already_full = ActivationAction.ALREADY_FULL.value
        delays_append = self.result.delays.append
        uniform = self._jitter_rng.uniform
        schedule = self.sim.schedule
        on_activation = self._on_activation
        trace_labels = self._trace_labels
        # Compiled edges replay the eager per-VM scan's ascending-vm_id
        # visit order, so jitter draws and delay samples are byte-equal.
        for vm_id, active in self._edge_schedule.by_interval[index]:
            vm = vms[vm_id]
            vm.apply_activity_edge(active)
            if active:
                active_count += 1
                if vm.residency is full:
                    # Full VMs already hold all their resources (§5.5).
                    delays_append(
                        DelaySample(
                            time_s=now,
                            vm_id=vm_id,
                            delay_s=0.0,
                            action=already_full,
                        )
                    )
                else:
                    # Draw from the full (0, jitter_max] window.  The
                    # bounds must not be narrowed by a margin: with
                    # jitter_max < 2 a (1, jitter_max - 1) draw inverts
                    # its bounds and can go negative, which
                    # Simulator.schedule rejects mid-day.
                    jitter = uniform(0.0, jitter_max)
                    schedule(
                        jitter, on_activation, vm_id,
                        label=(
                            f"activate-{vm_id}" if trace_labels else ""
                        ),
                    )
            else:
                active_count -= 1
        self._active_count = active_count

    def _sync_vm_index(self, vm: VirtualMachine) -> None:
        """Refresh one VM's membership in the placement indexes.

        Must be called after every residency or placement mutation; the
        debug mode (``REPRO_DEBUG_INDEXES=1``) cross-checks the indexes
        against full rescans at every interval boundary.
        """
        vm_id = vm.vm_id
        if vm.residency is Residency.PARTIAL:
            self._partial_vms.add(vm_id)
        else:
            self._partial_vms.discard(vm_id)
        bucket = self._away_full.get(vm.origin_home_id)
        if vm.residency is Residency.FULL and vm.host_id != vm.origin_home_id:
            if bucket is None:
                bucket = self._away_full[vm.origin_home_id] = set()
            bucket.add(vm_id)
        elif bucket is not None:
            bucket.discard(vm_id)

    def _verify_vm_indexes(self) -> None:
        """Debug cross-check: indexes must equal a from-scratch rescan."""
        partial = {
            vm_id
            for vm_id, vm in self.vms.items()
            if vm.residency is Residency.PARTIAL
        }
        assert partial == self._partial_vms, (
            f"partial index drifted: {sorted(self._partial_vms)} vs "
            f"rescanned {sorted(partial)}"
        )
        away: Dict[int, Set[int]] = {}
        for vm in self.vms.values():
            if (
                vm.residency is Residency.FULL
                and vm.host_id != vm.origin_home_id
            ):
                away.setdefault(vm.origin_home_id, set()).add(vm.vm_id)
        indexed = {
            home_id: ids
            for home_id, ids in self._away_full.items()
            if ids
        }
        assert away == indexed, (
            f"away-full index drifted: {indexed} vs rescanned {away}"
        )

    def _collect_stale_horizons(self, now: float) -> None:
        """Drop scheduler horizons and settle marks that already passed.

        Without this the per-resource horizon dicts and ``_settles_at``
        only ever grow over a simulated day.  The watermark is safe:
        every reservation starts at ``max(sim.now, not_before, ...)``
        and the simulation clock is monotonic, so a horizon at or before
        ``now`` can never push a future start later — it behaves exactly
        like an absent (0.0) entry.  In-flight work keeps its entries:
        live ``settles_at`` values and power-transition completion times
        all lie strictly beyond ``now``, so the minimum over them and
        ``now`` is ``now`` itself.
        """
        self.scheduler.clear_before(now)
        heap = self._settle_heap
        if heap:
            settles = self._settles_at
            while heap and heap[0][0] <= now:
                _, vm_id = heappop(heap)
                mark = settles.get(vm_id)
                if mark is not None and mark <= now:
                    # The popped entry may be stale (the VM re-settled
                    # later); only the current mark decides expiry.
                    del settles[vm_id]

    def _charge_page_request_wakeups(self) -> None:
        """The no-memory-server ablation: sleeping homes pay to serve
        page requests themselves (the Jettison design, §2).

        With ``k`` consolidated partial VMs emitting request bursts at
        mean gap ``g``, arrivals at a sleeping home form a process of
        rate ``k/g``.  Treating gaps as exponential, the fraction of
        time recoverable as sleep is ``exp(-rate * overhead)`` where the
        overhead is one suspend/resume round trip plus a linger window;
        the rest of the interval is spent awake transitioning and
        serving.  That awake time is charged as an energy surcharge at
        the blended transition/idle power, and the expected wake cycles
        are counted.
        """
        profile = self.config.host_power
        linger_s = 1.0
        overhead_s = profile.transition_round_trip_s + linger_s
        blended_w = (
            profile.suspend_w * profile.suspend_s
            + profile.resume_w * profile.resume_s
            + profile.idle_w * linger_s
        ) / overhead_s
        for host in self.cluster.home_hosts:
            if not host.is_sleeping or host.served_image_count == 0:
                continue
            rate = host.served_image_count / self.config.idle_page_request_gap_s
            sleep_fraction = math.exp(-rate * overhead_s)
            awake_s = TRACE_INTERVAL_SECONDS * (1.0 - sleep_fraction)
            if awake_s <= 0.0:
                continue
            surcharge_w = blended_w - profile.sleep_w
            self.ledger.add_energy(
                ("wake-tax", host.host_id), awake_s * surcharge_w
            )
            expected_cycles = (
                rate * TRACE_INTERVAL_SECONDS * sleep_fraction
            )
            self.ledger.counters.page_request_wake_cycles += expected_cycles

    def _grow_working_sets(self, now: float) -> None:
        delta = self.config.working_set_growth_mib_per_h * (
            TRACE_INTERVAL_SECONDS / 3600.0
        )
        # The sorted partial-VM index replays the ascending-vm_id order
        # of the full rescan it replaces; the residency re-check matters
        # because an overflow's wake-home below can reintegrate later
        # VMs mid-pass (sorted() already snapshotted the membership).
        for vm_id in sorted(self._partial_vms):
            vm = self.vms[vm_id]
            if vm.residency is not Residency.PARTIAL:
                continue
            host = self.cluster.host(vm.host_id)
            try:
                host.grow_partial_vm(vm_id, delta)
            except CapacityError:
                # Growth exhausted the consolidation host (§3.2): apply the
                # same strategy as an activation that does not fit.
                self._handle_wake_home_return_all(vm, now)

    def _sample_metrics(self) -> None:
        result = self.result
        result.sample_times_s.append(self.sim.now)
        active = self._active_count
        result.active_vms.append(active)
        result.powered_hosts.append(self.cluster.powered_host_count())
        result.powered_home_hosts.append(self.cluster.powered_home_count())
        result.powered_consolidation_hosts.append(
            self.cluster.powered_consolidation_count()
        )
        for host in self.cluster.consolidation_hosts:
            if host.is_powered and host.vm_count > 0:
                result.consolidation_ratio_samples.append(host.vm_count)
        if self.tracer.enabled:
            self.tracer.gauge("active_vms", float(active))
            self.tracer.gauge(
                "powered_hosts", float(result.powered_hosts[-1])
            )

    # ------------------------------------------------------------------
    # activation handling
    # ------------------------------------------------------------------

    def _on_activation(self, vm_id: int) -> None:
        now = self.sim.now
        vm = self.vms[vm_id]
        decision = self.decisions.decide_activation(vm)
        action = decision.action
        if action is ActivationAction.ALREADY_FULL:
            # The VM already holds all of its resources where it runs
            # (it was returned by a sibling's wake-up, or was never
            # consolidated): the user sees no delay (§5.5).
            completed = now
        elif action is ActivationAction.CONVERT_IN_PLACE:
            completed = self._convert_in_place(vm, now)
        elif action is ActivationAction.MIGRATE_NEW_HOME:
            completed = self._rehome(vm, decision.target_host_id, now)
        else:
            completed = self._handle_wake_home_return_all(vm, now)
        self.result.delays.append(
            DelaySample(
                time_s=now,
                vm_id=vm_id,
                delay_s=max(0.0, completed - now),
                action=action.value,
            )
        )
        self._flush_power()

    def _convert_in_place(
        self, vm: VirtualMachine, now: float, fault_exempt: bool = False
    ) -> float:
        host = self.cluster.host(vm.host_id)
        old_home = self.cluster.host(vm.home_id)
        pull_mib = vm.memory_mib - (vm.working_set_mib or 0.0)
        fraction = None if fault_exempt else self._injector.migration_abort()
        if fraction is not None:
            # The image pull died mid-stream: the VM stays partial and
            # the activation falls back to waking its home (§3.2); the
            # rescue itself is fault-exempt so recovery terminates.
            self._charge_aborted_attempt(
                vm.vm_id, [("nic", host.host_id)], now,
                self.config.costs.inplace_conversion_s,
                self.config.costs.inplace_conversion_s,
                TrafficCategory.CONVERSION_PULL, pull_mib, fraction,
            )
            self.faults.migration_retries += 1
            self._trace_fault("fault.migration_retry", vm=vm.vm_id)
            return self._handle_wake_home_return_all(
                vm, now, fault_exempt=True
            )
        host.convert_vm_full_in_place(vm.vm_id)
        self._sync_vm_index(vm)
        old_home.remove_served_image(vm.vm_id)
        # The remaining image streams in over the consolidation host's
        # NIC while the VM keeps executing on its resident working set,
        # so the transfer occupies the NIC without stalling the user;
        # what the user perceives is the resume handshake (§5.5).
        start, end = self.scheduler.reserve_one(
            ("nic", host.host_id),
            now,
            self.config.costs.inplace_conversion_s,
            not_before=self._settles_at.get(vm.vm_id, 0.0),
        )
        self.ledger.traffic.add(TrafficCategory.CONVERSION_PULL, pull_mib)
        self._trace_migration(
            "convert_in_place", vm.vm_id, vm.home_id, host.host_id,
            pull_mib, start, end,
        )
        self._close_episode(vm.vm_id)
        self._settles_at[vm.vm_id] = end
        heappush(self._settle_heap, (end, vm.vm_id))
        self.ledger.counters.conversions_in_place += 1
        self._refresh_power(host)
        return now + self.config.costs.reintegration_s

    def _rehome(
        self,
        vm: VirtualMachine,
        destination_id: int,
        now: float,
        fault_exempt: bool = False,
    ) -> float:
        source = self.cluster.host(vm.host_id)
        old_home = self.cluster.host(vm.home_id)
        destination = self.cluster.host(destination_id)
        fraction = None if fault_exempt else self._injector.migration_abort()
        if fraction is not None:
            # The full migration died mid-transfer: roll back to the
            # consolidated placement and wake the home instead.
            self._charge_aborted_attempt(
                vm.vm_id, [("nic", source.host_id)], now,
                self.config.costs.full_migration_s,
                self.config.costs.full_occupancy_s,
                TrafficCategory.FULL_MIGRATION, vm.memory_mib, fraction,
            )
            self.faults.migration_retries += 1
            self._trace_fault("fault.migration_retry", vm=vm.vm_id)
            return self._handle_wake_home_return_all(
                vm, now, fault_exempt=True
            )
        source.detach(vm.vm_id)
        vm.become_full_at(destination_id)
        destination.attach(vm)
        self._sync_vm_index(vm)
        old_home.remove_served_image(vm.vm_id)
        start, end = self.scheduler.reserve_one(
            ("nic", source.host_id),
            now,
            self.config.costs.full_migration_s,
            occupancy_s=self.config.costs.full_occupancy_s,
            not_before=self._settles_at.get(vm.vm_id, 0.0),
        )
        self.ledger.traffic.add(TrafficCategory.FULL_MIGRATION, vm.memory_mib)
        self._trace_migration(
            "rehome", vm.vm_id, source.host_id, destination_id,
            vm.memory_mib, start, end,
        )
        self._close_episode(vm.vm_id)
        self._settles_at[vm.vm_id] = end
        heappush(self._settle_heap, (end, vm.vm_id))
        self.ledger.counters.rehomings += 1
        self._consider_suspend(source)
        self._refresh_power(source)
        self._refresh_power(destination)
        return end

    def _handle_wake_home_return_all(
        self, trigger: VirtualMachine, now: float, fault_exempt: bool = False
    ) -> float:
        """Wake the trigger's home and return all of its VMs (§3.2).

        "All of its VMs" covers both the partial VMs whose images the
        home serves and full VMs *originally homed* there that were
        re-homed onto consolidation hosts — migrating the latter back
        frees real space on the consolidation hosts (§3.2 Default).

        Under fault injection the wake can exhaust its retry cap; the
        trigger VM is then rerouted instead.  ``fault_exempt`` marks
        rescue invocations (crash recovery, post-give-up fallback) that
        must not themselves draw faults.
        """
        home = self.cluster.host(trigger.home_id)
        ready = self._wake_host(home, fault_exempt=fault_exempt)
        if ready is None:
            # The home refuses to wake: recover the trigger elsewhere.
            return self._reroute_after_wake_failure(trigger, now)
        self.scheduler.extend(("nic", home.host_id), ready)
        trigger_end: Optional[float] = None
        trigger_id = trigger.vm_id
        returning = sorted(
            home.served_image_ids,
            key=lambda vid: (vid != trigger_id, vid),
        )
        costs = self.config.costs
        reintegration_s = costs.reintegration_s
        reintegration_occupancy_s = costs.reintegration_occupancy_s
        sample_reintegration_mib = costs.sample_reintegration_mib
        traffic_rng = self._traffic_rng
        vms = self.vms
        hostof = self.cluster.host
        reserve_one = self.scheduler.reserve_one
        settles = self._settles_at
        settle_heap = self._settle_heap
        traffic_add = self.ledger.traffic.add
        counters = self.ledger.counters
        dirty_add = self._power_dirty.add
        migration_abort = self._injector.migration_abort
        home_nic = ("nic", home.host_id)
        for vm_id in returning:
            vm = vms[vm_id]
            if vm.memory_mib > home.capacity_mib - home._used_mib + 1e-9:
                # Foreign re-homed VMs may crowd the host; leave the
                # stragglers consolidated rather than over-commit.
                continue
            if not fault_exempt:
                fraction = migration_abort()
                if fraction is not None:
                    self._charge_aborted_attempt(
                        vm_id, [home_nic], now,
                        reintegration_s,
                        reintegration_occupancy_s,
                        TrafficCategory.REINTEGRATION,
                        sample_reintegration_mib(traffic_rng),
                        fraction,
                    )
                    if vm_id != trigger_id:
                        # Stays consolidated; its image is still served,
                        # so a later activation or pass recovers it.
                        continue
                    # The user is waiting on the trigger: retry the
                    # reintegration immediately (it queues behind the
                    # aborted attempt via the settle mark).
                    self.faults.migration_retries += 1
                    self._trace_fault("fault.migration_retry", vm=vm_id)
            source = hostof(vm.host_id)
            # Reintegrations queue on the woken home's NIC: a resume
            # storm of many VMs returning to one host is what produces
            # the Figure 11 tail.
            start, end = reserve_one(
                home_nic,
                now,
                reintegration_s,
                occupancy_s=reintegration_occupancy_s,
                not_before=settles.get(vm_id, 0.0),
            )
            source.detach(vm_id)
            vm.reintegrate()
            home.attach(vm)
            self._sync_vm_index(vm)
            home.remove_served_image(vm_id)
            reintegration_mib = sample_reintegration_mib(traffic_rng)
            traffic_add(TrafficCategory.REINTEGRATION, reintegration_mib)
            self._trace_migration(
                "reintegration", vm_id, source.host_id, home.host_id,
                reintegration_mib, start, end,
            )
            self._close_episode(vm_id)
            settles[vm_id] = end
            heappush(settle_heap, (end, vm_id))
            counters.reintegrations += 1
            if vm_id == trigger_id:
                trigger_end = end
            self._consider_suspend(source)
            dirty_add(source.host_id)
        self._return_full_vms_home(home, now, fault_exempt=fault_exempt)
        dirty_add(home.host_id)
        if trigger_end is None:
            # The trigger could not fit back home (pathological crowding);
            # its delay is at least the wake plus one reintegration.
            trigger_end = ready + self.config.costs.reintegration_s
        return trigger_end

    def _reroute_after_wake_failure(
        self, trigger: VirtualMachine, now: float
    ) -> float:
        """The home exhausted its wake retries: recover the trigger VM.

        Preference order mirrors activation policy: convert in place if
        the consolidation host has room, else re-home to any powered
        host with capacity, else force the home awake after its failing
        chain resolves (the rescue wake is fault-exempt, so recovery
        always terminates).
        """
        self.faults.wake_reroutes += 1
        self._trace_fault(
            "fault.wake_reroute", vm=trigger.vm_id, home=trigger.home_id
        )
        host = self.cluster.host(trigger.host_id)
        remaining = trigger.memory_mib - (trigger.working_set_mib or 0.0)
        if host.can_fit(remaining):
            return self._convert_in_place(trigger, now, fault_exempt=True)
        destination = self.decisions.reroute_activation(trigger)
        if destination is not None:
            return self._rehome(trigger, destination, now, fault_exempt=True)
        return self._handle_wake_home_return_all(
            trigger, now, fault_exempt=True
        )

    def _return_full_vms_home(
        self, home: Host, now: float, fault_exempt: bool = False
    ) -> None:
        """Migrate full VMs originally homed at ``home`` back to it,
        freeing consolidation-host capacity (§3.2)."""
        home_id = home.host_id
        bucket = self._away_full.get(home_id)
        if not bucket:
            return
        costs = self.config.costs
        full_migration_s = costs.full_migration_s
        full_occupancy_s = costs.full_occupancy_s
        vms = self.vms
        hostof = self.cluster.host
        reserve_one = self.scheduler.reserve_one
        settles = self._settles_at
        settle_heap = self._settle_heap
        traffic_add = self.ledger.traffic.add
        counters = self.ledger.counters
        dirty_add = self._power_dirty.add
        migration_abort = self._injector.migration_abort
        full = Residency.FULL
        # The sorted away-full index visits the same VMs in the same
        # ascending-vm_id order as the full rescan it replaces, so the
        # can_fit/break sequencing (and hence RNG draws) is unchanged.
        for vm_id in sorted(bucket):
            vm = vms[vm_id]
            if vm.host_id == home_id or vm.residency is not full:
                continue
            if vm.memory_mib > home.capacity_mib - home._used_mib + 1e-9:
                break
            source = hostof(vm.host_id)
            if not fault_exempt:
                fraction = migration_abort()
                if fraction is not None:
                    # Rolled back: the VM stays full where it is; the
                    # next wake of this home retries the return.
                    self._charge_aborted_attempt(
                        vm_id, [("nic", source.host_id)], now,
                        full_migration_s,
                        full_occupancy_s,
                        TrafficCategory.FULL_MIGRATION, vm.memory_mib,
                        fraction,
                    )
                    continue
            start, end = reserve_one(
                ("nic", source.host_id),
                now,
                full_migration_s,
                occupancy_s=full_occupancy_s,
                not_before=settles.get(vm_id, 0.0),
            )
            source.detach(vm_id)
            vm.full_migrate(home_id)
            home.attach(vm)
            self._sync_vm_index(vm)
            traffic_add(TrafficCategory.FULL_MIGRATION, vm.memory_mib)
            self._trace_migration(
                "return_home", vm_id, source.host_id, home_id,
                vm.memory_mib, start, end,
            )
            settles[vm_id] = end
            heappush(settle_heap, (end, vm_id))
            counters.full_migrations += 1
            self._consider_suspend(source)
            dirty_add(source.host_id)

    # ------------------------------------------------------------------
    # planning execution
    # ------------------------------------------------------------------

    def _execute_exchange(self, plan: ExchangePlan, now: float) -> None:
        vm = self.vms[plan.vm_id]
        home = self.cluster.host(plan.origin_home_id)
        consolidation = self.cluster.host(plan.consolidation_host_id)
        costs = self.config.costs
        if not home.can_fit(vm.memory_mib):
            return  # crowded by foreign VMs; skip this exchange
        home_had_vms = home.vm_count > 0 and home.is_powered
        ready = self._wake_host(home)
        if ready is None:
            return  # the home will not wake; a later pass retries
        self.scheduler.extend(("nic", home.host_id), ready)

        fraction = self._injector.migration_abort()
        if fraction is not None:
            # Leg 1 died mid-transfer: the VM stays consolidated and the
            # exchange is dropped; a later planning pass retries.
            self._charge_aborted_attempt(
                vm.vm_id, [("nic", consolidation.host_id)], now,
                costs.full_migration_s,
                costs.full_occupancy_s,
                TrafficCategory.FULL_MIGRATION, vm.memory_mib, fraction,
            )
            self._refresh_power(home)
            return

        # Leg 1: full migration back to the origin home (serialized on
        # the sending consolidation host's NIC).
        start_full, end_full = self.scheduler.reserve_one(
            ("nic", consolidation.host_id),
            now,
            costs.full_migration_s,
            occupancy_s=costs.full_occupancy_s,
            not_before=max(
                self._settles_at.get(vm.vm_id, 0.0), ready
            ),
        )
        consolidation.detach(vm.vm_id)
        vm.full_migrate(home.host_id)
        home.attach(vm)
        self._sync_vm_index(vm)
        self.ledger.traffic.add(TrafficCategory.FULL_MIGRATION, vm.memory_mib)
        self._trace_migration(
            "exchange_full", vm.vm_id, consolidation.host_id, home.host_id,
            vm.memory_mib, start_full, end_full,
        )
        self.ledger.counters.full_migrations += 1
        self._settles_at[vm.vm_id] = end_full
        heappush(self._settle_heap, (end_full, vm.vm_id))

        if not home_had_vms:
            fraction = self._injector.migration_abort()
            if fraction is not None:
                # Leg 2 (the SAS re-upload) died: the VM stays full at
                # its home, which therefore cannot sleep this round.
                self._charge_aborted_attempt(
                    vm.vm_id, [("sas", home.host_id)], now,
                    costs.partial_migration_s,
                    costs.partial_occupancy_s,
                    TrafficCategory.MEMORY_UPLOAD_SAS,
                    costs.sample_sas_upload_mib(
                        self._traffic_rng
                    ),
                    fraction,
                )
                self.ledger.counters.exchanges += 1
                self._refresh_power(home)
                self._refresh_power(consolidation)
                return
            # Leg 2: immediately re-consolidate as a partial VM so the
            # home can go back to sleep.
            start_partial, end_partial = self.scheduler.reserve_one(
                ("sas", home.host_id),
                now,
                costs.partial_migration_s,
                occupancy_s=costs.partial_occupancy_s,
                not_before=end_full,
            )
            home.detach(vm.vm_id)
            vm.become_partial(consolidation.host_id, plan.working_set_mib)
            consolidation.attach(vm)
            self._sync_vm_index(vm)
            home.add_served_image(vm.vm_id)
            partial_mib = self._record_partial_traffic()
            self._trace_migration(
                "exchange_partial", vm.vm_id, home.host_id,
                consolidation.host_id, partial_mib,
                start_partial, end_partial,
            )
            self._episode_open.add(vm.vm_id)
            self._settles_at[vm.vm_id] = end_partial
            heappush(self._settle_heap, (end_partial, vm.vm_id))
            self.ledger.counters.partial_migrations += 1
            self._consider_suspend(home)
        # If the home was already awake running VMs, the returned full VM
        # simply stays there; the periodic planner handles it from now on.
        self.ledger.counters.exchanges += 1
        self._refresh_power(home)
        self._refresh_power(consolidation)

    def _execute_consolidation(
        self, plan: ConsolidationPlan, now: float
    ) -> None:
        for vacation in plan.vacations:
            self._execute_vacation(vacation, now)
        for compaction in plan.compactions:
            self._execute_compaction(compaction, now)

    def _execute_compaction(self, plan: HostVacatePlan, now: float) -> None:
        """Empty one consolidation host into its powered peers."""
        source = self.cluster.host(plan.host_id)
        source_id = source.host_id
        costs = self.config.costs
        partial_relocation_s = costs.partial_relocation_s
        relocation_occupancy_s = costs.relocation_occupancy_s
        full_migration_s = costs.full_migration_s
        full_occupancy_s = costs.full_occupancy_s
        vms = self.vms
        hostof = self.cluster.host
        reserve_one = self.scheduler.reserve_one
        settles = self._settles_at
        settle_heap = self._settle_heap
        counters = self.ledger.counters
        dirty_add = self._power_dirty.add
        migration_abort = self._injector.migration_abort
        partial_mode = MigrationMode.PARTIAL
        source_nic = ("nic", source_id)
        for migration in plan.migrations:
            vm = vms[migration.vm_id]
            vm_id = vm.vm_id
            destination = hostof(migration.destination_id)
            fraction = migration_abort()
            if fraction is not None:
                # Rolled back: the VM stays put; the host simply is not
                # emptied this round and a later pass retries.
                if migration.mode is partial_mode:
                    self._charge_aborted_attempt(
                        vm_id, [source_nic], now,
                        partial_relocation_s,
                        relocation_occupancy_s,
                        TrafficCategory.PARTIAL_DESCRIPTOR,
                        costs.sample_descriptor_mib(self._traffic_rng)
                        + (vm.working_set_mib or 0.0),
                        fraction,
                    )
                else:
                    self._charge_aborted_attempt(
                        vm_id, [source_nic], now,
                        full_migration_s,
                        full_occupancy_s,
                        TrafficCategory.FULL_MIGRATION, vm.memory_mib,
                        fraction,
                    )
                continue
            if migration.mode is partial_mode:
                start, end = reserve_one(
                    source_nic,
                    now,
                    partial_relocation_s,
                    occupancy_s=relocation_occupancy_s,
                    not_before=settles.get(vm_id, 0.0),
                )
                source.detach(vm_id)
                vm.relocate_partial(destination.host_id)
                destination.attach(vm)
                self._sync_vm_index(vm)
                # Only the descriptor and resident pages cross the wire;
                # the memory image stays at the home's memory server.
                relocation_mib = (
                    costs.sample_descriptor_mib(self._traffic_rng)
                    + (vm.working_set_mib or 0.0)
                )
                self.ledger.traffic.add(
                    TrafficCategory.PARTIAL_DESCRIPTOR, relocation_mib
                )
                self._trace_migration(
                    "relocate_partial", vm_id, source_id,
                    destination.host_id, relocation_mib, start, end,
                )
                counters.partial_relocations += 1
            else:
                start, end = reserve_one(
                    source_nic,
                    now,
                    full_migration_s,
                    occupancy_s=full_occupancy_s,
                    not_before=settles.get(vm_id, 0.0),
                )
                source.detach(vm_id)
                vm.full_migrate(destination.host_id)
                destination.attach(vm)
                self._sync_vm_index(vm)
                self.ledger.traffic.add(
                    TrafficCategory.FULL_MIGRATION, vm.memory_mib
                )
                self._trace_migration(
                    "compact_full", vm_id, source_id,
                    destination.host_id, vm.memory_mib, start, end,
                )
                counters.full_migrations += 1
            settles[vm_id] = end
            heappush(settle_heap, (end, vm_id))
            dirty_add(destination.host_id)
        dirty_add(source_id)
        self._consider_suspend(source)

    def _execute_vacation(self, vacation: HostVacatePlan, now: float) -> None:
        source = self.cluster.host(vacation.host_id)
        source_id = source.host_id
        costs = self.config.costs
        partial_migration_s = costs.partial_migration_s
        partial_occupancy_s = costs.partial_occupancy_s
        full_migration_s = costs.full_migration_s
        full_occupancy_s = costs.full_occupancy_s
        vms = self.vms
        hostof = self.cluster.host
        reserve_one = self.scheduler.reserve_one
        settles = self._settles_at
        settle_heap = self._settle_heap
        counters = self.ledger.counters
        dirty_add = self._power_dirty.add
        migration_abort = self._injector.migration_abort
        partial_mode = MigrationMode.PARTIAL
        powered = PowerState.POWERED
        source_sas = ("sas", source_id)
        source_nic = ("nic", source_id)
        for migration in vacation.migrations:
            vm = vms[migration.vm_id]
            vm_id = vm.vm_id
            destination = hostof(migration.destination_id)
            dest_ready = now
            if destination._power_state is not powered:
                woke = self._wake_host(destination)
                if woke is None:
                    continue  # destination will not wake; VM stays put
                dest_ready = woke
            fraction = migration_abort()
            if fraction is not None:
                # Rolled back: the VM stays on the source host, which
                # therefore cannot be vacated this round.
                if migration.mode is partial_mode:
                    self._charge_aborted_attempt(
                        vm_id, [source_sas], now,
                        partial_migration_s,
                        partial_occupancy_s,
                        TrafficCategory.MEMORY_UPLOAD_SAS,
                        costs.sample_sas_upload_mib(self._traffic_rng),
                        fraction,
                    )
                else:
                    self._charge_aborted_attempt(
                        vm_id, [source_nic], now,
                        full_migration_s,
                        full_occupancy_s,
                        TrafficCategory.FULL_MIGRATION, vm.memory_mib,
                        fraction,
                    )
                continue
            if migration.mode is partial_mode:
                # The SAS upload serializes on the source; the small
                # descriptor push does not tie up the destination.
                start, end = reserve_one(
                    source_sas,
                    now,
                    partial_migration_s,
                    occupancy_s=partial_occupancy_s,
                )
                source.detach(vm_id)
                vm.become_partial(
                    destination.host_id, migration.working_set_mib
                )
                destination.attach(vm)
                self._sync_vm_index(vm)
                source.add_served_image(vm_id)
                partial_mib = self._record_partial_traffic()
                self._trace_migration(
                    "vacate_partial", vm_id, source_id,
                    destination.host_id, partial_mib, start, end,
                )
                self._episode_open.add(vm_id)
                counters.partial_migrations += 1
            else:
                start, end = reserve_one(
                    source_nic,
                    now,
                    full_migration_s,
                    occupancy_s=full_occupancy_s,
                )
                source.detach(vm_id)
                vm.full_migrate(destination.host_id)
                destination.attach(vm)
                self._sync_vm_index(vm)
                self.ledger.traffic.add(
                    TrafficCategory.FULL_MIGRATION, vm.memory_mib
                )
                self._trace_migration(
                    "vacate_full", vm_id, source_id,
                    destination.host_id, vm.memory_mib, start, end,
                )
                counters.full_migrations += 1
            settle = end if end >= dest_ready else dest_ready
            settles[vm_id] = settle
            heappush(settle_heap, (settle, vm_id))
            dirty_add(destination.host_id)
        dirty_add(source_id)
        self._consider_suspend(source)

    def _record_partial_traffic(self) -> float:
        """Charge one partial migration's traffic; returns its total MiB.

        The draws stay here (draw order is part of the engine); the
        ledger write goes through the accounting seam, which performs
        the same direct backing-list update this method used to inline.
        """
        rng = self._traffic_rng
        costs = self.config.costs
        descriptor_mib = costs.sample_descriptor_mib(rng)
        upload_mib = costs.sample_sas_upload_mib(rng)
        self.ledger.record_partial_migration(descriptor_mib, upload_mib)
        return descriptor_mib + upload_mib

    def _close_episode(self, vm_id: int) -> None:
        """End one consolidation episode: charge its demand-fault traffic.

        Injected page-fetch timeouts re-send part of the burst; the
        retry traffic lands in the same ledger category (real bytes on
        the same wire) and is additionally tracked per-fault.
        """
        if vm_id in self._episode_open:
            self._episode_open.discard(vm_id)
            demand_mib = self.config.costs.sample_on_demand_mib(
                self._traffic_rng
            )
            self.ledger.record_on_demand(demand_mib)
            if self.tracer.enabled:
                self.tracer.observe(
                    "pages_fetched", demand_mib * KIB_PER_MIB / PAGE_SIZE_KIB
                )
            timeouts = self._injector.page_timeouts()
            if timeouts:
                retry_mib = timeouts * self.fault_profile.page_retry_mib
                self.ledger.traffic.add(
                    TrafficCategory.ON_DEMAND_PAGES, retry_mib
                )
                self.faults.page_fetch_timeouts += timeouts
                self.faults.page_retry_traffic_mib += retry_mib
                self._trace_fault(
                    "fault.page_retry", vm=vm_id,
                    timeouts=timeouts, retry_mib=retry_mib,
                )

    def _charge_aborted_attempt(
        self,
        vm_id: int,
        resources: List,
        now: float,
        latency_s: float,
        occupancy_s: float,
        category: TrafficCategory,
        nominal_mib: float,
        fraction: float,
    ) -> float:
        """Roll back an aborted migration attempt.

        Placement is untouched; the wire time and traffic already spent
        when the abort fired (``fraction`` of the nominal operation) are
        charged to the original bottleneck and ledger category, and the
        VM's settle mark advances so a retry queues behind the wreck.
        """
        _start, end = self.scheduler.reserve(
            resources,
            now,
            latency_s * fraction,
            occupancy_s=occupancy_s * fraction,
            not_before=self._settles_at.get(vm_id, 0.0),
        )
        mib = nominal_mib * fraction
        self.ledger.traffic.add(category, mib)
        self.faults.migration_aborts += 1
        self.faults.aborted_traffic_mib += mib
        self._trace_fault(
            "fault.migration_rollback", vm=vm_id, mib=mib, fraction=fraction
        )
        self._settles_at[vm_id] = end
        heappush(self._settle_heap, (end, vm_id))
        return end

    # ------------------------------------------------------------------
    # tracing helpers (observation only — never consulted for behaviour)
    # ------------------------------------------------------------------

    def _trace_migration(
        self,
        kind: str,
        vm_id: int,
        source_id: int,
        destination_id: int,
        mib: float,
        start_s: float,
        end_s: float,
    ) -> None:
        """Record one committed migration with its bytes and wire window."""
        if not self.tracer.enabled:
            return
        self.tracer.event(
            "migration." + kind, CAT_MIGRATION,
            vm=vm_id, source=source_id, destination=destination_id,
            mib=mib, start_s=start_s, end_s=end_s,
        )
        self.tracer.observe("migration_latency_s", max(0.0, end_s - start_s))
        self.tracer.counter("migration_mib", mib)

    def _trace_fault(self, name: str, **args) -> None:
        """Record one fault-handling step (counter increments mirror these)."""
        if self.tracer.enabled:
            self.tracer.event(name, CAT_FAULT, **args)

    def _host_release_after(self, host_id: int) -> float:
        """When the host's last in-flight transfer (on either its NIC or
        its SAS upload path) completes; it must not sleep before then."""
        return max(
            self.scheduler.release_after(("nic", host_id)),
            self.scheduler.release_after(("sas", host_id)),
        )

    # ------------------------------------------------------------------
    # power-state orchestration
    # ------------------------------------------------------------------

    def _wake_host(
        self, host: Host, fault_exempt: bool = False
    ) -> Optional[float]:
        """Ensure ``host`` is heading to POWERED; return when it is ready.

        Returns ``None`` when fault injection exhausted the wake retry
        cap: the host stays asleep and the caller must reroute or skip.
        With ``fault_exempt`` the wake always eventually succeeds —
        rescue paths (crash recovery, post-give-up fallback) must not
        themselves fail, or recovery would not terminate.
        """
        now = self.sim.now
        host_id = host.host_id
        profile = self.config.host_power
        pending = self._wake_pending.get(host_id, _NO_CHAIN)
        if pending is not _NO_CHAIN:
            if pending is not None:
                return pending
            if not fault_exempt:
                return None
            # A giving-up chain is in flight; force a clean wake once
            # its last attempt resolves (the host is busy until then).
            self._count_wakeup(host)
            chain_end = self._wake_chain_ends[host_id]
            ready = chain_end + profile.resume_s
            self._wake_pending[host_id] = ready
            self.sim.schedule_at(
                chain_end, self._retry_resume_attempt, host_id, ready,
                label=f"resume-forced-{host_id}",
            )
            self.sim.schedule_at(
                ready, self._complete_resume, host_id,
                label=f"resume-{host_id}",
            )
            return ready
        state = host.power_state
        if state is PowerState.POWERED:
            return now
        if state is PowerState.RESUMING:
            return self._transition_done[host_id]
        if state is PowerState.SLEEPING:
            self._count_wakeup(host)
            outcome = (
                CLEAN_WAKE if fault_exempt else self._injector.wake_outcome()
            )
            if not outcome.is_clean:
                return self._begin_faulty_wake(host, outcome, now)
            host.begin_resume()
            done = now + profile.resume_s
            self._transition_done[host_id] = done
            self._note_power_state(host)
            self.sim.schedule_at(
                done, self._complete_resume, host_id,
                label=f"resume-{host_id}",
            )
            return done
        # SUSPENDING: let the suspend finish, then bounce straight back.
        self._wake_after_suspend.add(host_id)
        self._count_wakeup(host)
        return self._transition_done[host_id] + profile.resume_s

    def _begin_faulty_wake(
        self, host: Host, outcome, now: float
    ) -> Optional[float]:
        """Play out a wake whose first attempts fail (fault injection).

        Each failed attempt is a full resume transition at resume power
        that falls back to sleep (RESUMING -> SLEEPING); retries wait
        out exponential backoff between attempts.  The whole chain is
        committed to the event queue up front — the attempt count was
        already drawn — and its eventual outcome is returned now, so
        callers handle give-ups synchronously like every other decision.
        """
        host_id = host.host_id
        resume_s = self.config.host_power.resume_s
        backoffs = backoff_delays_s(
            self.fault_profile.wake_backoff_base_s, outcome.failed_attempts
        )
        start = now
        fail_times: List[float] = []
        for index in range(outcome.failed_attempts):
            fail_times.append(start + resume_s)
            start = fail_times[-1] + backoffs[index]
        if outcome.gave_up:
            # The failure after the last retry is not itself retried.
            self.faults.wake_retries += outcome.failed_attempts - 1
            self.faults.wake_give_ups += 1
            ready: Optional[float] = None
            self._wake_chain_ends[host_id] = fail_times[-1]
        else:
            self.faults.wake_retries += outcome.failed_attempts
            ready = start + resume_s
        self._wake_pending[host_id] = ready
        # The first attempt starts immediately; the rest are scheduled.
        host.begin_resume()
        self._transition_done[host_id] = fail_times[0]
        self._note_power_state(host)
        last = outcome.gave_up and outcome.failed_attempts == 1
        self.sim.schedule_at(
            fail_times[0], self._fail_resume_attempt, host_id, last,
            label=f"resume-fail-{host_id}",
        )
        for index in range(1, outcome.failed_attempts):
            self.sim.schedule_at(
                fail_times[index] - resume_s,
                self._retry_resume_attempt, host_id, fail_times[index],
                label=f"resume-retry-{host_id}",
            )
            last = outcome.gave_up and index == outcome.failed_attempts - 1
            self.sim.schedule_at(
                fail_times[index], self._fail_resume_attempt, host_id, last,
                label=f"resume-fail-{host_id}",
            )
        if not outcome.gave_up:
            self.sim.schedule_at(
                start, self._retry_resume_attempt, host_id, ready,
                label=f"resume-retry-{host_id}",
            )
            self.sim.schedule_at(
                ready, self._complete_resume, host_id,
                label=f"resume-{host_id}",
            )
        return ready

    def _retry_resume_attempt(self, host_id: int, done: float) -> None:
        """One retry of a faulty wake chain begins its resume transition."""
        host = self.cluster.host(host_id)
        host.begin_resume()
        self._transition_done[host_id] = done
        self._note_power_state(host)
        self._flush_power()

    def _fail_resume_attempt(self, host_id: int, last: bool) -> None:
        """One attempt of a faulty wake chain fails back to sleep."""
        host = self.cluster.host(host_id)
        host.fail_resume()
        self._note_power_state(host)
        if last and self._wake_pending.get(host_id, _NO_CHAIN) is None:
            # The chain gave up and no forced wake was layered on top:
            # the host is plain asleep again and new wakes start fresh.
            del self._wake_pending[host_id]
            self._wake_chain_ends.pop(host_id, None)
        self._flush_power()

    def _memserver_crash(self, host_id: int) -> None:
        """A scheduled memory-server crash fires (fault plan).

        A crash only matters while the host sleeps (or is suspending):
        that is when the server is the sole source of consolidated VMs'
        memory.  If any images are being served, the home is force-woken
        — retries notwithstanding — and takes all of its VMs back; the
        server is repaired by the time the host completes any resume.
        """
        if not self.config.memory_server_present:
            return
        host = self.cluster.host(host_id)
        if not host.memory_server_enabled:
            return
        self.faults.memserver_crashes += 1
        self._trace_fault("fault.memserver_crash", host=host_id)
        if host.power_state in (PowerState.POWERED, PowerState.RESUMING):
            # The host is up (or waking): the dead server is detected
            # and swapped before it ever matters.
            return
        host.fail_memory_server()
        self._refresh_power(host)
        if host.served_image_count == 0:
            self._flush_power()
            return
        self.faults.crash_forced_wakeups += 1
        trigger = self.vms[min(host.served_image_ids)]
        before = self.ledger.counters.reintegrations
        self._handle_wake_home_return_all(
            trigger, self.sim.now, fault_exempt=True
        )
        rescued = self.ledger.counters.reintegrations - before
        self.faults.crash_forced_reintegrations += rescued
        self._trace_fault(
            "fault.crash_forced_wakeup", host=host_id, reintegrations=rescued
        )
        self._flush_power()

    def _count_wakeup(self, host: Host) -> None:
        if host.role is HostRole.COMPUTE:
            self.ledger.counters.home_wakeups += 1
        else:
            self.ledger.counters.consolidation_wakeups += 1

    def _complete_resume(self, host_id: int) -> None:
        host = self.cluster.host(host_id)
        host.complete_resume()
        # A powered host has its memory server swapped/repaired, and any
        # faulty wake chain that ended here is fully resolved.
        host.repair_memory_server()
        self._wake_pending.pop(host_id, None)
        self._wake_chain_ends.pop(host_id, None)
        self._note_power_state(host)
        self._flush_power()

    def _consider_suspend(self, host: Host) -> None:
        """Schedule a guarded suspend once the host drains its queue."""
        if host.host_id in self._suspend_pending:
            return
        if not host.is_powered or host.vm_count > 0:
            return
        self._suspend_pending.add(host.host_id)
        horizon = max(self.sim.now, self._host_release_after(host.host_id))
        self.sim.schedule_at(
            horizon, self._suspend_guard, host.host_id,
            label=f"suspend-{host.host_id}",
        )

    def _suspend_guard(self, host_id: int) -> None:
        self._suspend_pending.discard(host_id)
        host = self.cluster.host(host_id)
        if not host.is_powered or host.vm_count > 0:
            return
        busy = self._host_release_after(host_id)
        if busy > self.sim.now:
            self._consider_suspend(host)
            return
        host.begin_suspend()
        self._note_power_state(host)
        done = self.sim.now + self.config.host_power.suspend_s
        self._transition_done[host_id] = done
        self.ledger.counters.suspends += 1
        self.sim.schedule_at(
            done, self._complete_suspend, host_id,
            label=f"suspend-done-{host_id}",
        )
        self._flush_power()

    def _complete_suspend(self, host_id: int) -> None:
        host = self.cluster.host(host_id)
        host.complete_suspend()
        self._note_power_state(host)
        if host_id in self._wake_after_suspend:
            self._wake_after_suspend.discard(host_id)
            host.begin_resume()
            done = self.sim.now + self.config.host_power.resume_s
            self._transition_done[host_id] = done
            self._note_power_state(host)
            self.sim.schedule_at(
                done, self._complete_resume, host_id,
                label=f"resume-{host_id}",
            )
        self._flush_power()

    def _note_power_state(self, host: Host) -> None:
        self.ledger.set_state(
            host.host_id, host.power_state.value, self.sim.now
        )
        if self.tracer.enabled:
            self._trace_power_transition(host)
        self._refresh_power(host)

    def _trace_power_transition(self, host: Host) -> None:
        """Emit the host's power-state edge and sleep-duration samples.

        Every edge passes through :meth:`_note_power_state`, so the
        per-host event sequence replays legally through the power-state
        machine's transition table (property-tested).
        """
        host_id = host.host_id
        state = host.power_state.value
        previous = self._power_state_seen.get(host_id, state)
        if state == previous:
            return
        self._power_state_seen[host_id] = state
        now = self.sim.now
        self.tracer.event(
            "power.transition", CAT_POWER,
            host=host_id, role=host.role.value,
            **{"from": previous, "to": state},
        )
        if state == PowerState.SLEEPING.value:
            self._sleep_since[host_id] = now
        elif previous == PowerState.SLEEPING.value:
            since = self._sleep_since.pop(host_id, None)
            if since is not None:
                self.tracer.observe("host_sleep_duration_s", now - since)

    # ------------------------------------------------------------------
    # energy
    # ------------------------------------------------------------------

    def _refresh_power(self, host: Host) -> None:
        """Mark ``host`` for a power re-evaluation at callback exit.

        Within one event callback every mutation happens at the same
        simulated instant, and the accountant closes the running energy
        period with the *previously stored* watts; intermediate same-
        timestamp updates therefore contribute ``(now - now) * w = +0.0``
        joules and only the last value matters.  Deferring to a single
        :meth:`_flush_power` per dirty host at the end of each top-level
        callback is byte-identical to eager refreshing and collapses the
        duplicate work of migration bursts.
        """
        self._power_dirty.add(host.host_id)

    def _flush_power(self) -> None:
        """Re-evaluate every dirty host's power draw (sorted, then clear)."""
        dirty = self._power_dirty
        if not dirty:
            return
        host = self.cluster.host
        for host_id in sorted(dirty):
            self._refresh_power_now(host(host_id))
        dirty.clear()

    def _refresh_power_now(self, host: Host) -> None:
        state = host.power_state
        if state is PowerState.POWERED:
            if self._powered_fast:
                # Inlined powered_watts with a zero per-active-VM term:
                # idle + per_vm * (full + partial_fraction).  Adding the
                # absent `extra * 0` term would contribute exactly +0.0,
                # so this is byte-identical to the profile call.
                watts = self._power_idle_w + self._power_per_vm_w * (
                    host._full_count + host._partial_fraction
                )
            else:
                profile = self._host_power
                watts = profile.powered_watts(
                    full_vms=host.full_vm_count,
                    active_vms=host.active_vm_count,
                    partial_resident_fraction=host.partial_resident_fraction,
                )
        elif state is PowerState.SUSPENDING:
            watts = self._host_power.suspend_w
        elif state is PowerState.RESUMING:
            watts = self._host_power.resume_w
        else:  # SLEEPING
            served_w = self._sleep_served_w
            if (
                served_w is not None
                and host.memory_server_enabled
                and not host.memory_server_failed
            ):
                watts = served_w
            else:
                watts = self._host_power.sleep_w
        self.ledger.set_power(host.host_id, watts, self.sim.now)

    def _finalize(self) -> None:
        self._flush_power()
        horizon = SECONDS_PER_DAY
        for vm_id in list(self._episode_open):
            self._close_episode(vm_id)
        self.ledger.finish(horizon)
        managed = self.ledger.total_joules()
        baseline = baseline_energy_joules(
            self.config.host_power,
            home_hosts=self.config.home_hosts,
            vms_per_host=self.config.vms_per_host,
            duration_s=horizon,
        )
        self.result.energy = EnergyReport(
            managed_joules=managed,
            baseline_joules=baseline,
            fault_events=self.faults.total_events,
            fault_retries=self.faults.total_retries,
            fault_rollbacks=self.faults.total_rollbacks,
        )
        for host in self.cluster.home_hosts:
            self.result.home_sleep_s[host.host_id] = (
                self.ledger.state_duration(host.host_id, _SLEEP_STATE)
            )
        self.result.state_time_s = self.ledger.state_time_s()
        self.result.state_energy_j = self.ledger.state_energy_j()
        if self.tracer.enabled:
            # Close out sleep intervals still open at the horizon.
            for host_id in sorted(self._sleep_since):
                self.tracer.observe(
                    "host_sleep_duration_s",
                    horizon - self._sleep_since[host_id],
                )
            self._sleep_since.clear()
        self._finished = True


def simulate_day(
    config: FarmConfig,
    policy: PolicyLike,
    day_type: DayType,
    seed: int = 0,
    ensemble: Optional[TraceEnsemble] = None,
    tracer: Optional[Tracer] = None,
) -> FarmResult:
    """Convenience wrapper: generate traces (unless given) and run a day."""
    if ensemble is None:
        ensemble = generate_ensemble(
            config.total_vms,
            day_type,
            seed=RngStreams(seed).get("traces").randrange(2**31),
            config=config.traces,
        )
    return FarmSimulation(
        config, policy, ensemble, seed=seed, tracer=tracer
    ).run()
