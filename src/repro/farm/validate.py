"""Post-run validation of a farm simulation.

A completed :class:`~repro.farm.simulation.FarmSimulation` must satisfy
a set of global invariants regardless of workload, policy, or
configuration.  :func:`validate_simulation` checks them all and raises
:class:`~repro.errors.SimulationError` with a precise message on the
first violation — used throughout the test suite (including the
property-based fuzzers) and available to users running custom
configurations.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.farm.simulation import FarmSimulation
from repro.units import INTERVALS_PER_DAY, SECONDS_PER_DAY

_HOST_STATES = ("powered", "sleeping", "suspending", "resuming")


def validate_simulation(simulation: FarmSimulation) -> None:
    """Check every post-run invariant; raise on the first violation."""
    if not simulation._finished:
        raise SimulationError("simulation has not run to completion")
    _check_vm_conservation(simulation)
    _check_memory_accounting(simulation)
    _check_served_images(simulation)
    _check_state_time(simulation)
    _check_energy_bounds(simulation)
    _check_metrics(simulation)


def _check_vm_conservation(simulation: FarmSimulation) -> None:
    placed = sorted(
        vm_id for host in simulation.cluster for vm_id in host.vm_ids
    )
    expected = sorted(simulation.vms)
    if placed != expected:
        missing = set(expected) - set(placed)
        duplicated = [vm_id for vm_id in placed if placed.count(vm_id) > 1]
        raise SimulationError(
            f"VM conservation violated: missing={sorted(missing)}, "
            f"duplicated={sorted(set(duplicated))}"
        )


def _check_memory_accounting(simulation: FarmSimulation) -> None:
    try:
        simulation.cluster.check_invariants()
    except AssertionError as error:
        raise SimulationError(f"memory accounting drifted: {error}")


def _check_served_images(simulation: FarmSimulation) -> None:
    partial_ids = {
        vm.vm_id for vm in simulation.vms.values() if vm.is_partial
    }
    served = set()
    for host in simulation.cluster:
        for vm_id in host.served_image_ids:
            if vm_id in served:
                raise SimulationError(f"VM {vm_id}'s image served twice")
            served.add(vm_id)
            vm = simulation.vms.get(vm_id)
            if vm is None or vm.home_id != host.host_id:
                raise SimulationError(
                    f"host {host.host_id} serves an image for VM {vm_id} "
                    f"that is not homed there"
                )
    if served != partial_ids:
        raise SimulationError(
            f"served images {sorted(served)} do not match partial VMs "
            f"{sorted(partial_ids)}"
        )


def _check_state_time(simulation: FarmSimulation) -> None:
    for host in simulation.cluster:
        total = sum(
            simulation.tracker.duration(host.host_id, state)
            for state in _HOST_STATES
        )
        if abs(total - SECONDS_PER_DAY) > 1.0:
            raise SimulationError(
                f"host {host.host_id}: state durations sum to {total:.1f} s, "
                f"expected {SECONDS_PER_DAY:.0f} s"
            )


def _check_energy_bounds(simulation: FarmSimulation) -> None:
    config = simulation.config
    profile = config.host_power
    host_count = config.home_hosts + config.consolidation_hosts
    floor = host_count * profile.sleep_w * SECONDS_PER_DAY
    ceiling_watts = (
        profile.powered_watts(full_vms=config.total_vms)
        + config.memory_server.total_w
        + profile.resume_w  # transition and wake-tax headroom
    )
    ceiling = host_count * ceiling_watts * SECONDS_PER_DAY
    measured = simulation.result.energy.managed_joules
    if not floor <= measured <= ceiling:
        raise SimulationError(
            f"managed energy {measured:.0f} J outside physical bounds "
            f"[{floor:.0f}, {ceiling:.0f}]"
        )


def _check_metrics(simulation: FarmSimulation) -> None:
    result = simulation.result
    if len(result.sample_times_s) != INTERVALS_PER_DAY:
        raise SimulationError(
            f"expected {INTERVALS_PER_DAY} metric samples, got "
            f"{len(result.sample_times_s)}"
        )
    if any(sample.delay_s < 0.0 for sample in result.delays):
        raise SimulationError("negative transition delay recorded")
    host_count = (
        simulation.config.home_hosts + simulation.config.consolidation_hosts
    )
    if any(
        not 0 <= count <= host_count for count in result.powered_hosts
    ):
        raise SimulationError("powered-host sample outside [0, hosts]")
