"""Week-level projections.

The paper evaluates single weekdays and weekend days.  Operators care
about the bill, so this module composes the two into calendar-week
figures: five independent weekday draws plus two weekend draws, with
the energy totals (not the percentages) summed before the savings
fraction is formed — percentages do not average across days of unequal
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.strategies import PolicyLike
from repro.errors import ConfigError
from repro.farm.config import FarmConfig
from repro.farm.metrics import FarmResult
from repro.farm.simulation import simulate_day
from repro.traces.model import DayType
from repro.units import joules_to_wh


@dataclass(frozen=True)
class WeekReport:
    """Energy totals of one simulated calendar week."""

    weekday_results: List[FarmResult]
    weekend_results: List[FarmResult]

    def __post_init__(self) -> None:
        if not self.weekday_results or not self.weekend_results:
            raise ConfigError("a week needs both weekday and weekend runs")

    @property
    def managed_joules(self) -> float:
        return sum(
            result.energy.managed_joules
            for result in self.weekday_results + self.weekend_results
        )

    @property
    def baseline_joules(self) -> float:
        return sum(
            result.energy.baseline_joules
            for result in self.weekday_results + self.weekend_results
        )

    @property
    def savings_fraction(self) -> float:
        """Weekly savings, formed from energy totals.

        0.0 for a week with no baseline energy at all (degenerate
        zero-watt configurations): nothing consumed, nothing saved.
        ``saved_kwh`` and ``__str__`` share the convention — neither
        divides by the baseline.
        """
        if self.baseline_joules == 0.0:
            return 0.0
        return 1.0 - self.managed_joules / self.baseline_joules

    @property
    def saved_kwh(self) -> float:
        return joules_to_wh(self.baseline_joules - self.managed_joules) / 1000.0

    def projected_annual_kwh(self) -> float:
        """52 weeks of the measured week."""
        return self.saved_kwh * 52.0

    def __str__(self) -> str:
        return (
            f"week: {self.savings_fraction:.1%} saved "
            f"({self.saved_kwh:.1f} kWh; "
            f"~{self.projected_annual_kwh():.0f} kWh/year)"
        )


def simulate_week(
    config: FarmConfig,
    policy: PolicyLike,
    seed: int = 0,
    weekdays: int = 5,
    weekend_days: int = 2,
) -> WeekReport:
    """Simulate one calendar week: independent trace draws per day."""
    if weekdays < 1 or weekend_days < 1:
        raise ConfigError("a week needs at least one day of each type")
    weekday_results = [
        simulate_day(config, policy, DayType.WEEKDAY, seed=seed * 100 + index)
        for index in range(weekdays)
    ]
    weekend_results = [
        simulate_day(
            config, policy, DayType.WEEKEND, seed=seed * 100 + 50 + index
        )
        for index in range(weekend_days)
    ]
    return WeekReport(weekday_results, weekend_results)
