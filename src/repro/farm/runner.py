"""Parallel sweep execution: fan independent day-simulations out over
processes without giving up seeded determinism.

The evaluation sweeps (Figure 8, Figure 12, Table 3) are hundreds of
*independent* single-day simulations: nothing flows between runs except
the spec that defines each one.  This module turns that independence
into wall-clock speed:

* :class:`RunSpec` / :class:`RunOutcome` are small picklable records, so
  a run can be shipped to a worker process and its result shipped back;
* :class:`SweepRunner` executes a batch of specs on a pluggable backend
  (``serial`` in-process, or ``process`` over a
  :class:`~concurrent.futures.ProcessPoolExecutor`) and always returns
  outcomes **in spec order, not completion order** — the parallel output
  is indistinguishable from the serial output;
* a per-process trace-ensemble cache keyed by
  ``(total_vms, day_type, trace_seed, trace_config)`` stops sweeps that
  vary only the policy or the hardware model (Figure 8, Table 3) from
  regenerating identical 900-user ensembles for every single run;
* every batch is timed (:class:`SweepSummary`): per-run wall times,
  runs/second, per-worker run counts, and ensemble-cache hit counts,
  surfaced through an optional progress callback and the runner's
  ``summaries`` list.

Determinism: a :class:`FarmSimulation` is a pure function of
``(config, policy, ensemble, seed)``, and the ensemble is a pure
function of the cache key, so the backend and worker count can never
change a result — only how fast it arrives.  ``tests/test_farm_runner.py``
pins this serial-vs-process equivalence.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from statistics import mean
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.strategies import PolicyLike, resolve_strategy
from repro.errors import ConfigError
from repro.farm.config import FarmConfig
from repro.farm.metrics import FarmResult
from repro.farm.simulation import FarmSimulation
from repro.simulator.randomness import RngStreams
from repro.traces.model import DayType
from repro.traces.sampler import TraceEnsemble, generate_ensemble

__all__ = [
    "RunSpec",
    "RunOutcome",
    "RunProgress",
    "SweepSummary",
    "SweepRunner",
    "execute_run",
    "ensemble_cache_stats",
    "clear_ensemble_cache",
]


# ----------------------------------------------------------------------
# task records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One independent day-simulation, fully described and picklable."""

    config: FarmConfig
    policy: PolicyLike
    day_type: DayType
    seed: int
    #: Free-form grouping tag (e.g. the sweep point the run belongs to).
    label: str = ""

    @property
    def policy_name(self) -> str:
        return resolve_strategy(self.policy).name

    @property
    def trace_seed(self) -> int:
        """The trace-draw seed; identical to :func:`simulate_day`'s."""
        return RngStreams(self.seed).get("traces").randrange(2**31)

    def ensemble_key(self) -> Tuple:
        """What the trace ensemble depends on — and nothing else."""
        return (
            self.config.total_vms,
            self.day_type.value,
            self.trace_seed,
            self.config.traces,
        )


@dataclass(frozen=True)
class RunOutcome:
    """A finished run: its result plus execution metadata."""

    spec: RunSpec
    result: FarmResult
    #: Host wall-clock duration of the simulation itself.
    wall_time_s: float
    #: Identifier of the worker process that executed the run.
    worker: str
    #: Whether the trace ensemble came from the per-process cache.
    ensemble_cached: bool
    #: ``(hits, misses)`` of the executing process's ensemble cache as
    #: of the end of this run.  Counters are reset at batch start in
    #: every pool worker, so within one batch a worker's totals count
    #: only that batch's runs.
    worker_cache_stats: Tuple[int, int] = (0, 0)


@dataclass(frozen=True)
class RunProgress:
    """Delivered to the progress callback after each completed run.

    ``completed`` counts completions, so with the process backend the
    callback observes completion order; the runner's *return value* is
    always in spec order regardless.
    """

    completed: int
    total: int
    outcome: RunOutcome


# ----------------------------------------------------------------------
# per-process trace-ensemble cache
# ----------------------------------------------------------------------

#: LRU cache of generated ensembles, one per worker process.  A 900-user
#: ensemble is ~100 KiB of tuples but costs ~a second to generate; the
#: sweeps reuse the same handful of (day type, seed) draws across dozens
#: of configurations, so a small cache removes almost all regeneration.
_ENSEMBLE_CACHE: "OrderedDict[Tuple, TraceEnsemble]" = OrderedDict()
_ENSEMBLE_CACHE_MAX = 16
_CACHE_HITS = 0
_CACHE_MISSES = 0


def ensemble_cache_stats() -> Tuple[int, int]:
    """``(hits, misses)`` of **this process's** ensemble cache.

    The cache is per-process state: calling this in the parent says
    nothing about pool workers.  Worker-side statistics travel back on
    :attr:`RunOutcome.worker_cache_stats`; they are reset at batch
    start in every worker (on Linux a forked worker would otherwise
    inherit — and keep reporting — the parent's historical counts).
    """
    return _CACHE_HITS, _CACHE_MISSES


def clear_ensemble_cache() -> None:
    """Empty **this process's** cache and reset its counters.

    Like :func:`ensemble_cache_stats` this only touches the calling
    process; live pool workers keep their caches.  The process backend
    builds a fresh pool per batch, so a parent-side clear takes effect
    on the next batch's workers (fork) or is moot (spawn).
    """
    global _CACHE_HITS, _CACHE_MISSES
    _ENSEMBLE_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0


def _reset_cache_counters() -> None:
    """Pool-worker initializer: zero the *statistics* at batch start.

    Cached ensembles themselves are kept — a fork-inherited warm cache
    is genuine reuse worth counting as hits — but counts carried over
    from the parent's history would make cross-batch
    ``worker_cache_stats`` unintelligible.
    """
    global _CACHE_HITS, _CACHE_MISSES
    _CACHE_HITS = 0
    _CACHE_MISSES = 0


def _ensemble_for(spec: RunSpec) -> Tuple[TraceEnsemble, bool]:
    """The spec's trace ensemble, generated or cached; returns
    ``(ensemble, was_cached)``."""
    global _CACHE_HITS, _CACHE_MISSES
    key = spec.ensemble_key()
    cached = _ENSEMBLE_CACHE.get(key)
    if cached is not None:
        _ENSEMBLE_CACHE.move_to_end(key)
        _CACHE_HITS += 1
        return cached, True
    ensemble = generate_ensemble(
        spec.config.total_vms,
        spec.day_type,
        seed=spec.trace_seed,
        config=spec.config.traces,
    )
    _ENSEMBLE_CACHE[key] = ensemble
    while len(_ENSEMBLE_CACHE) > _ENSEMBLE_CACHE_MAX:
        _ENSEMBLE_CACHE.popitem(last=False)
    _CACHE_MISSES += 1
    return ensemble, False


def execute_run(spec: RunSpec) -> RunOutcome:
    """Execute one spec in the current process.

    Behaviourally identical to
    :func:`repro.farm.simulation.simulate_day` — same trace seed
    derivation, same simulation — plus ensemble caching and timing.
    """
    started = time.perf_counter()  # repro: noqa[DET103] -- instrumentation
    ensemble, was_cached = _ensemble_for(spec)
    result = FarmSimulation(
        spec.config, spec.policy, ensemble, seed=spec.seed
    ).run()
    elapsed = time.perf_counter() - started  # repro: noqa[DET103]
    return RunOutcome(
        spec=spec,
        result=result,
        wall_time_s=elapsed,
        worker=f"pid-{os.getpid()}",
        ensemble_cached=was_cached,
        worker_cache_stats=ensemble_cache_stats(),
    )


def _execute_indexed(item: Tuple[int, RunSpec]) -> Tuple[int, RunOutcome]:
    """Worker entry point: carry the spec index across the pool."""
    index, spec = item
    return index, execute_run(spec)


# ----------------------------------------------------------------------
# instrumentation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepSummary:
    """Timing and utilization of one executed batch of specs."""

    backend: str
    workers: int
    runs: int
    #: Whole-batch wall time, including pool startup and result transfer.
    wall_time_s: float
    #: Sum / mean / max of the per-run simulation wall times.
    run_wall_total_s: float
    run_wall_mean_s: float
    run_wall_max_s: float
    #: Completed runs per second of batch wall time.
    throughput_runs_per_s: float
    #: Runs executed by each worker, sorted by worker id.
    worker_runs: Tuple[Tuple[str, int], ...]
    #: How many runs reused a cached trace ensemble.
    ensemble_cache_hits: int

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker-seconds spent inside simulations."""
        available = self.wall_time_s * max(self.workers, 1)
        if available <= 0.0:
            return 0.0
        return min(1.0, self.run_wall_total_s / available)

    def __str__(self) -> str:
        workers = ", ".join(
            f"{worker}:{count}" for worker, count in self.worker_runs
        )
        return (
            f"{self.backend} backend x{self.workers}: {self.runs} runs in "
            f"{self.wall_time_s:.2f} s ({self.throughput_runs_per_s:.2f} "
            f"runs/s, utilization {self.worker_utilization:.0%}); per-run "
            f"wall mean {self.run_wall_mean_s:.2f} s max "
            f"{self.run_wall_max_s:.2f} s; ensemble cache "
            f"{self.ensemble_cache_hits}/{self.runs} hits; "
            f"workers [{workers}]"
        )


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------

ProgressCallback = Callable[[RunProgress], None]

_BACKENDS = ("serial", "process")


class SweepRunner:
    """Executes batches of :class:`RunSpec` on a pluggable backend.

    Parameters
    ----------
    backend:
        ``"serial"`` runs in-process; ``"process"`` fans out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`.
    workers:
        Worker-process count for the process backend (defaults to the
        machine's CPU count).  Ignored by the serial backend.
    progress:
        Optional callback invoked once per completed run with a
        :class:`RunProgress` (completion order; see there).
    """

    def __init__(
        self,
        backend: str = "serial",
        workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ConfigError(
                f"unknown backend {backend!r}; choose from {_BACKENDS}"
            )
        if workers is None:
            workers = os.cpu_count() or 1 if backend == "process" else 1
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.workers = workers if backend == "process" else 1
        self.progress = progress
        self.summaries: List[SweepSummary] = []
        self._progress_error: Optional[BaseException] = None

    @property
    def last_summary(self) -> Optional[SweepSummary]:
        return self.summaries[-1] if self.summaries else None

    def run(self, specs: Sequence[RunSpec]) -> List[RunOutcome]:
        """Execute every spec; outcomes are returned in spec order.

        A ``progress`` callback that raises cannot strand the pool or
        misorder results: the first exception is captured, further
        callback invocations are suppressed, the batch runs to
        completion (summary included), and the exception is re-raised
        here afterwards.
        """
        specs = list(specs)
        self._progress_error = None
        started = time.perf_counter()  # repro: noqa[DET103]
        if self.backend == "process" and len(specs) > 1:
            outcomes = self._run_process(specs)
        else:
            outcomes = self._run_serial(specs)
        elapsed = time.perf_counter() - started  # repro: noqa[DET103]
        self.summaries.append(self._summarize(outcomes, elapsed))
        if self._progress_error is not None:
            error, self._progress_error = self._progress_error, None
            raise error
        return outcomes

    def run_results(self, specs: Sequence[RunSpec]) -> List[FarmResult]:
        """Like :meth:`run`, keeping only the simulation results."""
        return [outcome.result for outcome in self.run(specs)]

    # -- backends ------------------------------------------------------

    def _run_serial(self, specs: List[RunSpec]) -> List[RunOutcome]:
        outcomes: List[RunOutcome] = []
        for spec in specs:
            outcome = execute_run(spec)
            outcomes.append(outcome)
            self._report(len(outcomes), len(specs), outcome)
        return outcomes

    def _run_process(self, specs: List[RunSpec]) -> List[RunOutcome]:
        outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
        completed = 0
        with ProcessPoolExecutor(
            max_workers=self.workers, initializer=_reset_cache_counters
        ) as pool:
            futures = [
                pool.submit(_execute_indexed, (index, spec))
                for index, spec in enumerate(specs)
            ]
            for future in as_completed(futures):
                index, outcome = future.result()
                outcomes[index] = outcome
                completed += 1
                self._report(completed, len(specs), outcome)
        # as_completed drained every future, so the list is fully filled.
        return [outcome for outcome in outcomes if outcome is not None]

    def _report(self, completed: int, total: int, outcome: RunOutcome) -> None:
        if self.progress is None or self._progress_error is not None:
            return
        try:
            self.progress(RunProgress(completed, total, outcome))
        except Exception as error:
            # Deferred to the end of run(): a broken observer must not
            # abandon in-flight futures or truncate the result list.
            self._progress_error = error

    # -- instrumentation -----------------------------------------------

    def _summarize(
        self, outcomes: List[RunOutcome], wall_time_s: float
    ) -> SweepSummary:
        walls = [outcome.wall_time_s for outcome in outcomes]
        per_worker: Dict[str, int] = {}
        for outcome in outcomes:
            per_worker[outcome.worker] = per_worker.get(outcome.worker, 0) + 1
        return SweepSummary(
            backend=self.backend,
            workers=self.workers,
            runs=len(outcomes),
            wall_time_s=wall_time_s,
            run_wall_total_s=sum(walls),
            run_wall_mean_s=mean(walls) if walls else 0.0,
            run_wall_max_s=max(walls) if walls else 0.0,
            throughput_runs_per_s=(
                len(outcomes) / wall_time_s if wall_time_s > 0.0 else 0.0
            ),
            worker_runs=tuple(sorted(per_worker.items())),
            ensemble_cache_hits=sum(
                1 for outcome in outcomes if outcome.ensemble_cached
            ),
        )
